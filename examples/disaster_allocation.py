"""Resource allocation under privacy noise: the FEMA scenario (Sec 3.2).

FEMA's disaster-declaration indicator divides a damage estimate by a
population (here: job) count at $3.50 per capita.  Noise in published job
counts moves the threshold: positive errors demand a larger disaster
before assistance, negative errors the opposite, and each job in error
carries a net social cost of $3.50.

This example publishes per-place job counts under each protection scheme
and prices the misallocation.

Run:  python examples/disaster_allocation.py
"""

import numpy as np

from repro.core import EREEParams, release_marginal
from repro.data import SyntheticConfig, generate
from repro.db import Marginal
from repro.sdl import InputNoiseInfusion
from repro.util import format_table

COST_PER_JOB = 3.50  # Stafford Act per-capita indicator


def main():
    dataset = generate(SyntheticConfig(target_jobs=120_000, seed=3))
    worker_full = dataset.worker_full()
    marginal = Marginal(worker_full.table.schema, ["place"])
    true = marginal.counts(worker_full.table).astype(float)
    published = true > 0

    sdl = InputNoiseInfusion(seed=4).fit(worker_full)
    sdl_counts = sdl.answer_marginal(worker_full, marginal).noisy

    params = EREEParams(alpha=0.1, epsilon=2.0, delta=0.05)
    rows = []

    def misallocation(noisy):
        return float(np.abs(noisy[published] - true[published]).sum()) * COST_PER_JOB

    rows.append(
        ["input-noise-infusion (SDL)", f"${misallocation(sdl_counts):,.0f}"]
    )
    for mechanism in ("log-laplace", "smooth-gamma", "smooth-laplace"):
        costs = []
        for trial in range(20):
            release = release_marginal(
                worker_full, ["place"], mechanism, params, seed=500 + trial
            )
            costs.append(misallocation(release.noisy))
        rows.append([mechanism, f"${np.mean(costs):,.0f}"])

    total_payroll_proxy = true.sum() * COST_PER_JOB
    print(
        format_table(
            headers=["release", "expected misallocation"],
            rows=rows,
            title=(
                "Disaster-assistance misallocation at $3.50/job "
                f"({int(published.sum())} places, "
                f"${total_payroll_proxy:,.0f} total indicator)"
            ),
        )
    )
    print()
    print(
        "Formal privacy at (alpha=0.1, eps=2) prices out at the same order\n"
        "of magnitude as the legacy SDL — the social cost of provable\n"
        "privacy for this allocation task is small."
    )


if __name__ == "__main__":
    main()
