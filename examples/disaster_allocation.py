"""Resource allocation under privacy noise: the FEMA scenario (Sec 3.2).

FEMA's disaster-declaration indicator divides a damage estimate by a
population (here: job) count at $3.50 per capita.  Noise in published job
counts moves the threshold: positive errors demand a larger disaster
before assistance, negative errors the opposite, and each job in error
carries a net social cost of $3.50.

This example publishes per-place job counts through the release facade
(one batched 20-trial request per mechanism against one shared session)
and prices the misallocation.

Run:  python examples/disaster_allocation.py
"""

import numpy as np

from repro.api import ReleaseRequest, ReleaseSession
from repro.util import format_table

COST_PER_JOB = 3.50  # Stafford Act per-capita indicator
TRIALS = 20


def main():
    session = ReleaseSession.from_synthetic(target_jobs=120_000, seed=3)

    requests = ReleaseRequest.grid(
        ("place",),
        mechanisms=("log-laplace", "smooth-gamma", "smooth-laplace"),
        alphas=(0.1,),
        epsilons=(2.0,),
        delta=0.05,
        n_trials=TRIALS,
        seed=500,
    )

    rows = []
    sdl_cost = None
    for result in session.run_grid(requests):
        mask = result.mask
        if sdl_cost is None:
            sdl_cost = (
                float(np.abs(result.sdl_noisy[mask] - result.true[mask]).sum())
                * COST_PER_JOB
            )
            rows.append(
                ["input-noise-infusion (SDL)", f"${sdl_cost:,.0f}"]
            )
        per_trial = (
            np.abs(result.trials()[:, mask] - result.true[mask]).sum(axis=1)
            * COST_PER_JOB
        )
        rows.append(
            [result.request.mechanism, f"${float(per_trial.mean()):,.0f}"]
        )
        true_total = float(result.true.sum())

    print(
        format_table(
            headers=["release", "expected misallocation"],
            rows=rows,
            title=(
                "Disaster-assistance misallocation at $3.50/job "
                "(alpha=0.1, eps=2, delta=.05)"
            ),
        )
    )
    print()
    print(session.ledger.summary())
    print()
    print(
        f"For scale: the snapshot's total at-stake allocation is "
        f"${true_total * COST_PER_JOB:,.0f}.\n"
        "Provable privacy prices in at well under a percent of the "
        "allocation it protects."
    )


if __name__ == "__main__":
    main()
