"""Area Comparison ranking: the OnTheMap scenario (Sec 3.2, Figure 2).

The OnTheMap web tool ranks areas (places, within a state) by job count.
This example publishes place-by-sector-by-ownership employment under each
scheme, ranks the cells, and reports how well each private ranking agrees
with the SDL ranking (Spearman's rank correlation) — overall and for the
large-population places a site-selection analyst would actually compare.

Run:  python examples/onthemap_ranking.py
"""

import numpy as np

from repro.core import EREEParams, release_marginal
from repro.experiments.runner import mechanism_is_feasible
from repro.data import SyntheticConfig, generate
from repro.db import Marginal
from repro.metrics import STRATUM_LABELS, cell_strata, spearman_correlation
from repro.sdl import InputNoiseInfusion
from repro.util import format_table

ATTRS = ["place", "naics", "ownership"]


def main():
    dataset = generate(SyntheticConfig(target_jobs=120_000, seed=5))
    worker_full = dataset.worker_full()
    marginal = Marginal(worker_full.table.schema, ATTRS)

    sdl = InputNoiseInfusion(seed=6).fit(worker_full)
    answer = sdl.answer_marginal(worker_full, marginal)
    published = answer.true > 0
    strata = cell_strata(marginal, dataset.geography.place_populations)[published]
    sdl_counts = answer.noisy[published]

    rows = []
    for epsilon in (0.5, 1.0, 2.0, 4.0):
        params = EREEParams(alpha=0.1, epsilon=epsilon, delta=0.05)
        for mechanism in ("log-laplace", "smooth-laplace"):
            if not mechanism_is_feasible(mechanism, params):
                rows.append([mechanism, epsilon, "-", "-"])
                continue
            overall, big_places = [], []
            for trial in range(10):
                release = release_marginal(
                    worker_full, ATTRS, mechanism, params,
                    seed=1000 + trial,
                )
                noisy = release.noisy[published]
                overall.append(spearman_correlation(noisy, sdl_counts))
                big = strata == 3
                big_places.append(
                    spearman_correlation(noisy[big], sdl_counts[big])
                )
            rows.append(
                [
                    mechanism,
                    epsilon,
                    float(np.mean(overall)),
                    float(np.mean(big_places)),
                ]
            )

    print(
        format_table(
            headers=[
                "mechanism",
                "epsilon",
                "Spearman (all places)",
                f"Spearman ({STRATUM_LABELS[3]})",
            ],
            rows=rows,
            title="OnTheMap-style Area Comparison ranking vs the SDL ranking",
        )
    )
    print()
    print(
        "Rankings are already near-perfect for eps >= 1-2 (and essentially\n"
        "exact among large places) — a business choosing where to open an\n"
        "establishment gets the same ordered list under provable privacy."
    )


if __name__ == "__main__":
    main()
