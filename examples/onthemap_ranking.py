"""Area Comparison ranking: the OnTheMap scenario (Sec 3.2, Figure 2).

The OnTheMap web tool ranks areas (places, within a state) by job count.
This example publishes place-by-sector-by-ownership employment through
the release facade, ranks the cells, and reports how well each private
ranking agrees with the SDL ranking (Spearman's rank correlation) —
overall and for the large-population places a site-selection analyst
would actually compare.  The 10 trials per point are one batched request
each; infeasible (mechanism, eps) pairs are reported as gaps, as in the
paper.

Run:  python examples/onthemap_ranking.py
"""

import numpy as np

from repro.api import ReleaseRequest, ReleaseSession
from repro.experiments.runner import mechanism_is_feasible
from repro.metrics import STRATUM_LABELS, spearman_correlation

ATTRS = ("place", "naics", "ownership")
TRIALS = 10


def main():
    session = ReleaseSession.from_synthetic(target_jobs=120_000, seed=5)

    rows = []
    for epsilon in (0.5, 1.0, 2.0, 4.0):
        for mechanism in ("log-laplace", "smooth-laplace"):
            request = ReleaseRequest(
                attrs=ATTRS,
                mechanism=mechanism,
                alpha=0.1,
                epsilon=epsilon,
                delta=0.05,
                n_trials=TRIALS,
                seed=1000,
            )
            if not mechanism_is_feasible(mechanism, request.params):
                rows.append([mechanism, epsilon, "-", "-"])
                continue
            result = session.run(request)
            mask = result.mask
            sdl_counts = result.sdl_noisy[mask]
            big = result.strata[mask] == 3
            overall, big_places = [], []
            for noisy in result.trials():
                overall.append(spearman_correlation(noisy[mask], sdl_counts))
                big_places.append(
                    spearman_correlation(noisy[mask][big], sdl_counts[big])
                )
            rows.append(
                [
                    mechanism,
                    epsilon,
                    float(np.mean(overall)),
                    float(np.mean(big_places)),
                ]
            )

    from repro.util import format_table

    print(
        format_table(
            headers=[
                "mechanism",
                "epsilon",
                "Spearman (all places)",
                f"Spearman ({STRATUM_LABELS[3]})",
            ],
            rows=rows,
            title="OnTheMap-style Area Comparison ranking vs the SDL ranking",
        )
    )
    print()
    print(session.ledger.summary())
    print()
    print(
        "Rankings are already near-perfect for eps >= 1-2 (and essentially\n"
        "exact among large places) — a business choosing where to open an\n"
        "establishment gets the same ordered list under provable privacy."
    )


if __name__ == "__main__":
    main()
