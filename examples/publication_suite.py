"""A full agency publication under one privacy budget.

Real LODES/QWI releases are *sets* of tables published together.  This
example declares a QWI-style suite — the headline place-level industry
table, a county rollup, a demographic cut, and per-place totals — splits
one (alpha, eps, delta) budget across them, releases everything, and
shows the accountant's ledger alongside per-product accuracy.

Run:  python examples/publication_suite.py
"""

import numpy as np

from repro.core import EREEParams, qwi_style_suite
from repro.data import SyntheticConfig, generate
from repro.util import format_table


def main():
    dataset = generate(SyntheticConfig(target_jobs=120_000, seed=21))
    worker_full = dataset.worker_full()

    params = EREEParams(alpha=0.05, epsilon=8.0, delta=0.05)
    suite = qwi_style_suite(params, mechanism_name="smooth-laplace")
    result = suite.release(worker_full, seed=22)

    per_product = suite.product_params()
    rows = []
    for product in suite.products:
        release = result[product.name]
        mask = release.released & (release.true > 0)
        mean_l1 = float(
            np.abs(release.noisy[mask] - release.true[mask]).mean()
        )
        relative = float(
            (
                np.abs(release.noisy[mask] - release.true[mask])
                / release.true[mask]
            ).mean()
        )
        rows.append(
            [
                product.name,
                f"{per_product[product.name].epsilon:.2f}",
                release.budget.mode,
                int(mask.sum()),
                mean_l1,
                f"{relative:.1%}",
            ]
        )

    print(
        format_table(
            headers=[
                "product",
                "eps",
                "mode",
                "cells",
                "mean L1",
                "mean rel. err",
            ],
            rows=rows,
            title=(
                "QWI-style publication at alpha=0.05, total eps=8, delta=0.05"
            ),
        )
    )
    print()
    print(
        f"Accountant: spent eps = {result.spent_epsilon:.3f} "
        f"of {params.epsilon} (sequential composition across products;\n"
        "each product's worker-attribute cells were budgeted by the "
        "weak-privacy d*eps rule automatically)."
    )


if __name__ == "__main__":
    main()
