"""A full agency publication under one privacy budget, via the facade.

Real LODES/QWI releases are *sets* of tables published together.  This
example declares a QWI-style suite — the headline place-level industry
table, a county rollup, a demographic cut, and per-place totals — as
declarative ``ReleaseRequest`` objects splitting one (alpha, eps, delta)
budget, executes them in a ``ReleaseSession`` whose ledger is armed with
the total budget, and shows the ledger's draw-down alongside per-product
accuracy.  The weak-privacy d*eps composition cost of worker-attribute
products is accounted automatically.

Run:  python examples/publication_suite.py
"""

import numpy as np

from repro.api import ReleaseRequest, ReleaseSession
from repro.util import format_table

ALPHA, TOTAL_EPSILON, DELTA = 0.05, 8.0, 0.05

# (name, attrs, share of the total epsilon budget)
PRODUCTS = (
    ("place-industry-ownership", ("place", "naics", "ownership"), 0.4),
    ("county-industry-ownership", ("county", "naics", "ownership"), 0.2),
    ("place-sex-education", ("place", "naics", "ownership", "sex", "education"), 0.3),
    ("place-totals", ("place",), 0.1),
)


def main():
    session = ReleaseSession.from_synthetic(
        target_jobs=120_000, seed=21, budget=TOTAL_EPSILON
    )

    # Worker-attribute products compose at d*eps under weak privacy, so
    # the ledger budget is the sum of each product's composed total.
    requests = [
        ReleaseRequest(
            attrs=attrs,
            mechanism="smooth-laplace",
            alpha=ALPHA,
            epsilon=TOTAL_EPSILON * share,
            delta=DELTA,
            seed=22 + index,
            label=name,
        )
        for index, (name, attrs, share) in enumerate(PRODUCTS)
    ]

    rows = []
    for request in requests:
        result = session.run(request)
        mask = result.mask
        errors = np.abs(result.trials()[0][mask] - result.true[mask])
        rows.append(
            [
                request.label,
                f"{request.epsilon:.2f}",
                result.budget.mode,
                int(mask.sum()),
                float(errors.mean()),
                f"{float((errors / result.true[mask]).mean()):.1%}",
            ]
        )

    print(
        format_table(
            headers=["product", "eps", "mode", "cells", "mean L1", "mean rel. err"],
            rows=rows,
            title=(
                f"QWI-style publication at alpha={ALPHA}, "
                f"total eps={TOTAL_EPSILON:g}, delta={DELTA}"
            ),
        )
    )
    print()
    print(session.ledger.summary())
    print()
    print(
        "Sequential composition across products; each product's "
        "worker-attribute cells\nwere budgeted by the weak-privacy d*eps "
        "rule automatically (see the d= column\nof the ledger entries)."
    )


if __name__ == "__main__":
    main()
