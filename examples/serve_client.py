"""Two tenants against one release service: budgets, dedupe, overdraft.

This example starts an in-process :class:`~repro.serve.ReleaseService`
on an ephemeral port (the same server ``repro serve`` runs), then drives
it with two concurrent tenants:

* ``research`` — a generous ε-budget with ``on_overdraft="warn"``; it
  keeps publishing past its budget and collects warnings.
* ``press`` — a tight ε-budget with ``on_overdraft="raise"``; its
  requests start bouncing with HTTP 402 once the ledger is spent, and
  the server refuses them *before* doing any compute.

Both tenants also re-request a release they already paid for, which the
service serves from the content-addressed store: same bytes back,
no new ledger entry, no compute.

Run:  python examples/serve_client.py
"""

import asyncio
import tempfile
import threading
from pathlib import Path

from repro.api import ReleaseRequest
from repro.data import SyntheticConfig
from repro.engine.store import ResultStore
from repro.experiments import ExperimentConfig
from repro.serve import (
    ReleaseCache,
    ReleaseService,
    ServeClient,
    ServeError,
    SessionPool,
    TenantPolicy,
    TenantRegistry,
)

EPSILON = 1.0  # per release
RESEARCH_BUDGET = 3.5  # warns past this
PRESS_BUDGET = 3.0  # hard stop past this
RELEASES_PER_TENANT = 5


def request(seed: int) -> ReleaseRequest:
    return ReleaseRequest(
        attrs=("place", "naics"),
        mechanism="smooth-laplace",
        alpha=0.1,
        epsilon=EPSILON,
        delta=0.05,
        seed=seed,
    )


def run_tenant(url: str, tenant: str, lines: list) -> None:
    with ServeClient(url) as client:
        for index in range(RELEASES_PER_TENANT):
            try:
                reply = client.release(tenant, request(seed=index))
            except ServeError as error:
                lines.append(
                    f"[{tenant}] release {index}: HTTP {error.status} — "
                    f"{error.payload['error']}"
                )
                continue
            ledger = reply["ledger"]
            note = f"warning: {reply['warning']}" if reply["warning"] else "ok"
            lines.append(
                f"[{tenant}] release {index}: spent "
                f"{ledger['spent_epsilon']:.1f} of their budget ({note})"
            )
        # One deliberate duplicate: already paid, so it comes back from
        # the store with no charge — even for an exhausted tenant.
        reply = client.release(tenant, request(seed=0))
        lines.append(
            f"[{tenant}] duplicate of release 0: cached={reply['cached']}, "
            f"charged={reply['charged']}, "
            f"ledger entries still {reply['ledger']['n_entries']}"
        )


def main():
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        pool = SessionPool(
            {
                "demo": ExperimentConfig(
                    data=SyntheticConfig(target_jobs=50_000, seed=3),
                    n_trials=1,
                    seed=3,
                )
            }
        )
        tenants = TenantRegistry(
            root=root / "ledgers",
            policies={
                "research": TenantPolicy(
                    epsilon_budget=RESEARCH_BUDGET, on_overdraft="warn"
                ),
                "press": TenantPolicy(epsilon_budget=PRESS_BUDGET),
            },
        )
        cache = ReleaseCache(ResultStore(root / "cache"))
        service = ReleaseService(pool, tenants, cache, port=0)

        ready = threading.Event()
        stop: list = []

        async def serve() -> None:
            loop = asyncio.get_running_loop()
            event = asyncio.Event()
            stop.append((loop, event))
            await service.start()
            ready.set()
            await event.wait()
            await service.shutdown()

        server_thread = threading.Thread(
            target=lambda: asyncio.run(serve()), daemon=True
        )
        server_thread.start()
        ready.wait(60)
        print(f"service up at {service.url}\n")

        research_lines: list = []
        press_lines: list = []
        workers = [
            threading.Thread(
                target=run_tenant,
                args=(service.url, "research", research_lines),
            ),
            threading.Thread(
                target=run_tenant, args=(service.url, "press", press_lines)
            ),
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        for line in research_lines + press_lines:
            print(line)

        with ServeClient(service.url) as client:
            metrics = client.metrics()
        releases = metrics["releases"]
        print(
            f"\nserver totals: {releases['computed']} computed, "
            f"{releases['deduped']} deduped, {releases['denied']} denied "
            f"(p50 {metrics['latency_ms']['p50']} ms)"
        )

        loop, event = stop[0]
        loop.call_soon_threadsafe(event.set)
        server_thread.join(30)
        print("service drained and stopped")


if __name__ == "__main__":
    main()
