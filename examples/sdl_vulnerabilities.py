"""The Sec 5.2 inference attacks, end to end.

Against the *current* SDL system (input noise infusion) an informed
attacker targeting an establishment that is alone in its workplace cell
can: (1) read off its workforce shape exactly; (2) with one known true
cell, recover its secret fuzz factor and exact total employment; and
(3) re-identify a worker who uniquely holds an attribute value, via the
preserved zero cells.

The same attacks against an (alpha, eps)-ER-EE private release fail.

Run:  python examples/sdl_vulnerabilities.py
"""

import numpy as np

from repro.attacks import (
    isolated_establishments,
    reidentification_attack,
    shape_attack,
    size_attack,
)
from repro.attacks.reidentification import unique_value_workers
from repro.core import EREEParams, SmoothLaplace
from repro.data import SyntheticConfig, generate
from repro.db import establishment_histograms
from repro.sdl import InputNoiseInfusion

WORKPLACE_ATTRS = ["place", "naics", "ownership"]
WORKER_ATTRS = ["sex", "education"]


def main():
    dataset = generate(SyntheticConfig(target_jobs=60_000, seed=7))
    worker_full = dataset.worker_full()
    sdl = InputNoiseInfusion(seed=8).fit(worker_full)

    targets = isolated_establishments(worker_full, WORKPLACE_ATTRS, min_size=25)
    print(
        f"{len(targets)} establishments are alone in their "
        "place x sector x ownership cell (size >= 25) — each is attackable.\n"
    )

    # --- Attack 1: exact shape recovery --------------------------------
    usable = None
    for target in targets:
        result = shape_attack(worker_full, sdl, target, WORKER_ATTRS)
        if result.usable:
            usable = result
            break
    assert usable is not None
    print("[shape attack] target:", usable.target.workplace_values)
    print(
        "  recovered shape max error vs truth:"
        f" {usable.max_shape_error:.2e}  (exact={usable.exact})"
    )

    # --- Attack 2: fuzz factor + total size recovery --------------------
    size_result = size_attack(worker_full, sdl, usable.target, WORKER_ATTRS)
    print("[size attack]  knowing one true cell count:")
    print(
        f"  recovered factor {size_result.recovered_factor:.6f} "
        f"(truth {size_result.true_factor:.6f}), "
        f"recovered size {size_result.recovered_size:.1f} "
        f"(truth {size_result.true_size})"
    )

    # --- Attack 3: re-identification through preserved zeros ------------
    for target in targets + isolated_establishments(
        worker_full, WORKPLACE_ATTRS, min_size=2
    ):
        values = unique_value_workers(worker_full, target, "education")
        if values:
            reid = reidentification_attack(
                worker_full, sdl, target, WORKER_ATTRS,
                known_attribute="education", known_value=values[0],
            )
            print("[re-identification] the unique worker with", values[0])
            print(
                f"  candidates: {reid.candidate_profiles} -> "
                f"succeeded={reid.succeeded}"
            )
            break

    # --- The same shape attack against an ER-EE private release ---------
    mechanism = SmoothLaplace(EREEParams(alpha=0.1, epsilon=1.0, delta=0.05))
    true = (
        establishment_histograms(worker_full, WORKER_ATTRS)[
            usable.target.establishment
        ]
        .toarray()
        .ravel()
        .astype(float)
    )
    noisy = np.clip(
        mechanism.release_counts(true, np.full_like(true, usable.target.size), seed=9),
        0,
        None,
    )
    recovered = noisy / noisy.sum()
    truth = true / true.sum()
    print("\n[defense] same pipeline vs a Smooth Laplace release:")
    print(
        "  recovered shape max error:"
        f" {np.abs(recovered - truth).max():.3f}  (exact recovery impossible;"
        " the Bayes factor is provably bounded by e^eps)"
    )


if __name__ == "__main__":
    main()
