"""Quickstart: publish an employment marginal through the release facade.

One ``ReleaseSession`` owns the synthetic snapshot, the fitted SDL
baseline and a privacy ledger.  Declarative ``ReleaseRequest`` objects
describe what to publish; the session executes them with the batched
Monte Carlo engine, computes the paper's metrics against the SDL
baseline, and records every release's composed (eps, delta) cost.

Run:  python examples/quickstart.py
"""

from repro.api import ReleaseRequest, ReleaseSession
from repro.util import format_table

ATTRS = ("place", "naics", "ownership")
TRIALS = 10


def main():
    # 1. One session = one synthetic 3-state snapshot (the real LODES
    #    data are confidential) + the current SDL protection baseline.
    session = ReleaseSession.from_synthetic(target_jobs=120_000, seed=1)
    print("Snapshot:", {k: int(v) for k, v in session.dataset.summary().items()})

    # 2. Provably private releases at (alpha=0.1, eps=2, delta=.05):
    #    one declarative request per mechanism, 10 Monte Carlo trials
    #    each, all reusing the session's cached marginal statistics.
    requests = ReleaseRequest.grid(
        ATTRS,
        mechanisms=("log-laplace", "smooth-gamma", "smooth-laplace"),
        alphas=(0.1,),
        epsilons=(2.0,),
        delta=0.05,
        n_trials=TRIALS,
        seed=100,
    )
    results = session.run_grid(requests)
    rows = [["input-noise-infusion (SDL)", "-", 1.0]]
    for result in results:
        rows.append(
            [
                result.request.mechanism,
                f"({result.request.alpha}, {result.request.epsilon})",
                result.l1_ratio(),
            ]
        )

    n_cells = int(results[0].mask.sum())
    print()
    print(
        format_table(
            headers=["release", "(alpha, eps)", "L1 ratio vs SDL"],
            rows=rows,
            title=f"Workload 1 marginal ({n_cells} evaluation cells, "
            f"mean over {TRIALS} trials)",
        )
    )
    print()
    print(session.ledger.summary())
    print()
    print(
        "The provably private Smooth Laplace release matches or beats the\n"
        "legacy SDL error while carrying a formal (alpha, eps, delta)\n"
        "guarantee — the paper's headline finding."
    )


if __name__ == "__main__":
    main()
