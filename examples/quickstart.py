"""Quickstart: generate a synthetic LODES snapshot and publish an
employment marginal three ways — with the current SDL system and with two
of the paper's provably private mechanisms — then compare errors.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import EREEParams, release_marginal
from repro.data import SyntheticConfig, generate
from repro.db import Marginal
from repro.metrics import mean_l1_error
from repro.sdl import InputNoiseInfusion
from repro.util import format_table

ATTRS = ["place", "naics", "ownership"]


def main():
    # 1. A synthetic 3-state snapshot (the real LODES data are confidential).
    dataset = generate(SyntheticConfig(target_jobs=120_000, seed=1))
    worker_full = dataset.worker_full()
    print("Snapshot:", {k: int(v) for k, v in dataset.summary().items()})

    # 2. The current protection system: input noise infusion.
    sdl = InputNoiseInfusion(seed=2).fit(worker_full)
    marginal = Marginal(worker_full.table.schema, ATTRS)
    sdl_answer = sdl.answer_marginal(worker_full, marginal)
    published = sdl_answer.true > 0

    # 3. Provably private releases at (alpha=0.1, eps=2, delta=.05).
    params = EREEParams(alpha=0.1, epsilon=2.0, delta=0.05)
    rows = []
    sdl_error = mean_l1_error(sdl_answer.true[published], sdl_answer.noisy[published])
    rows.append(["input-noise-infusion (SDL)", "-", sdl_error, 1.0])
    for mechanism in ("log-laplace", "smooth-gamma", "smooth-laplace"):
        errors = []
        for trial in range(10):
            release = release_marginal(
                worker_full, ATTRS, mechanism, params, seed=100 + trial
            )
            errors.append(
                mean_l1_error(release.true[published], release.noisy[published])
            )
        mean_error = float(np.mean(errors))
        rows.append(
            [mechanism, "(0.1, 2.0)", mean_error, mean_error / sdl_error]
        )

    print()
    print(
        format_table(
            headers=["release", "(alpha, eps)", "mean L1 / cell", "ratio vs SDL"],
            rows=rows,
            title=f"Workload 1 marginal ({int(published.sum())} published cells)",
        )
    )
    print()
    print(
        "The provably private Smooth Laplace release matches or beats the\n"
        "legacy SDL error while carrying a formal (alpha, eps, delta)\n"
        "guarantee — the paper's headline finding."
    )


if __name__ == "__main__":
    main()
