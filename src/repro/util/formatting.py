"""Plain-text table rendering for experiment reports.

The experiment harness regenerates the paper's figures as printed data
series; these helpers render them as aligned ASCII tables so benchmark
output is directly comparable to the published plots.
"""

from __future__ import annotations

import math
from collections.abc import Sequence


def format_float(value: float, digits: int = 3) -> str:
    """Render a float compactly: fixed point near 1, scientific when tiny/huge."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "nan"
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e5 or magnitude < 10 ** (-digits):
        return f"{value:.{digits}e}"
    return f"{value:.{digits}f}"


def format_count(value: float) -> str:
    """Render a count with thousands separators (rounded if fractional)."""
    return f"{round(value):,}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Cells are stringified with :func:`format_float` for floats and ``str``
    otherwise.  Column widths adapt to the longest cell.
    """
    rendered_rows = [
        [format_float(cell) if isinstance(cell, float) else str(cell) for cell in row]
        for row in rows
    ]
    all_rows = [list(headers)] + rendered_rows
    widths = [max(len(row[i]) for row in all_rows) for i in range(len(headers))]

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in rendered_rows)
    return "\n".join(lines)
