"""Random-number-generator plumbing.

Every stochastic component in this library takes an explicit
:class:`numpy.random.Generator`.  That makes experiments reproducible
(a single seed at the top deterministically drives data generation, the
SDL fuzz factors, and each privacy mechanism) and keeps the privacy
mechanisms honest: the caller can see exactly which randomness feeds a
release.

The helpers here convert seeds to generators, spawn independent child
streams, and derive stable per-name seeds for named subsystems.
"""

from __future__ import annotations

import hashlib

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_generator(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, a
    :class:`~numpy.random.SeedSequence`, or an existing generator (returned
    unchanged, so callers can thread one generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` statistically independent children.

    Uses the underlying bit generator's seed sequence when available and
    falls back to drawing child seeds otherwise.  Children are independent
    of each other and of future draws from the parent only in the fallback
    sense; for strict independence pass a fresh generator per component.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seed_seq = rng.bit_generator.seed_seq
    if seed_seq is not None:
        return [np.random.default_rng(child) for child in seed_seq.spawn(count)]
    seeds = rng.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(base_seed: int, name: str) -> int:
    """Derive a stable 63-bit seed for subsystem ``name`` from ``base_seed``.

    The derivation is a SHA-256 hash, so distinct names give independent
    streams and the mapping is stable across processes and platforms
    (unlike Python's randomized ``hash``).
    """
    digest = hashlib.sha256(f"{base_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & (2**63 - 1)
