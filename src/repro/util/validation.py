"""Argument-validation helpers.

All raise :class:`ValueError` with a message naming the offending
argument, so mechanism constructors fail fast on invalid privacy
parameters rather than producing silently unprivate releases.
"""

from __future__ import annotations

import math
from collections.abc import Container


def check_positive(name: str, value: float) -> float:
    """Require ``value`` to be a finite number strictly greater than zero."""
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Require ``value`` to be a finite number greater than or equal to zero."""
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``value`` to lie in the closed interval [0, 1]."""
    if not math.isfinite(value) or value < 0 or value > 1:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Require ``value`` to lie in the open interval (0, 1)."""
    if not math.isfinite(value) or value <= 0 or value >= 1:
        raise ValueError(f"{name} must lie in (0, 1), got {value!r}")
    return value


def check_in(name: str, value, allowed: Container) -> object:
    """Require ``value`` to be a member of ``allowed``."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value
