"""Shared utilities: random-number management, validation, formatting.

These helpers keep the rest of the library explicit about randomness
(every stochastic component takes a :class:`numpy.random.Generator`) and
about argument validation (fail fast with a clear message).
"""

from repro.util.formatting import format_table, format_float, format_count
from repro.util.rng import as_generator, spawn, derive_seed
from repro.util.validation import (
    check_fraction,
    check_in,
    check_nonnegative,
    check_positive,
    check_probability,
)

__all__ = [
    "as_generator",
    "spawn",
    "derive_seed",
    "check_fraction",
    "check_in",
    "check_nonnegative",
    "check_positive",
    "check_probability",
    "format_table",
    "format_float",
    "format_count",
]
