"""Backend resolution: one URL (or one picklable spec) → one backend.

The CLI's ``--store-url`` and the process executors' worker bootstrap
both need to turn a short description into a live backend; this module
is the single place that mapping lives.

URL schemes::

    /some/dir  or  relative/dir   LocalFSBackend on that directory
    file:///shared/bucket         RemoteObjectBackend over a shared
                                  filesystem "bucket" (NFS, CI cache)
    http://host:port              RemoteObjectBackend over an HTTP
    https://host:port             object server (see repro.storage.httpd)
    s3://bucket / gs://bucket     recognized but not bundled — the key
                                  layout is already S3/GCS-shaped, but
                                  this repo ships no cloud SDK, so these
                                  raise with instructions instead of
                                  half-working.

Remote backends need a *local cache root* (where downloads land and
mmaps point); callers pass the same directory they would have used as
the plain local store root, so ``--store-url`` composes with
``--snapshot-dir``/``--cache-dir`` instead of replacing them.
"""

from __future__ import annotations

from pathlib import Path
from urllib.parse import urlsplit

from repro.storage.backend import StoreStats
from repro.storage.local import LocalFSBackend
from repro.storage.remote import (
    FilesystemObjectStore,
    HTTPObjectStore,
    RemoteObjectBackend,
)

__all__ = ["backend_from_url", "backend_from_spec"]


def backend_from_url(
    url: str | Path,
    *,
    cache_root: Path | str | None = None,
    prefix: str = "",
    stats: StoreStats | None = None,
):
    """Resolve ``url`` to a live backend.

    A bare path (no scheme) is a local backend rooted there and
    ``cache_root`` is ignored; every remote scheme requires
    ``cache_root`` for the download cache.  ``prefix`` namespaces keys
    inside a shared remote (the stores use ``snapshots``/``results`` so
    one bucket serves both).
    """
    text = str(url)
    scheme = urlsplit(text).scheme if "://" in text else ""
    if scheme in ("", "local"):
        root = text.split("://", 1)[1] if scheme else text
        return LocalFSBackend(root, stats=stats)
    if scheme in ("s3", "gs"):
        raise NotImplementedError(
            f"{scheme}:// URLs need a cloud SDK this repo does not bundle; "
            "point --store-url at a file:// or http(s):// object store, or "
            f"construct RemoteObjectBackend with your own {scheme} client"
        )
    if scheme == "file":
        parts = urlsplit(text)
        objects = FilesystemObjectStore(Path(parts.netloc + parts.path))
    elif scheme in ("http", "https"):
        objects = HTTPObjectStore(text)
    else:
        raise ValueError(
            f"unrecognized store URL {text!r} "
            "(expected a path, file://, or http(s)://)"
        )
    if cache_root is None:
        raise ValueError(
            f"remote store URL {text!r} needs a local cache root "
            "(where downloads land and memory-maps point)"
        )
    return RemoteObjectBackend(
        objects, cache_root, prefix=prefix, stats=stats
    )


def backend_from_spec(spec: dict, *, stats: StoreStats | None = None):
    """Rebuild a backend from :meth:`StorageBackend.spec` output.

    This is how a store description crosses a process-pool boundary:
    the parent pickles ``store.backend.spec()`` (a plain dict), the
    worker rebuilds an equivalent backend here — local roots reattach,
    remote backends reconnect and share the same cache directory.
    """
    kind = spec.get("kind")
    if kind == "local":
        return LocalFSBackend(spec["root"], stats=stats)
    if kind == "remote":
        return backend_from_url(
            spec["url"],
            cache_root=spec["cache_root"],
            prefix=spec.get("prefix", ""),
            stats=stats,
        )
    raise ValueError(f"unrecognized backend spec {spec!r}")
