"""Remote object-store backend — one snapshot store shared by a fleet.

The cost model the paper's sweeps live under only pays off when built
economies and computed grid points are shared across machines: one
worker builds the ``metro-heavy`` snapshot, every other worker mmaps
it.  :class:`RemoteObjectBackend` makes that sharing a backend choice
rather than an architecture change — it keeps a full
:class:`~repro.storage.local.LocalFSBackend` as its *cache root* (so
every read still ends in a local, memory-mappable path) and mirrors
artifacts through a minimal :class:`ObjectStore` interface with
S3/GCS-shaped keys:

- **writes are write-through**: the artifact installs into the local
  cache first (atomically, exactly as the local backend would), then
  uploads; an upload failure degrades to a warning — persistence must
  never be worse than keeping the artifact locally;
- **reads are download-to-cache-then-mmap**: a cache miss fetches the
  object (or, for directory artifacts, every member file) and installs
  it into the cache atomically, so the caller always memory-maps local
  pages and a crashed download never leaves a partial directory a later
  read would trust.

Directory artifacts are committed remotely by a ``.complete`` manifest
object uploaded *last* — member objects without a manifest are
invisible, the remote analogue of ``meta.json``-written-last under the
local layout.

Two :class:`ObjectStore` implementations ship here: a filesystem one
(``file://`` URLs — a shared NFS/ci-cache directory standing in for a
bucket) and an HTTP one (``http(s)://`` — any server speaking plain
GET/PUT/DELETE, e.g. :mod:`repro.storage.httpd`).  Real ``s3://`` /
``gs://`` clients are deliberately not bundled (no extra dependencies);
the key shapes are already theirs, so wiring a client in is a
constructor, not a refactor.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import urllib.error
import urllib.parse
import urllib.request
import warnings
from collections.abc import Callable
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.storage.backend import STALE_STAGING_AGE_S, StoreStats
from repro.storage.local import LocalFSBackend

__all__ = [
    "ObjectStore",
    "FilesystemObjectStore",
    "HTTPObjectStore",
    "RemoteObjectBackend",
    "MANIFEST_NAME",
    "MANIFEST_SCHEMA_VERSION",
]

# The commit-point object for directory artifacts: uploaded last, so a
# directory "exists" remotely only once every member object does.
MANIFEST_NAME = ".complete"

MANIFEST_SCHEMA_VERSION = 1


@runtime_checkable
class ObjectStore(Protocol):
    """The minimal flat key → bytes interface a remote must speak."""

    url: str

    def get(self, key: str) -> bytes | None:
        """The object's bytes, or ``None`` if absent/unreadable."""
        ...

    def put(self, key: str, data: bytes) -> None:
        """Store ``data`` under ``key`` (last write wins)."""
        ...

    # Stores MAY additionally provide
    #     put_if_absent(key, data) -> bool
    # (atomic conditional create; True iff this call created the
    # object).  It is not part of the required protocol so that thin
    # adapters over dumb blob stores still qualify;
    # RemoteObjectBackend falls back to a non-atomic exists-then-put
    # when it is missing, which claim coordination tolerates (last
    # writer wins stays the safety net).

    def exists(self, key: str) -> bool:
        ...

    def list(self, prefix: str = "") -> list[str]:
        """Sorted keys starting with ``prefix``."""
        ...

    def delete(self, key: str) -> bool:
        ...


class FilesystemObjectStore:
    """An object store on a plain directory (``file://`` URLs).

    Stands in for a bucket wherever machines already share a
    filesystem — NFS, a CI cache volume, a container bind mount — and
    serves as the reference implementation for tests.  Objects are
    files under the root; puts are atomic (temp + rename) so a
    concurrently-reading worker never sees a torn object.
    """

    def __init__(self, root: Path | str):
        self.root = Path(root)
        self.url = f"file://{self.root.resolve()}" if self.root.is_absolute() else f"file://{self.root}"

    def __repr__(self) -> str:
        return f"FilesystemObjectStore({str(self.root)!r})"

    def _path(self, key: str) -> Path:
        return self.root / key

    def get(self, key: str) -> bytes | None:
        try:
            return self._path(key).read_bytes()
        except OSError:
            return None

    def put(self, key: str, data: bytes) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with open(descriptor, "wb") as handle:
                handle.write(data)
            Path(tmp_name).replace(path)
        except BaseException:
            Path(tmp_name).unlink(missing_ok=True)
            raise

    def put_if_absent(self, key: str, data: bytes) -> bool:
        """Atomic conditional create; True iff created here.

        On a shared filesystem this is exactly the arbitration lease
        files need: of N machines racing, the one whose ``os.link``
        publish succeeds holds the claim.  Staging the bytes first
        keeps the create content-atomic — a rival must never observe a
        half-written (hence "garbage, take it over") lease.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with open(descriptor, "wb") as handle:
                handle.write(data)
            try:
                os.link(tmp_name, path)
            except FileExistsError:
                return False
        finally:
            Path(tmp_name).unlink(missing_ok=True)
        return True

    def exists(self, key: str) -> bool:
        return self._path(key).is_file()

    def list(self, prefix: str = "") -> list[str]:
        if not self.root.is_dir():
            return []
        keys = []
        for path in self.root.rglob("*"):
            if not path.is_file() or path.name.startswith(".tmp"):
                continue
            key = path.relative_to(self.root).as_posix()
            if any(
                part.startswith(".") and part != MANIFEST_NAME
                for part in key.split("/")
            ):
                continue
            if key.startswith(prefix):
                keys.append(key)
        return sorted(keys)

    def delete(self, key: str) -> bool:
        path = self._path(key)
        try:
            path.unlink()
        except OSError:
            return False
        return True


class HTTPObjectStore:
    """An object store over plain HTTP GET/PUT/DELETE (stdlib only).

    Speaks to any server that stores request bodies by path —
    :class:`repro.storage.httpd.ObjectServer` in tests and CI, or a
    real blob gateway in a deployment.  Listing uses the ``/_list``
    endpoint (query ``prefix=``), which returns a JSON array of keys.
    """

    def __init__(self, url: str, *, timeout: float = 30.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    def __repr__(self) -> str:
        return f"HTTPObjectStore({self.url!r})"

    def _request(
        self, key: str, *, method: str, data: bytes | None = None
    ) -> bytes | None:
        request = urllib.request.Request(
            f"{self.url}/{urllib.parse.quote(key)}", data=data, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                return reply.read()
        except urllib.error.HTTPError as error:
            if error.code == 404:
                return None
            raise OSError(f"{method} {key} failed: HTTP {error.code}") from error
        except urllib.error.URLError as error:
            raise OSError(f"{method} {key} failed: {error.reason}") from error

    def get(self, key: str) -> bytes | None:
        try:
            return self._request(key, method="GET")
        except OSError:
            return None

    def put(self, key: str, data: bytes) -> None:
        self._request(key, method="PUT", data=data)

    def put_if_absent(self, key: str, data: bytes) -> bool:
        """Conditional PUT (``If-None-Match: *``); 412 means someone won.

        The server arbitrates atomically (``ObjectServer`` honors the
        precondition under its object-table lock), so this is a real
        fleet-wide conditional create, not exists-then-put.
        """
        request = urllib.request.Request(
            f"{self.url}/{urllib.parse.quote(key)}",
            data=data,
            method="PUT",
            headers={"If-None-Match": "*"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout):
                return True
        except urllib.error.HTTPError as error:
            if error.code == 412:
                return False
            raise OSError(
                f"PUT {key} failed: HTTP {error.code}"
            ) from error
        except urllib.error.URLError as error:
            raise OSError(f"PUT {key} failed: {error.reason}") from error

    def exists(self, key: str) -> bool:
        try:
            return self._request(key, method="HEAD") is not None
        except OSError:
            return False

    def list(self, prefix: str = "") -> list[str]:
        query = urllib.parse.urlencode({"prefix": prefix})
        request = urllib.request.Request(
            f"{self.url}/_list?{query}", method="GET"
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                body = reply.read()
        except (urllib.error.URLError, OSError):
            return []
        if body is None:
            return []
        try:
            keys = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return []
        return sorted(k for k in keys if isinstance(k, str))

    def delete(self, key: str) -> bool:
        try:
            return self._request(key, method="DELETE") is not None
        except OSError:
            return False


class RemoteObjectBackend:
    """Write-through, download-to-cache storage over an :class:`ObjectStore`.

    ``root`` is the *local cache root*: every path this backend hands
    out lives under it, so callers mmap local pages exactly as with
    :class:`LocalFSBackend` — the remote only ever feeds the cache.
    ``prefix`` namespaces this backend's keys inside a shared bucket
    (e.g. ``snapshots/`` vs ``results/``), and the shared
    :class:`~repro.storage.backend.StoreStats` instance is threaded
    into the cache backend so local and remote byte traffic land in one
    ledger.
    """

    def __init__(
        self,
        objects: ObjectStore,
        cache_root: Path | str,
        *,
        prefix: str = "",
        stats: StoreStats | None = None,
    ):
        self.objects = objects
        self.prefix = prefix.strip("/")
        self.stats = stats if stats is not None else StoreStats()
        self.cache = LocalFSBackend(cache_root, stats=self.stats)

    def __repr__(self) -> str:
        return (
            f"RemoteObjectBackend({self.objects!r}, "
            f"cache_root={str(self.cache.root)!r}, prefix={self.prefix!r})"
        )

    @property
    def root(self) -> Path:
        return self.cache.root

    def _okey(self, key: str) -> str:
        return f"{self.prefix}/{key}" if self.prefix else key

    def _warn_upload(self, key: str, error: Exception) -> None:
        warnings.warn(
            f"upload of {key!r} to {self.objects.url} failed ({error}); "
            "the artifact is kept in the local cache only",
            RuntimeWarning,
            stacklevel=3,
        )

    # -- writes ---------------------------------------------------------

    def put_file(self, key: str, data: bytes) -> Path:
        """Install into the cache, then mirror to the remote (write-through)."""
        final = self.cache.put_file(key, data)
        try:
            self.objects.put(self._okey(key), data)
            self.stats.bytes_written += len(data)
        except OSError as error:
            self._warn_upload(key, error)
        return final

    def put_if_absent(self, key: str, data: bytes) -> bool:
        """Conditional create *on the remote only* — never via the cache.

        Lease files coordinate the fleet, so the authoritative store
        must arbitrate; a locally-cached lease would only coordinate
        one machine with itself.  A remote that cannot answer fails
        *open* (claim granted, warning emitted): claims are an
        optimization, and a fleet that cannot coordinate degrades to
        the pre-claim behavior — everyone computes, last writer wins —
        rather than stalling on an unreachable lease.
        """
        okey = self._okey(key)
        conditional = getattr(self.objects, "put_if_absent", None)
        try:
            if conditional is not None:
                created = bool(conditional(okey, data))
            elif self.objects.exists(okey):
                created = False
            else:
                self.objects.put(okey, data)
                created = True
        except OSError as error:
            warnings.warn(
                f"conditional put of {key!r} to {self.objects.url} failed "
                f"({error}); claiming optimistically (fail-open)",
                RuntimeWarning,
                stacklevel=2,
            )
            return True
        if created:
            self.stats.bytes_written += len(data)
        return created

    def append_line(self, key: str, data: bytes, *, fsync: bool = True) -> Path:
        """Durably append to the cached journal, then mirror it whole.

        The local cache file is the durability anchor (``O_APPEND`` +
        ``fsync``, exactly as under :class:`LocalFSBackend`); the remote
        copy is a best-effort whole-object mirror, so a fleet-visible
        journal degrades to local-only with a warning rather than losing
        the append.
        """
        final = self.cache.append_line(key, data, fsync=fsync)
        try:
            body = final.read_bytes()
            self.objects.put(self._okey(key), body)
            self.stats.bytes_written += len(body)
        except OSError as error:
            self._warn_upload(key, error)
        return final

    def put_dir(
        self,
        key: str,
        fill: Callable[[Path], None],
        *,
        overwrite: bool = False,
        keep_existing: Callable[[Path], bool] | None = None,
    ) -> Path:
        """Stage/install locally (pool-friendly), then upload once.

        ``fill`` runs against ordinary local staging — a sharded build's
        process pool writes its chunks there exactly as under the local
        backend — and only the parent process uploads the installed
        files, member objects first, the ``.complete`` manifest last.
        """
        final = self.cache.put_dir(
            key, fill, overwrite=overwrite, keep_existing=keep_existing
        )
        self._upload_dir(key, final, overwrite)
        return final

    def _upload_dir(self, key: str, final: Path, overwrite: bool) -> None:
        okey = self._okey(key)
        try:
            if not overwrite and self.objects.exists(f"{okey}/{MANIFEST_NAME}"):
                return  # same key ⇒ same bytes: the remote copy stands
            manifest: dict[str, int] = {}
            for path in sorted(p for p in final.rglob("*") if p.is_file()):
                rel = path.relative_to(final).as_posix()
                data = path.read_bytes()
                self.objects.put(f"{okey}/{rel}", data)
                self.stats.bytes_written += len(data)
                manifest[rel] = len(data)
            self.objects.put(
                f"{okey}/{MANIFEST_NAME}",
                json.dumps(
                    {"schema": MANIFEST_SCHEMA_VERSION, "files": manifest},
                    sort_keys=True,
                ).encode("utf-8"),
            )
        except OSError as error:
            self._warn_upload(key, error)

    # -- reads ----------------------------------------------------------

    def _manifest(self, key: str) -> dict[str, int] | None:
        body = self.objects.get(f"{self._okey(key)}/{MANIFEST_NAME}")
        if body is None:
            return None
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != MANIFEST_SCHEMA_VERSION
            or not isinstance(payload.get("files"), dict)
        ):
            return None
        return payload["files"]

    def open_local(self, key: str) -> Path | None:
        """A cache path for ``key``, downloading on a cache miss.

        Directory artifacts download every manifest-listed member into
        staging and install atomically, so a cached directory's
        presence still implies its completeness.  Any remote failure is
        a miss, never an exception.
        """
        cached = self.cache.open_local(key)
        if cached is not None:
            return cached
        okey = self._okey(key)
        data = self.objects.get(okey)
        if data is not None:
            self.stats.bytes_read += len(data)
            return self.cache.put_file(key, data)
        files = self._manifest(key)
        if files is None:
            return None

        def download(staging: Path) -> None:
            for rel in files:
                body = self.objects.get(f"{okey}/{rel}")
                if body is None:
                    raise OSError(f"remote object {okey}/{rel} vanished")
                self.stats.bytes_read += len(body)
                target = staging / rel
                target.parent.mkdir(parents=True, exist_ok=True)
                target.write_bytes(body)

        try:
            return self.cache.put_dir(
                key, download, keep_existing=lambda path: True
            )
        except OSError:
            return None  # torn download: stay a miss, the cache stays clean

    def read_bytes(self, key: str, *, cache: bool = True) -> bytes | None:
        """Read one object, via the cache unless ``cache=False``.

        ``cache=False`` exists for keys *inside* directory artifacts
        (``<fingerprint>/meta.json``): installing one member file into
        the cache would fake a partial directory into existence, so
        those reads go straight to the remote.
        """
        cached = self.cache.read_bytes(key)
        if cached is not None:
            return cached
        data = self.objects.get(self._okey(key))
        if data is None:
            return None
        self.stats.bytes_read += len(data)
        if cache:
            self.cache.put_file(key, data)
        return data

    def peek(self, key: str) -> bytes | None:
        """Read the *remote* object directly; never consult or fill the cache.

        :meth:`read_bytes` serves the cached copy first, which is right
        for immutable content-addressed payloads and wrong for lease
        files that another machine may have released or taken over.
        """
        try:
            data = self.objects.get(self._okey(key))
        except OSError:
            return None
        if data is None:
            return None
        self.stats.bytes_read += len(data)
        return data

    def contains(self, key: str) -> bool:
        if self.cache.contains(key):
            return True
        okey = self._okey(key)
        return self.objects.exists(okey) or self.objects.exists(
            f"{okey}/{MANIFEST_NAME}"
        )

    def list_keys(self, prefix: str = "") -> list[str]:
        keys = set(self.cache.list_keys(prefix))
        start = len(self.prefix) + 1 if self.prefix else 0
        for okey in self.objects.list(self._okey(prefix) if prefix else self.prefix):
            key = okey[start:]
            if key and not key.endswith(MANIFEST_NAME):
                keys.add(key)
        return sorted(keys)

    def size_bytes(self, key: str) -> int:
        local = self.cache.size_bytes(key)
        if local:
            return local
        files = self._manifest(key)
        if files is not None:
            return sum(int(size) for size in files.values())
        data = self.objects.get(self._okey(key))
        return 0 if data is None else len(data)

    # -- maintenance ----------------------------------------------------

    def delete(self, key: str) -> bool:
        """Remove ``key`` from the cache *and* the remote."""
        removed = False
        if self.cache.contains(key):
            removed = self.cache.delete(key)
        okey = self._okey(key)
        try:
            removed = self.objects.delete(okey) or removed
            for member in self.objects.list(f"{okey}/"):
                removed = self.objects.delete(member) or removed
        except OSError as error:
            warnings.warn(
                f"remote delete of {key!r} failed ({error}); "
                "the local cache entry was removed",
                RuntimeWarning,
                stacklevel=2,
            )
        return removed

    def evict(self, key: str) -> bool:
        """Drop only the cached copy; the remote object stays authoritative."""
        if not self.cache.contains(key):
            return False
        return self.cache.delete(key)

    def prune_staging(
        self, *, max_age_s: float = STALE_STAGING_AGE_S
    ) -> list[Path]:
        return self.cache.prune_staging(max_age_s=max_age_s)

    def spec(self) -> dict:
        return {
            "kind": "remote",
            "url": self.objects.url,
            "cache_root": str(self.cache.root),
            "prefix": self.prefix,
        }
