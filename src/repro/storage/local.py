"""Local-filesystem backend — the historical store layout, byte for byte.

This is the extraction target of the refactor: everything
:class:`~repro.scenarios.store.SnapshotStore` and
:class:`~repro.engine.store.ResultStore` used to do against the
filesystem directly — staged atomic installs, umask honoring, age-gated
staging prune, corrupt-as-miss reads — now lives here once.  A key maps
to ``root / key`` verbatim, so a store pointed at an existing
``reports/snapshots/`` or ``reports/cache/`` tree written before the
refactor reads every entry as a hit with no migration, and fresh writes
land in exactly the directories and files the old code produced.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from collections.abc import Callable
from pathlib import Path

from repro.storage.backend import (
    STALE_STAGING_AGE_S,
    StoreStats,
    honor_umask,
)

__all__ = ["LocalFSBackend"]

# Staged directories keep the historical ".<name>.tmp-<random>" shape
# (tempfile.mkdtemp appends the random part to the prefix); staged
# files are ".<name>.<random>.tmp".  Both are dot-prefixed so listings
# skip them, and both match one of these markers so prune_staging() can
# tell staging from real artifacts.
_STAGING_DIR_MARKER = ".tmp-"
_STAGING_FILE_SUFFIX = ".tmp"


def _is_staging_name(name: str) -> bool:
    return name.startswith(".") and (
        _STAGING_DIR_MARKER in name or name.endswith(_STAGING_FILE_SUFFIX)
    )


class LocalFSBackend:
    """Atomic-install file/directory storage under one local root."""

    def __init__(
        self, root: Path | str, *, stats: StoreStats | None = None
    ):
        self.root = Path(root)
        self.stats = stats if stats is not None else StoreStats()

    def __repr__(self) -> str:
        return f"LocalFSBackend({str(self.root)!r})"

    def _path(self, key: str) -> Path:
        return self.root / key

    # -- writes ---------------------------------------------------------

    def put_file(self, key: str, data: bytes) -> Path:
        """Atomically install ``data`` at ``root/key`` (temp + replace)."""
        final = self._path(key)
        final.parent.mkdir(parents=True, exist_ok=True)
        descriptor, tmp_name = tempfile.mkstemp(
            dir=final.parent, prefix=f".{final.name}.", suffix=_STAGING_FILE_SUFFIX
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(data)
            honor_umask(Path(tmp_name))
            os.replace(tmp_name, final)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.bytes_written += len(data)
        return final

    def put_if_absent(self, key: str, data: bytes) -> bool:
        """Atomically create ``root/key``; True iff this call created it.

        The bytes are staged first and *published* with ``os.link``,
        which fails with ``FileExistsError`` when the key already
        exists — so the create is both exclusive **and** content-atomic.
        A plain ``O_EXCL`` create-then-write would expose a momentarily
        empty lease file, which a rival claimant reads as garbage and
        "takes over", defeating the exactly-once partition two
        concurrent drains rely on.
        """
        final = self._path(key)
        final.parent.mkdir(parents=True, exist_ok=True)
        descriptor, tmp_name = tempfile.mkstemp(
            dir=final.parent, prefix=f".{final.name}.", suffix=_STAGING_FILE_SUFFIX
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(data)
            honor_umask(Path(tmp_name))
            try:
                os.link(tmp_name, final)
            except FileExistsError:
                return False
        finally:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
        self.stats.bytes_written += len(data)
        return True

    def append_line(self, key: str, data: bytes, *, fsync: bool = True) -> Path:
        """Durably append one newline-terminated record at ``root/key``.

        ``O_APPEND`` makes concurrent appenders safe (each record lands
        whole at the then-current end of file) and ``fsync`` makes the
        append crash-durable: once this returns, the record survives a
        ``kill -9`` of the writer and a power loss of the host.  A brand
        new journal file inherits the process umask like every other
        artifact.
        """
        if not data.endswith(b"\n"):
            data = data + b"\n"
        final = self._path(key)
        final.parent.mkdir(parents=True, exist_ok=True)
        descriptor = os.open(
            final, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o666
        )
        try:
            os.write(descriptor, data)
            if fsync:
                os.fsync(descriptor)
        finally:
            os.close(descriptor)
        self.stats.bytes_written += len(data)
        return final

    def put_dir(
        self,
        key: str,
        fill: Callable[[Path], None],
        *,
        overwrite: bool = False,
        keep_existing: Callable[[Path], bool] | None = None,
    ) -> Path:
        """Stage next to ``root/key``, run ``fill``, rename into place.

        The staging directory is created *inside the destination's
        parent* so ``os.replace`` is a same-filesystem rename, and every
        write (including this one) first prunes staging orphaned by
        crashed builds.  On an install collision, ``keep_existing``
        arbitrates: a truthy verdict keeps the incumbent (same key ⇒
        same bytes), anything else displaces it — a corrupt or partial
        artifact must never shadow a fresh build.
        """
        final = self._path(key)
        final.parent.mkdir(parents=True, exist_ok=True)
        self.prune_staging()
        staging = Path(
            tempfile.mkdtemp(
                dir=final.parent, prefix=f".{final.name}{_STAGING_DIR_MARKER}"
            )
        )
        try:
            fill(staging)
            honor_umask(staging)
            self.stats.bytes_written += sum(
                p.stat().st_size for p in staging.rglob("*") if p.is_file()
            )
            self._install(staging, final, overwrite, keep_existing)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        return final

    def _install(
        self,
        staging: Path,
        final: Path,
        overwrite: bool,
        keep_existing: Callable[[Path], bool] | None,
    ) -> None:
        if overwrite:
            shutil.rmtree(final, ignore_errors=True)
        try:
            os.replace(staging, final)
            return
        except OSError:
            pass
        # ``final`` already exists (a concurrent writer, or a leftover
        # directory).  Let the caller decide whether the incumbent is
        # worth keeping; without a verdict, the fresh build wins.
        if keep_existing is not None and keep_existing(final):
            shutil.rmtree(staging, ignore_errors=True)
            return
        shutil.rmtree(final, ignore_errors=True)
        os.replace(staging, final)

    # -- reads ----------------------------------------------------------

    def open_local(self, key: str) -> Path | None:
        path = self._path(key)
        return path if path.exists() else None

    def read_bytes(self, key: str, *, cache: bool = True) -> bytes | None:
        path = self._path(key)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        self.stats.bytes_read += len(data)
        return data

    def peek(self, key: str) -> bytes | None:
        """Local storage is the authority: peek is a plain read."""
        return self.read_bytes(key)

    def contains(self, key: str) -> bool:
        return self._path(key).exists()

    def list_keys(self, prefix: str = "") -> list[str]:
        if not self.root.is_dir():
            return []
        keys = []
        for dirpath, dirnames, filenames in os.walk(self.root):
            dirnames[:] = [d for d in dirnames if not d.startswith(".")]
            base = Path(dirpath)
            for name in filenames:
                if name.startswith("."):
                    continue
                key = (base / name).relative_to(self.root).as_posix()
                if key.startswith(prefix):
                    keys.append(key)
        return sorted(keys)

    def size_bytes(self, key: str) -> int:
        path = self._path(key)
        if path.is_file():
            return path.stat().st_size
        if not path.is_dir():
            return 0
        return sum(p.stat().st_size for p in path.rglob("*") if p.is_file())

    # -- maintenance ----------------------------------------------------

    def delete(self, key: str) -> bool:
        path = self._path(key)
        if path.is_dir():
            shutil.rmtree(path)
            return True
        if path.is_file():
            path.unlink()
            return True
        return False

    def evict(self, key: str) -> bool:
        # Local storage *is* the authority: quarantining and deleting
        # are the same operation.
        return self.delete(key)

    def prune_staging(
        self, *, max_age_s: float = STALE_STAGING_AGE_S
    ) -> list[Path]:
        """Delete staging entries orphaned by crashed writers.

        A writer that dies between staging and ``os.replace`` leaves
        its entry behind forever — listings skip it, but nothing ever
        reclaimed the space.  Every :meth:`put_dir` calls this with the
        default age gate, so leftovers disappear on the next write
        while a *concurrent* writer's live staging — always younger
        than ``max_age_s`` — is untouched.  ``max_age_s=0`` clears
        everything.  Staging lives next to its destination, so the scan
        covers the root and its immediate subdirectories (the deepest
        level artifacts install into).

        Returns the entries actually removed (an undeletable one —
        say, another user's on a shared store — is not reported).
        """
        if not self.root.is_dir():
            return []
        removed = []
        now = time.time()
        candidates = []
        try:
            for path in self.root.iterdir():
                if _is_staging_name(path.name):
                    candidates.append(path)
                elif path.is_dir() and not path.name.startswith("."):
                    candidates.extend(
                        sub
                        for sub in path.iterdir()
                        if _is_staging_name(sub.name)
                    )
        except OSError:
            return removed  # root vanished under us
        for path in candidates:
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue  # vanished under us (a concurrent prune/install)
            if age < max_age_s:
                continue
            if path.is_dir():
                shutil.rmtree(path, ignore_errors=True)
            else:
                try:
                    path.unlink()
                except OSError:
                    pass
            if not path.exists():
                removed.append(path)
        return removed

    def spec(self) -> dict:
        return {"kind": "local", "root": str(self.root)}
