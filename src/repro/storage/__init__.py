"""Storage backends: one I/O protocol under every store.

See :mod:`repro.storage.backend` for the protocol and the design
rationale; :mod:`repro.storage.local` and :mod:`repro.storage.remote`
for the two shipped backends; :mod:`repro.storage.url` for
``--store-url`` resolution; :mod:`repro.storage.httpd` for the
test/CI HTTP object server.
"""

from repro.storage.backend import (
    STALE_STAGING_AGE_S,
    StorageBackend,
    StoreStats,
    current_umask,
    honor_umask,
)
from repro.storage.local import LocalFSBackend
from repro.storage.remote import (
    FilesystemObjectStore,
    HTTPObjectStore,
    ObjectStore,
    RemoteObjectBackend,
)
from repro.storage.url import backend_from_spec, backend_from_url

__all__ = [
    "STALE_STAGING_AGE_S",
    "StorageBackend",
    "StoreStats",
    "current_umask",
    "honor_umask",
    "LocalFSBackend",
    "RemoteObjectBackend",
    "ObjectStore",
    "FilesystemObjectStore",
    "HTTPObjectStore",
    "backend_from_spec",
    "backend_from_url",
]
