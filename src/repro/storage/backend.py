"""The storage-backend protocol: one I/O contract under every store.

:class:`~repro.scenarios.store.SnapshotStore` (fingerprint-addressed
snapshot directories) and :class:`~repro.engine.store.ResultStore`
(content-addressed JSON/NPZ payloads) used to be two independent
hand-rolled filesystem stores, each re-implementing atomic-rename
installs, umask honoring, stale-staging prune and corrupt-as-miss
reads.  This module extracts that I/O contract into a single
:class:`StorageBackend` protocol so both stores become thin
addressing/serialization layers and the I/O can be swapped:

- :class:`~repro.storage.local.LocalFSBackend` reproduces the
  historical on-disk layout byte for byte under one root directory;
- :class:`~repro.storage.remote.RemoteObjectBackend` speaks a minimal
  object-store interface (S3/GCS-shaped keys) with
  download-to-local-cache-then-mmap reads and write-through puts, so a
  fleet of machines shares one set of built economies and computed
  points.

**Keys** are opaque relative paths (``"<fingerprint>"`` for a snapshot
directory, ``"ab/abc123....json"`` for a result payload).  The backend
never interprets them beyond path mapping; addressing — fingerprints,
content hashes, fan-out — stays entirely in the stores.

**Install semantics** are atomic everywhere: a file or directory is
staged next to its destination and renamed into place, so a crashed
writer can never leave a partial artifact that a later read would
trust.  Staged leftovers are age-gated garbage (:meth:`prune_staging`).

**Telemetry** is one shared :class:`StoreStats`: the store layers count
hits/misses/writes/evictions (they know what a miss *means*), the
backend counts bytes moved (it knows what I/O actually happened), and
both land in the same object so ``repro storage stats`` and
``repro sweep --json`` report a unified view.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Protocol, runtime_checkable

__all__ = [
    "StoreStats",
    "StorageBackend",
    "STALE_STAGING_AGE_S",
    "STAGING_MARKER",
    "current_umask",
    "honor_umask",
]

# Staging entries older than this are considered orphans of a crashed
# writer and removed by prune_staging(); the age gate keeps a concurrent
# writer's live staging safe.
STALE_STAGING_AGE_S = 3600.0

# Staged directories are named ".<basename>.tmp-<random>" (tempfile
# keeps the prefix); staged files are ".<basename>.<random>.tmp".  Both
# start with "." so listings skip them, and both carry ".tmp" so
# prune_staging() can recognize them.
STAGING_MARKER = ".tmp"


@dataclass
class StoreStats:
    """Unified store telemetry: hits/misses/writes/evictions/bytes moved.

    One instance is shared by a store and its backend: the store
    increments the semantic counters (``hits``/``misses``/``writes``
    when a lookup or persist happens, ``evictions`` when a corrupt
    artifact is quarantined or deleted), the backend the physical ones
    (``bytes_read``/``bytes_written`` as data actually moves across
    disk or network).
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def merge(self, other: "StoreStats") -> "StoreStats":
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self


@runtime_checkable
class StorageBackend(Protocol):
    """Opaque-key storage with atomic installs and corrupt-as-miss reads.

    ``root`` is the backend's *local* directory — the store itself for
    :class:`~repro.storage.local.LocalFSBackend`, the download cache
    for :class:`~repro.storage.remote.RemoteObjectBackend` — and what
    :meth:`open_local` paths live under, so callers can always
    ``np.load(..., mmap_mode="r")`` what they are handed.
    """

    root: Path
    stats: StoreStats

    def put_file(self, key: str, data: bytes) -> Path:
        """Atomically install ``data`` under ``key``; returns the local path."""
        ...

    def put_if_absent(self, key: str, data: bytes) -> bool:
        """Create ``key`` atomically iff no artifact exists; True if created.

        The coordination primitive under
        :class:`~repro.runtime.claims.ClaimBoard` lease files: of N
        concurrent callers, exactly one wins (``O_EXCL`` locally,
        conditional PUT remotely).  Unlike every other write this is
        *not* staged — the conditional create is itself the atomicity —
        and remote backends go straight to the authoritative store,
        never through a local cache.  Backends that cannot coordinate
        (an unreachable remote) fail *open* — claims are an
        optimization; duplicated work is always acceptable, waiting
        forever on a phantom owner is not.
        """
        ...

    def peek(self, key: str) -> bytes | None:
        """An *authoritative, uncached* read of ``key``'s bytes.

        Lease files change out-of-band (another machine released or
        took over), so reading them through a write-through cache would
        serve stale coordination state.  Local backends read the file;
        remote backends ask the object store directly and never
        populate the cache.
        """
        ...

    def append_line(self, key: str, data: bytes, *, fsync: bool = True) -> Path:
        """Durably append one record to the artifact at ``key``.

        The journal primitive: ``data`` (one line, newline appended if
        missing) lands at the end of the local file and — with ``fsync``
        (the default) — is flushed to stable storage before this call
        returns, so an acknowledged append survives a crash of the
        writer *and* of the machine.  Appends are not atomic installs:
        a writer that dies mid-append may leave a torn final line, which
        readers must tolerate (and truncate) on replay.  Remote backends
        mirror the whole journal upstream on a best-effort basis, like
        any other write-through put.
        """
        ...

    def put_dir(
        self,
        key: str,
        fill: Callable[[Path], None],
        *,
        overwrite: bool = False,
        keep_existing: Callable[[Path], bool] | None = None,
    ) -> Path:
        """Stage a directory, let ``fill`` populate it, install atomically.

        ``fill(staging)`` writes the directory's contents (it may fan
        work out to a process pool — the staged files are ordinary local
        files).  If the destination already exists and ``overwrite`` is
        false, ``keep_existing(final)`` decides whether the incumbent
        survives (``True``: staging is discarded — same key ⇒ same
        bytes) or is displaced (``False``/``None``: a corrupt or
        partial incumbent must never shadow a fresh build).
        """
        ...

    def open_local(self, key: str) -> Path | None:
        """A local path for ``key``'s artifact, or ``None`` (a miss).

        Local backends return the artifact in place; remote backends
        download it into the cache root (atomically) first.  The caller
        may memory-map the result.  Any I/O failure is a miss, never an
        exception: reads must never be worse than recomputing.
        """
        ...

    def read_bytes(self, key: str, *, cache: bool = True) -> bytes | None:
        """The artifact's bytes, or ``None`` (a miss).

        ``cache=False`` keeps a remote fetch out of the local cache —
        required for keys *inside* directory artifacts (caching one
        member file would fake a partial directory into existence).
        """
        ...

    def contains(self, key: str) -> bool:
        """Whether an artifact exists for ``key`` (no counters touched)."""
        ...

    def list_keys(self, prefix: str = "") -> list[str]:
        """Sorted keys of every stored file (staging excluded)."""
        ...

    def delete(self, key: str) -> bool:
        """Remove ``key`` everywhere the backend wrote it; True if found."""
        ...

    def evict(self, key: str) -> bool:
        """Remove only the *local* copy of ``key`` (quarantine).

        For a local backend this is :meth:`delete`; for a remote one it
        drops the cached copy while the authoritative remote object
        survives, so the next read re-downloads a clean artifact.
        """
        ...

    def prune_staging(
        self, *, max_age_s: float = STALE_STAGING_AGE_S
    ) -> list[Path]:
        """Delete staging entries orphaned by crashed writers (age-gated)."""
        ...

    def size_bytes(self, key: str) -> int:
        """Total stored bytes under ``key`` (0 when absent)."""
        ...

    def spec(self) -> dict:
        """A picklable description a worker process can rebuild from."""
        ...


def current_umask() -> int:
    """The process umask, read without mutating it when possible.

    The classic ``os.umask(0); os.umask(previous)`` dance opens a
    window in which files created by *other threads* land
    world-writable, so on Linux the value is read from
    ``/proc/self/status`` instead; the set-and-restore fallback only
    runs where no such interface exists.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as status:
            for line in status:
                if line.startswith("Umask:"):
                    return int(line.split()[1], 8)
    except (OSError, ValueError, IndexError):
        pass
    umask = os.umask(0)
    os.umask(umask)
    return umask


def honor_umask(staging: Path) -> None:
    """Re-permission a staged tree to what the process umask grants.

    ``tempfile.mkdtemp``/``mkstemp`` deliberately create ``0o700``/
    ``0o600`` entries and ``os.replace`` preserves the mode, so without
    this every installed artifact would be unreadable to other users —
    silently turning a shared store (CI cache, multi-user machine) into
    a per-user one.  Files get ``0o666 & ~umask``, directories
    ``0o777 & ~umask``, exactly what a plain ``mkdir``/``open`` would
    have produced outside ``tempfile``.
    """
    umask = current_umask()
    dir_mode = 0o777 & ~umask
    file_mode = 0o666 & ~umask
    os.chmod(staging, dir_mode if staging.is_dir() else file_mode)
    if staging.is_dir():
        for path in staging.rglob("*"):
            os.chmod(path, dir_mode if path.is_dir() else file_mode)
