"""A minimal in-process HTTP object server (stdlib only).

Backs :class:`~repro.storage.remote.HTTPObjectStore` in tests and CI:
a :class:`http.server.ThreadingHTTPServer` that stores request bodies
by URL path — GET/HEAD read, PUT writes, DELETE removes, and
``/_list?prefix=`` returns a JSON array of keys.  Objects live either
in memory (the default; perfect for tests) or under a directory
(``repro storage serve --root``, for a poor-man's fleet share where no
common filesystem exists).

This is emulation infrastructure, not a production blob store: no
auth, no ranged reads, no multipart.  Its value is that the client
side — :class:`HTTPObjectStore` — is exercised over a real socket with
real request framing, so the ``http://`` scheme in ``--store-url`` is
tested end to end without any extra dependency.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.storage.remote import FilesystemObjectStore

__all__ = ["ObjectServer"]


class _MemoryObjects:
    """The in-memory object table (thread-safe: the server is threading)."""

    def __init__(self) -> None:
        self._objects: dict[str, bytes] = {}
        self._lock = threading.Lock()

    def get(self, key: str) -> bytes | None:
        with self._lock:
            return self._objects.get(key)

    def put(self, key: str, data: bytes) -> None:
        with self._lock:
            self._objects[key] = data

    def put_if_absent(self, key: str, data: bytes) -> bool:
        with self._lock:
            if key in self._objects:
                return False
            self._objects[key] = data
            return True

    def exists(self, key: str) -> bool:
        with self._lock:
            return key in self._objects

    def list(self, prefix: str = "") -> list[str]:
        with self._lock:
            return sorted(k for k in self._objects if k.startswith(prefix))

    def delete(self, key: str) -> bool:
        with self._lock:
            return self._objects.pop(key, None) is not None


class _InFlight:
    """Counts requests currently being handled, for graceful drain.

    Connections (keep-alive sockets waiting for their next request) are
    deliberately *not* counted — draining waits for work in progress,
    not for idle clients to hang up.
    """

    def __init__(self) -> None:
        self._count = 0
        self._condition = threading.Condition()

    def __enter__(self) -> "_InFlight":
        with self._condition:
            self._count += 1
        return self

    def __exit__(self, *exc_info) -> None:
        with self._condition:
            self._count -= 1
            if self._count == 0:
                self._condition.notify_all()

    def wait_idle(self, timeout: float) -> bool:
        """Block until no request is in flight; False on timeout."""
        with self._condition:
            return self._condition.wait_for(
                lambda: self._count == 0, timeout=timeout
            )


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # tests and CI don't want per-request stderr chatter

    @property
    def objects(self):
        return self.server.objects  # type: ignore[attr-defined]

    def _key(self) -> str:
        parsed = urllib.parse.urlsplit(self.path)
        return urllib.parse.unquote(parsed.path.lstrip("/"))

    def _reply(self, status: int, body: bytes = b"", *, head: bool = False) -> None:
        self.send_response(status)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if not head and body:
            self.wfile.write(body)

    def do_GET(self, *, head: bool = False) -> None:
        with self.server.in_flight:  # type: ignore[attr-defined]
            parsed = urllib.parse.urlsplit(self.path)
            if parsed.path.lstrip("/") == "_list":
                prefix = urllib.parse.parse_qs(parsed.query).get("prefix", [""])[0]
                body = json.dumps(self.objects.list(prefix)).encode("utf-8")
                self._reply(200, body, head=head)
                return
            data = self.objects.get(self._key())
            if data is None:
                self._reply(404, b"not found", head=head)
            else:
                self._reply(200, data, head=head)

    def do_HEAD(self) -> None:
        self.do_GET(head=True)

    def do_PUT(self) -> None:
        with self.server.in_flight:  # type: ignore[attr-defined]
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length)
            key = self._key()
            # "If-None-Match: *" is the conditional-create precondition
            # (RFC 9110 §13.1.2): create iff no object exists, 412
            # otherwise.  Both object tables arbitrate atomically —
            # under the memory table's lock, or via O_EXCL on disk —
            # so racing fleet clients get exactly one 200.
            if self.headers.get("If-None-Match") == "*":
                if self.objects.put_if_absent(key, body):
                    self._reply(200)
                else:
                    self._reply(412, b"precondition failed")
                return
            self.objects.put(key, body)
            self._reply(200)

    def do_DELETE(self) -> None:
        with self.server.in_flight:  # type: ignore[attr-defined]
            if self.objects.delete(self._key()):
                self._reply(200)
            else:
                self._reply(404, b"not found")


class ObjectServer:
    """A context-managed HTTP object server on an ephemeral (or fixed) port.

    >>> with ObjectServer() as server:
    ...     store = HTTPObjectStore(server.url)

    With ``root`` the object table is a directory (shared with any
    ``file://`` reader of the same path); without it, objects live in
    memory and vanish with the server.
    """

    DRAIN_TIMEOUT_S = 10.0

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        root: Path | str | None = None,
    ):
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.objects = (  # type: ignore[attr-defined]
            _MemoryObjects() if root is None else FilesystemObjectStore(root)
        )
        self._httpd.in_flight = _InFlight()  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def port(self) -> int:
        """The bound port (the ephemeral one the OS picked for port 0)."""
        return int(self._httpd.server_address[1])

    def start(self) -> "ObjectServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-object-server", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, drain in-flight requests, release the socket.

        Requests already being handled finish and their responses go
        out (bounded by ``DRAIN_TIMEOUT_S``); idle keep-alive
        connections are not waited for — their sockets die with the
        daemonized handler threads.
        """
        self._httpd.shutdown()
        self._httpd.in_flight.wait_idle(  # type: ignore[attr-defined]
            self.DRAIN_TIMEOUT_S
        )
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def serve_forever(self) -> None:
        """Serve on the calling thread (``repro storage serve``)."""
        try:
            self._httpd.serve_forever()
        finally:
            self._httpd.in_flight.wait_idle(  # type: ignore[attr-defined]
                self.DRAIN_TIMEOUT_S
            )
            self._httpd.server_close()

    def __enter__(self) -> "ObjectServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
