"""repro — reproduction of "Utility Cost of Formal Privacy for Releasing
National Employer-Employee Statistics" (Haney et al., SIGMOD 2017).

The package implements the paper end to end on a synthetic LODES-style
snapshot (the production LEHD data are confidential):

- :mod:`repro.db` — the relational substrate and marginal-query engine;
- :mod:`repro.data` — the synthetic employer-employee data generator;
- :mod:`repro.sdl` — the current protection system (input noise infusion);
- :mod:`repro.dp` — classical differential privacy (edge/node baselines);
- :mod:`repro.core` — (α, ε[, δ])-ER-EE privacy and the Log-Laplace,
  Smooth Gamma and Smooth Laplace mechanisms;
- :mod:`repro.pufferfish` — the Bayes-factor requirements, executable;
- :mod:`repro.attacks` — the Sec 5.2 attacks on input noise infusion;
- :mod:`repro.metrics` — L1-ratio, Spearman and stratification metrics;
- :mod:`repro.experiments` — the harness regenerating every table/figure.

Quickstart::

    from repro.data import generate, SyntheticConfig
    from repro.core import EREEParams, release_marginal

    dataset = generate(SyntheticConfig(target_jobs=100_000))
    release = release_marginal(
        dataset.worker_full(),
        ["place", "naics", "ownership"],
        "smooth-laplace",
        EREEParams(alpha=0.1, epsilon=2.0, delta=0.05),
        seed=0,
    )
"""

from repro.core import (
    EREEParams,
    LogLaplace,
    SmoothGamma,
    SmoothLaplace,
    release_marginal,
)
from repro.data import LODESDataset, SyntheticConfig, generate

__version__ = "1.0.0"

__all__ = [
    "EREEParams",
    "LogLaplace",
    "SmoothGamma",
    "SmoothLaplace",
    "release_marginal",
    "generate",
    "SyntheticConfig",
    "LODESDataset",
    "__version__",
]
