"""repro — reproduction of "Utility Cost of Formal Privacy for Releasing
National Employer-Employee Statistics" (Haney et al., SIGMOD 2017).

The package implements the paper end to end on a synthetic LODES-style
snapshot (the production LEHD data are confidential):

- :mod:`repro.db` — the relational substrate and marginal-query engine;
- :mod:`repro.data` — the synthetic employer-employee data generator;
- :mod:`repro.sdl` — the current protection system (input noise infusion);
- :mod:`repro.dp` — classical differential privacy (edge/node baselines);
- :mod:`repro.core` — (α, ε[, δ])-ER-EE privacy and the Log-Laplace,
  Smooth Gamma and Smooth Laplace mechanisms;
- :mod:`repro.pufferfish` — the Bayes-factor requirements, executable;
- :mod:`repro.attacks` — the Sec 5.2 attacks on input noise infusion;
- :mod:`repro.metrics` — L1-ratio, Spearman and stratification metrics;
- :mod:`repro.experiments` — the harness regenerating every table/figure;
- :mod:`repro.api` — the release-session facade: mechanism registry,
  declarative requests, composition-aware privacy ledger.

Quickstart (the facade)::

    from repro.api import ReleaseSession, ReleaseRequest

    session = ReleaseSession.from_synthetic(target_jobs=100_000, seed=1)
    result = session.run(
        ReleaseRequest(
            attrs=("place", "naics", "ownership"),
            mechanism="smooth-laplace",
            alpha=0.1, epsilon=2.0, delta=0.05,
            seed=0,
        )
    )
"""

from repro.core import (
    EREEParams,
    LogLaplace,
    SmoothGamma,
    SmoothLaplace,
    release_marginal,
)
from repro.data import LODESDataset, SyntheticConfig, generate

__version__ = "1.0.0"

_API_EXPORTS = ("ReleaseSession", "ReleaseRequest", "ReleaseResult", "PrivacyLedger")

__all__ = [
    "EREEParams",
    "LogLaplace",
    "SmoothGamma",
    "SmoothLaplace",
    "release_marginal",
    "generate",
    "SyntheticConfig",
    "LODESDataset",
    "__version__",
    *_API_EXPORTS,
]


def __getattr__(name: str):
    # The facade pulls in the experiment layer; load it on first use so
    # `import repro` stays light and cycle-free.
    if name in _API_EXPORTS:
        import repro.api

        return getattr(repro.api, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
