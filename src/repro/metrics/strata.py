"""Place-population stratification of marginal cells.

Every figure in the paper is reported overall and stratified by the
2010-Census population of the cell's place: 0–100, 100–10k, 10k–100k,
and 100k+.  A marginal that includes the ``place`` attribute maps each
cell to its place and hence to a stratum.
"""

from __future__ import annotations

import numpy as np

from repro.data.geography import PLACE_STRATA, stratum_codes_of_populations
from repro.db.query import Marginal

STRATUM_LABELS: tuple[str, ...] = tuple(label for label, _, _ in PLACE_STRATA)


def cell_strata(marginal: Marginal, place_populations: np.ndarray) -> np.ndarray:
    """Stratum index per marginal cell (length ``marginal.n_cells``).

    ``place_populations[p]`` is the population of place code ``p``.  The
    marginal must include the ``place`` attribute.
    """
    if "place" not in marginal.attrs:
        raise ValueError(
            f"marginal over {marginal.attrs} has no 'place' attribute to stratify by"
        )
    place_strata = stratum_codes_of_populations(place_populations)
    cell_place = marginal.project_onto(["place"])
    return place_strata[cell_place]


def stratified_mask(
    marginal: Marginal, place_populations: np.ndarray, stratum: int
) -> np.ndarray:
    """Boolean mask of the marginal's cells lying in ``stratum``."""
    if not (0 <= stratum < len(PLACE_STRATA)):
        raise ValueError(
            f"stratum must be in [0, {len(PLACE_STRATA)}), got {stratum}"
        )
    return cell_strata(marginal, place_populations) == stratum
