"""Additive-error metrics (Definition 2.5 and the Sec 10 error ratio).

The paper reports the cost of provable privacy as the ratio of the
average L1 error of a provably private release (over independent trials)
to the L1 error of the current SDL release, overall and per place-size
stratum.
"""

from __future__ import annotations

import numpy as np

from repro.util import check_positive


def l1_error(true: np.ndarray, noisy: np.ndarray) -> float:
    """Total L1 error ||q(D) - q~(D)||_1 over the released cells."""
    true = np.asarray(true, dtype=np.float64)
    noisy = np.asarray(noisy, dtype=np.float64)
    if true.shape != noisy.shape:
        raise ValueError(f"shape mismatch: {true.shape} vs {noisy.shape}")
    return float(np.abs(true - noisy).sum())


def l1_error_batch(true: np.ndarray, noisy_trials: np.ndarray) -> np.ndarray:
    """Per-trial L1 errors of a ``(n_trials, n_cells)`` release matrix.

    The trial axis reduces in one vectorized pass instead of a per-trial
    list comprehension; ``l1_error_batch(t, m)[i] == l1_error(t, m[i])``.
    """
    true = np.asarray(true, dtype=np.float64)
    noisy_trials = np.asarray(noisy_trials, dtype=np.float64)
    if noisy_trials.ndim != 2 or noisy_trials.shape[1] != true.shape[-1]:
        raise ValueError(
            f"expected (n_trials, {true.shape[-1]}) matrix, "
            f"got {noisy_trials.shape}"
        )
    return np.abs(noisy_trials - true).sum(axis=1)


def mean_l1_error(true: np.ndarray, noisy: np.ndarray) -> float:
    """Per-cell average L1 error; nan for empty inputs."""
    true = np.asarray(true, dtype=np.float64)
    if true.size == 0:
        return float("nan")
    return l1_error(true, noisy) / true.size


def lp_error(true: np.ndarray, noisy: np.ndarray, p: float) -> float:
    """||q(D) - q~(D)||_p for p >= 1."""
    check_positive("p", p)
    if p < 1:
        raise ValueError(f"p must be >= 1 for a norm, got {p}")
    difference = np.abs(
        np.asarray(true, dtype=np.float64) - np.asarray(noisy, dtype=np.float64)
    )
    return float((difference**p).sum() ** (1.0 / p))


def relative_errors(true: np.ndarray, noisy: np.ndarray) -> np.ndarray:
    """Per-cell |true - noisy| / true, restricted to cells with true > 0."""
    true = np.asarray(true, dtype=np.float64)
    noisy = np.asarray(noisy, dtype=np.float64)
    positive = true > 0
    return np.abs(true[positive] - noisy[positive]) / true[positive]


def share_within_relative_error(
    reference: np.ndarray, candidate: np.ndarray, true: np.ndarray, margin: float
) -> float:
    """Fraction of cells where the candidate's relative error is within
    ``margin`` of the reference release's relative error.

    The paper's Finding 1 reports, e.g., that Log-Laplace is within 10
    percentage points of SDL's relative error for 65% of counts.
    """
    reference_rel = relative_errors(true, reference)
    candidate_rel = relative_errors(true, candidate)
    if reference_rel.size == 0:
        return float("nan")
    return float((candidate_rel <= reference_rel + margin).mean())


def error_ratio(
    true: np.ndarray,
    private_releases,
    sdl_release: np.ndarray,
) -> float:
    """Average private L1 error over trials, divided by the SDL L1 error.

    This is the y-axis of Figures 1, 3 and 4.  ``private_releases`` holds
    one noisy vector per independent trial — either a list of vectors or
    a ``(n_trials, n_cells)`` matrix, whose trial axis reduces in one
    vectorized pass.
    """
    if len(private_releases) == 0:
        raise ValueError("need at least one private release trial")
    releases = np.asarray(private_releases, dtype=np.float64)
    private = float(l1_error_batch(np.asarray(true), releases).mean())
    sdl = l1_error(true, sdl_release)
    if sdl == 0.0:
        return float("inf") if private > 0 else float("nan")
    return private / sdl
