"""Spearman rank-order correlation for the ranking workloads.

Sec 10 measures ranking accuracy as the Spearman correlation between the
ordering induced by a private release's counts and the ordering induced
by the current SDL release's counts (Rankings 1 and 2, Figures 2 and 5).

Implemented directly (average ranks for ties + Pearson on ranks) so the
library has no hidden dependence on scipy for its core path; the test
suite cross-checks against :func:`scipy.stats.spearmanr`.
"""

from __future__ import annotations

import numpy as np


def average_ranks(values: np.ndarray) -> np.ndarray:
    """Ranks (1-based) with ties sharing the average of their positions."""
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(len(values), dtype=np.float64)
    ranks[order] = np.arange(1, len(values) + 1, dtype=np.float64)
    # Average ranks within tie groups.
    sorted_values = values[order]
    boundaries = np.flatnonzero(np.diff(sorted_values) != 0) + 1
    group_starts = np.concatenate([[0], boundaries])
    group_ends = np.concatenate([boundaries, [len(values)]])
    for start, end in zip(group_starts, group_ends):
        if end - start > 1:
            ranks[order[start:end]] = (start + 1 + end) / 2.0
    return ranks


def spearman_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman's ρ between two value vectors; nan for degenerate input."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if x.size < 2:
        return float("nan")
    rank_x = average_ranks(x)
    rank_y = average_ranks(y)
    sd_x = rank_x.std()
    sd_y = rank_y.std()
    if sd_x == 0.0 or sd_y == 0.0:
        return float("nan")
    covariance = ((rank_x - rank_x.mean()) * (rank_y - rank_y.mean())).mean()
    return float(covariance / (sd_x * sd_y))


def rank_descending(values: np.ndarray) -> np.ndarray:
    """Positions of cells when sorted by value descending (0 = largest).

    Ties resolve by cell index, matching how a published list would break
    ties deterministically.
    """
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(-values, kind="mergesort")
    positions = np.empty(len(values), dtype=np.int64)
    positions[order] = np.arange(len(values))
    return positions
