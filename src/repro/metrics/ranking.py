"""Spearman rank-order correlation for the ranking workloads.

Sec 10 measures ranking accuracy as the Spearman correlation between the
ordering induced by a private release's counts and the ordering induced
by the current SDL release's counts (Rankings 1 and 2, Figures 2 and 5).

Implemented directly (average ranks for ties + Pearson on ranks) so the
library has no hidden dependence on scipy for its core path; the test
suite cross-checks against :func:`scipy.stats.spearmanr`.
"""

from __future__ import annotations

import math

import numpy as np


def average_ranks(values: np.ndarray) -> np.ndarray:
    """Ranks (1-based) with ties sharing the average of their positions."""
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(len(values), dtype=np.float64)
    ranks[order] = np.arange(1, len(values) + 1, dtype=np.float64)
    # Average ranks within tie groups.
    sorted_values = values[order]
    boundaries = np.flatnonzero(np.diff(sorted_values) != 0) + 1
    group_starts = np.concatenate([[0], boundaries])
    group_ends = np.concatenate([boundaries, [len(values)]])
    for start, end in zip(group_starts, group_ends):
        if end - start > 1:
            ranks[order[start:end]] = (start + 1 + end) / 2.0
    return ranks


def average_ranks_batch(values: np.ndarray) -> np.ndarray:
    """Row-wise tied average ranks of a ``(n_rows, n)`` matrix.

    Fully vectorized: tie groups are located by comparing sorted
    neighbors, the group start/end positions propagate along the sorted
    axis with cumulative max/min, and the averaged ranks scatter back —
    no per-row Python loop.  Each row equals :func:`average_ranks` on it.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim == 1:
        return average_ranks(values)
    if values.ndim != 2:
        raise ValueError(f"expected a 1-D or 2-D array, got shape {values.shape}")
    n_rows, n = values.shape
    if n == 0:
        return np.empty((n_rows, 0), dtype=np.float64)
    order = np.argsort(values, axis=1, kind="mergesort")
    sorted_values = np.take_along_axis(values, order, axis=1)
    positions = np.arange(n, dtype=np.float64)

    is_group_start = np.ones((n_rows, n), dtype=bool)
    is_group_start[:, 1:] = sorted_values[:, 1:] != sorted_values[:, :-1]
    start = np.maximum.accumulate(
        np.where(is_group_start, positions, 0.0), axis=1
    )
    is_group_end = np.ones((n_rows, n), dtype=bool)
    is_group_end[:, :-1] = is_group_start[:, 1:]
    end = np.where(is_group_end, positions, float(n - 1))
    end = np.minimum.accumulate(end[:, ::-1], axis=1)[:, ::-1]

    # A group spanning sorted positions [s, e] holds ranks s+1 .. e+1,
    # averaging to (s + e)/2 + 1.
    averaged = (start + end) / 2.0 + 1.0
    ranks = np.empty((n_rows, n), dtype=np.float64)
    np.put_along_axis(ranks, order, averaged, axis=1)
    return ranks


def spearman_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman's ρ between two value vectors; nan for degenerate input."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if x.size < 2:
        return float("nan")
    rank_x = average_ranks(x)
    rank_y = average_ranks(y)
    sd_x = rank_x.std()
    sd_y = rank_y.std()
    if sd_x == 0.0 or sd_y == 0.0:
        return float("nan")
    covariance = ((rank_x - rank_x.mean()) * (rank_y - rank_y.mean())).mean()
    return float(covariance / (sd_x * sd_y))


def spearman_correlation_batch(
    x_trials: np.ndarray, y: np.ndarray
) -> np.ndarray:
    """Spearman's ρ of every row of ``x_trials`` against the vector ``y``.

    ``x_trials`` is ``(n_trials, n)``; ``y`` ranks once and its centered
    ranks pair with the row-wise rank matrix of ``x_trials``, so the whole
    trial axis reduces without a per-trial loop.  Rows with a degenerate
    ranking (constant values, or n < 2) come back nan, matching
    :func:`spearman_correlation`.
    """
    x_trials = np.asarray(x_trials, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x_trials.ndim != 2:
        raise ValueError(f"expected a 2-D trial matrix, got {x_trials.shape}")
    if x_trials.shape[1] != y.shape[-1]:
        raise ValueError(f"shape mismatch: {x_trials.shape} vs {y.shape}")
    n_trials, n = x_trials.shape
    if n < 2:
        return np.full(n_trials, np.nan)
    rank_x = average_ranks_batch(x_trials)
    rank_y = average_ranks(y)

    centered_x = rank_x - rank_x.mean(axis=1, keepdims=True)
    centered_y = rank_y - rank_y.mean()
    sd_x = rank_x.std(axis=1)
    sd_y = rank_y.std()
    covariance = (centered_x * centered_y).mean(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        rho = covariance / (sd_x * sd_y)
    rho[sd_x == 0.0] = np.nan
    if sd_y == 0.0:
        rho[:] = np.nan
    return rho


def centered_rank_stats(y: np.ndarray) -> tuple[np.ndarray, float]:
    """Precompute ``(centered average ranks, rank sd)`` of a baseline vector.

    One ranking of ``y`` serves every Spearman comparison against it —
    the sweep engine caches this per (workload, index set) on
    :class:`~repro.engine.points.WorkloadStatistics` so all mechanisms of
    a fused family share one SDL tabulation instead of re-ranking the
    baseline per (mechanism, α, ε) point.
    """
    ranks = average_ranks(np.asarray(y, dtype=np.float64))
    return ranks - ranks.mean(), float(ranks.std())


def spearman_distinct_batch(
    x_trials: np.ndarray,
    centered_rank_y: np.ndarray,
    sd_y: float,
    *,
    check_ties: bool = True,
) -> np.ndarray | None:
    """Row-wise Spearman ρ against a pre-ranked baseline, tie-free rows.

    The fused-family fast path: noisy releases are continuous, so their
    rows (almost surely) hold no tied values and the tie-averaging
    machinery of :func:`spearman_correlation_batch` is pure overhead.
    Without ties the row ranks are a permutation of ``1..n`` — an
    unstable (quicksort) argsort recovers them, the rank mean and sd are
    the constants ``(n+1)/2`` and ``sqrt((n²−1)/12)``, and because the
    baseline's centered ranks sum to zero the covariance collapses to a
    position dot product over the sorted-order gather.

    Returns ``None`` when any row *does* contain ties (exact float
    collisions) so the caller can fall back to the tie-averaging kernel;
    ``check_ties=False`` skips that detection — valid only when the
    caller has already established the rows are tie-free, e.g. for a
    stratum subset of a matrix whose full rows passed the check (a
    subset of a tie-free row is tie-free).
    """
    x_trials = np.asarray(x_trials, dtype=np.float64)
    if x_trials.ndim != 2:
        raise ValueError(f"expected a 2-D trial matrix, got {x_trials.shape}")
    n_trials, n = x_trials.shape
    if n != centered_rank_y.shape[-1]:
        raise ValueError(
            f"shape mismatch: {x_trials.shape} vs {centered_rank_y.shape}"
        )
    if n < 2 or sd_y == 0.0:
        return np.full(n_trials, np.nan)
    order = np.argsort(x_trials, axis=1)
    if check_ties:
        sorted_values = np.take_along_axis(x_trials, order, axis=1)
        if (sorted_values[:, 1:] == sorted_values[:, :-1]).any():
            return None
    # Rank of the cell at sorted position p is p+1, so
    # Σ_j rank_j · cy_j = Σ_p (p+1) · cy[order_p]; Σ cy = 0 makes the
    # centering of the rank side vanish into the same dot product.
    cy_sorted = centered_rank_y[order]
    positions = np.arange(1, n + 1, dtype=np.float64)
    covariance = (cy_sorted @ positions) / n
    sd_x = math.sqrt((n * n - 1) / 12.0)
    return covariance / (sd_x * sd_y)


def rank_descending(values: np.ndarray) -> np.ndarray:
    """Positions of cells when sorted by value descending (0 = largest).

    Ties resolve by cell index, matching how a published list would break
    ties deterministically.
    """
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(-values, kind="mergesort")
    positions = np.empty(len(values), dtype=np.int64)
    positions[order] = np.arange(len(values))
    return positions
