"""Utility metrics used by the paper's evaluation (Sec 10).

- :mod:`repro.metrics.error` — L1/Lp and relative errors, and the error
  *ratio* against the current SDL system that every figure reports;
- :mod:`repro.metrics.ranking` — Spearman rank-order correlation for the
  OnTheMap-style ranking tasks;
- :mod:`repro.metrics.strata` — stratification of marginal cells by the
  2010-Census population of their place.
"""

from repro.metrics.error import (
    error_ratio,
    l1_error,
    l1_error_batch,
    lp_error,
    mean_l1_error,
    relative_errors,
    share_within_relative_error,
)
from repro.metrics.ranking import (
    average_ranks_batch,
    rank_descending,
    spearman_correlation,
    spearman_correlation_batch,
)
from repro.metrics.strata import STRATUM_LABELS, cell_strata, stratified_mask

__all__ = [
    "l1_error",
    "l1_error_batch",
    "lp_error",
    "mean_l1_error",
    "relative_errors",
    "share_within_relative_error",
    "error_ratio",
    "spearman_correlation",
    "spearman_correlation_batch",
    "average_ranks_batch",
    "rank_descending",
    "cell_strata",
    "stratified_mask",
    "STRATUM_LABELS",
]
