"""Post-processing of released counts.

(α, ε[, δ])-ER-EE privacy inherits the post-processing property from
Pufferfish: any function of the released output (that does not touch the
confidential data again) carries the same guarantee.  Agencies use this
to make published tables presentable — non-negative, integer, and
internally consistent — without spending additional budget.

Every function here takes and returns released vectors only.  Note the
contract of :func:`rescale_to_total`: the target total must itself be a
*released* (noisy) value, never the confidential one.
"""

from __future__ import annotations

import numpy as np

from repro.util import as_generator


def clamp_nonnegative(noisy: np.ndarray) -> np.ndarray:
    """Clip released counts at zero (counts are non-negative publicly)."""
    return np.clip(np.asarray(noisy, dtype=np.float64), 0.0, None)


def round_to_integers(noisy: np.ndarray, stochastic: bool = False, seed=None) -> np.ndarray:
    """Round released counts to integers.

    Deterministic rounding is half-to-even; ``stochastic=True`` rounds
    each value up with probability equal to its fractional part, which
    keeps the rounding unbiased.
    """
    noisy = np.asarray(noisy, dtype=np.float64)
    if not stochastic:
        return np.rint(noisy)
    rng = as_generator(seed)
    floor = np.floor(noisy)
    fraction = noisy - floor
    return floor + (rng.random(noisy.shape) < fraction)


def rescale_to_total(noisy: np.ndarray, released_total: float) -> np.ndarray:
    """Scale non-negative released counts to match a released total.

    Useful when a total was released separately (e.g., at a coarser
    level) and the published table should add up to it exactly.  The
    caller must pass a *released* total; using the true total would leak.
    Zero vectors are returned unchanged (no mass to scale).
    """
    values = clamp_nonnegative(noisy)
    current = values.sum()
    if current <= 0:
        return values
    if released_total < 0:
        released_total = 0.0
    return values * (released_total / current)
