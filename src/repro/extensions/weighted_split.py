"""Non-uniform budget allocation across worker cells (future-work ext.).

Under weak (α, ε)-ER-EE privacy a marginal containing worker attributes
costs the *sum* of the per-worker-cell budgets for each establishment
(Sec 8): the paper divides ε evenly over the d worker cells.  Sequential
composition, however, only requires Σ_c ε_c = ε — the allocation itself
is free.  Since a cell's expected error is proportional to S_c / ε_c
(S_c the smooth sensitivity), total error Σ_c S_c/ε_c is minimized by
the square-root rule ε_c ∝ √S_c (Cauchy-Schwarz).

The sensitivities are confidential, so the allocation must not read them
directly.  ``release_marginal_weighted`` therefore runs two rigorous
stages:

1. a **pilot** release of the worker-attribute-only marginal (national
   class totals) at a small budget ε₀, uniformly split — this is itself
   a weak release costing ε₀;
2. the **main** release with the remaining ε - ε₀ allocated across the
   worker cells proportionally to the square root of the pilot's noisy
   class totals.

The stage-2 allocation is a function of stage-1 *outputs*, so by
post-processing plus sequential composition the whole procedure is weak
(α, ε)-ER-EE private.
"""

from __future__ import annotations

from collections.abc import Collection, Sequence
from dataclasses import dataclass

import numpy as np

from repro.api.registry import COMPOSITE, create_mechanism, register_mechanism
from repro.core.params import EREEParams
from repro.core.release import (
    DEFAULT_WORKER_ATTRS,
    MarginalRelease,
)
from repro.db.join import WorkerFull
from repro.db.query import Marginal, per_establishment_counts
from repro.util import as_generator, check_fraction, check_positive


@dataclass(frozen=True)
class WeightedSplit:
    """An ε allocation over the worker cells of a weak marginal.

    ``epsilons[c]`` is the budget of worker-cell class ``c``; their sum
    is the total privacy loss per establishment.
    """

    epsilons: np.ndarray

    def __post_init__(self):
        if np.any(self.epsilons <= 0):
            raise ValueError("every worker cell needs a positive budget")

    @property
    def total(self) -> float:
        return float(self.epsilons.sum())

    @property
    def d(self) -> int:
        return len(self.epsilons)


def uniform_split(total_epsilon: float, d: int) -> WeightedSplit:
    """The paper's allocation: ε/d per worker cell."""
    check_positive("total_epsilon", total_epsilon)
    check_positive("d", d)
    return WeightedSplit(np.full(d, total_epsilon / d))


def optimal_split(
    total_epsilon: float,
    sensitivity_proxy: np.ndarray,
    floor_fraction: float = 0.2,
    min_epsilon: float = 0.0,
) -> WeightedSplit:
    """Square-root allocation ε_c ∝ √proxy_c with a uniform floor.

    ``floor_fraction`` of the budget is spread uniformly so that a cell
    whose proxy was (noisily) estimated near zero still gets usable
    accuracy; the rest follows the √ rule.  ``min_epsilon`` imposes a
    per-cell lower bound (the mechanism's feasibility threshold) via
    water-filling: clipped cells sit at the bound, the remainder is
    distributed √-proportionally among the rest.
    """
    check_positive("total_epsilon", total_epsilon)
    check_fraction("floor_fraction", floor_fraction)
    proxy = np.clip(np.asarray(sensitivity_proxy, dtype=np.float64), 0.0, None)
    d = len(proxy)
    if min_epsilon * d > total_epsilon:
        raise ValueError(
            f"budget {total_epsilon} cannot give {d} cells the feasibility "
            f"minimum {min_epsilon} each"
        )
    weights = np.sqrt(proxy)
    if weights.sum() == 0:
        weights = np.ones(d)
    weights = weights / weights.sum()
    floor = floor_fraction * total_epsilon / d
    epsilons = floor + (1.0 - floor_fraction) * total_epsilon * weights

    # Water-filling against the feasibility minimum.
    clipped = np.zeros(d, dtype=bool)
    for _ in range(d):
        below = (epsilons < min_epsilon) & ~clipped
        if not below.any():
            break
        clipped |= below
        epsilons[clipped] = min_epsilon
        remaining = total_epsilon - min_epsilon * clipped.sum()
        free = ~clipped
        if not free.any():
            break
        free_weights = weights[free] / weights[free].sum()
        epsilons[free] = remaining * free_weights
    return WeightedSplit(epsilons)


@dataclass(frozen=True)
class WeightedRelease:
    """Result of the two-stage weighted release."""

    release: MarginalRelease
    split: WeightedSplit
    pilot_totals: np.ndarray
    pilot_epsilon: float
    worker_attrs_in_marginal: tuple[str, ...]

    @property
    def total_epsilon(self) -> float:
        return self.pilot_epsilon + self.split.total


def _worker_cell_of_marginal(
    marginal: Marginal, worker_attrs_in_marginal: Sequence[str]
) -> np.ndarray:
    """Map each full-marginal cell to its worker-cell class index."""
    return marginal.project_onto(list(worker_attrs_in_marginal))


def feasibility_floor(mechanism_name: str, params: EREEParams) -> float:
    """The smallest per-cell ε the mechanism accepts at (α, δ)."""
    if mechanism_name == "smooth-laplace":
        from repro.core.params import min_epsilon as smooth_laplace_min

        return smooth_laplace_min(params.alpha, params.delta)
    # smooth-gamma: keep a usable sliding budget eps1 >= 0.2.
    return 5.0 * float(np.log1p(params.alpha)) + 0.2


def release_marginal_weighted(
    worker_full: WorkerFull,
    attrs: Sequence[str],
    mechanism_name: str,
    params: EREEParams,
    worker_attrs: Collection[str] = DEFAULT_WORKER_ATTRS,
    split: WeightedSplit | None = None,
    pilot_fraction: float = 0.2,
    seed=None,
    n_trials: int | None = None,
) -> WeightedRelease:
    """Weak release with a non-uniform worker-cell allocation.

    ``params.epsilon`` is the total budget.  Two ways to choose the
    allocation:

    - pass ``split`` explicitly (its total must equal the budget) — for
      allocations derived from *public* knowledge such as national ACS
      attribute shares, costing no extra budget;
    - leave ``split=None`` to run the two-stage pilot: ``pilot_fraction``
      of the budget buys noisy class totals, and the remainder follows
      the √ rule on those released estimates.

    δ is interpreted per released count as elsewhere in the library.
    Only the smooth mechanisms are supported (the √ rule needs their
    linear error-in-1/ε form; Log-Laplace's error is not budget-linear).

    The class loop only *builds* the per-cell noise scales (validating
    each class budget's feasibility); the stage-2 noise itself is one
    vectorized draw of the mechanism's unit distribution — which is the
    same for every class, the budgets only move the scale.  ``n_trials``
    batches that draw into a ``(n_trials, n_cells)`` matrix of
    independent stage-2 trials sharing the stage-1 pilot allocation (run
    separate calls for independent pilots).
    """
    if mechanism_name == "log-laplace":
        raise ValueError(
            "weighted splitting targets the smooth mechanisms; Log-Laplace "
            "error is not linear in 1/epsilon"
        )
    rng = as_generator(seed)
    schema = worker_full.table.schema
    marginal = Marginal(schema, attrs)
    worker_attrs_in_marginal = tuple(a for a in attrs if a in worker_attrs)
    if not worker_attrs_in_marginal:
        raise ValueError(
            "weighted splitting only applies to marginals with worker "
            f"attributes; got {tuple(attrs)}"
        )
    class_marginal = Marginal(schema, worker_attrs_in_marginal)
    d = class_marginal.n_cells

    if split is not None:
        if abs(split.total - params.epsilon) > 1e-9:
            raise ValueError(
                f"explicit split totals {split.total}, budget is {params.epsilon}"
            )
        if split.d != d:
            raise ValueError(f"split covers {split.d} cells, marginal has {d}")
        pilot_epsilon = 0.0
        pilot_totals = np.full(d, np.nan)
    else:
        check_fraction("pilot_fraction", pilot_fraction)
        # --- Stage 1: pilot class totals at eps0, uniformly split. -----
        pilot_epsilon = pilot_fraction * params.epsilon
        floor = feasibility_floor(mechanism_name, params)
        if pilot_epsilon / d < floor:
            raise ValueError(
                f"pilot budget {pilot_epsilon:.3g} over {d} classes gives "
                f"{pilot_epsilon / d:.3g} per class, below the mechanism's "
                f"feasibility floor {floor:.3g}; raise pilot_fraction or "
                "the total budget, or pass an explicit split"
            )
        class_counts = class_marginal.counts(worker_full.table).astype(
            np.float64
        )
        class_stats = per_establishment_counts(
            class_marginal.cell_index(worker_full.table),
            worker_full.establishment,
            d,
        )
        pilot_mechanism = create_mechanism(
            mechanism_name,
            EREEParams(params.alpha, pilot_epsilon / d, params.delta),
        )
        pilot_totals = pilot_mechanism.release_counts(
            class_counts, class_stats.max_single, rng
        )
        # Allocation from the pilot outputs only, respecting feasibility.
        split = optimal_split(
            params.epsilon - pilot_epsilon,
            pilot_totals,
            min_epsilon=feasibility_floor(mechanism_name, params),
        )

    # --- Stage 2: the marginal, one worker-cell class at a time. -------
    true = marginal.counts(worker_full.table).astype(np.float64)
    stats = per_establishment_counts(
        marginal.cell_index(worker_full.table),
        worker_full.establishment,
        marginal.n_cells,
    )
    workplace_part = [a for a in attrs if a not in worker_attrs]
    wp_marginal = Marginal(schema, workplace_part)
    wp_stats = per_establishment_counts(
        wp_marginal.cell_index(worker_full.table),
        worker_full.establishment,
        wp_marginal.n_cells,
    )
    released = wp_stats.n_establishments[marginal.project_onto(workplace_part)] > 0

    cell_class = _worker_cell_of_marginal(marginal, worker_attrs_in_marginal)
    # Per-cell noise scale: class-specific budget, cell-specific smooth
    # sensitivity.  Constructing each class's mechanism keeps the
    # per-class feasibility validation; no randomness is drawn here.
    scale = np.zeros(marginal.n_cells, dtype=np.float64)
    unit_distribution = None
    for class_index in range(d):
        members = released & (cell_class == class_index)
        if not members.any():
            continue
        mechanism = create_mechanism(
            mechanism_name,
            EREEParams(
                params.alpha, float(split.epsilons[class_index]), params.delta
            ),
        )
        scale[members] = mechanism.noise_scale(stats.max_single[members])
        unit_distribution = mechanism.distribution

    shape = (
        (marginal.n_cells,)
        if n_trials is None
        else (n_trials, marginal.n_cells)
    )
    noisy = np.zeros(shape, dtype=np.float64)
    if unit_distribution is not None:
        n_released = int(released.sum())
        draw_shape = (
            n_released if n_trials is None else (n_trials, n_released)
        )
        unit = unit_distribution.sample(draw_shape, rng)
        noisy[..., released] = true[released] + scale[released] * unit

    from repro.core.composition import MarginalBudget, WEAK

    budget = MarginalBudget(
        per_cell=EREEParams(
            params.alpha, float(split.epsilons.min()), params.delta
        ),
        total=params,
        mode=WEAK,
        worker_domain=d,
    )
    release = MarginalRelease(
        marginal=marginal,
        true=true,
        noisy=noisy,
        released=released,
        max_single=stats.max_single,
        budget=budget,
        mechanism_name=f"{mechanism_name} (weighted split)",
    )
    return WeightedRelease(
        release=release,
        split=split,
        pilot_totals=pilot_totals,
        pilot_epsilon=pilot_epsilon,
        worker_attrs_in_marginal=worker_attrs_in_marginal,
    )


# Registered as a composite procedure: selectable by name everywhere, but
# executed through ReleaseSession.run (or this function) rather than
# instantiated per cell.
register_mechanism(
    "weighted-split",
    kind=COMPOSITE,
    description="Two-stage √-rule ε allocation over worker cells (weak "
    "mode): pilot class totals, then the marginal at ε_c ∝ √pilot_c",
)(release_marginal_weighted)
