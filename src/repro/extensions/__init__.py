"""Extensions beyond the published algorithms.

The paper closes by noting that marginals over worker attributes carry a
large utility cost under weak ER-EE privacy and that better algorithm
design is "an avenue for future work" (Sec 1, contribution vi).  This
package implements three such improvements, each with an explicit
privacy argument:

- :mod:`repro.extensions.weighted_split` — non-uniform ε allocation
  across the worker cells of a weak marginal.  Sequential composition
  only needs the per-establishment ε's to sum to the budget, so skewing
  the allocation toward cells with large smooth sensitivity lowers the
  total expected L1 error at identical total privacy loss.
- :mod:`repro.extensions.hierarchical` — geographically consistent
  releases: noisy counts at place level are reconciled to their noisy
  county/state aggregates by least squares.  Reconciliation is pure
  post-processing of already-released values, so privacy is unchanged
  while aggregate accuracy improves.
- :mod:`repro.extensions.post_processing` — non-negativity clamping,
  integer rounding, and sum-preserving rescaling.  All are functions of
  the released output only, hence privacy-free by the post-processing
  property that (α, ε[, δ])-ER-EE privacy inherits from Pufferfish.
"""

from repro.extensions.hierarchical import (
    HierarchicalRelease,
    reconcile_two_level,
    release_hierarchy,
)
from repro.extensions.post_processing import (
    clamp_nonnegative,
    rescale_to_total,
    round_to_integers,
)
from repro.extensions.weighted_split import (
    WeightedSplit,
    optimal_split,
    release_marginal_weighted,
    uniform_split,
)

__all__ = [
    "WeightedSplit",
    "optimal_split",
    "uniform_split",
    "release_marginal_weighted",
    "HierarchicalRelease",
    "release_hierarchy",
    "reconcile_two_level",
    "clamp_nonnegative",
    "round_to_integers",
    "rescale_to_total",
]
