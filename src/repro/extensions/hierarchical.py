"""Geographically consistent releases (future-work extension).

LODES users aggregate place-level counts to counties and states; raw
noisy releases of the two levels disagree.  This extension releases both
levels (splitting the ε budget between them — sequential composition,
Thm 7.3, since both touch the same establishments) and reconciles them
by weighted least squares: within each parent cell, move the parent
estimate and its children's estimates the *minimum* variance-weighted
amount that makes the children sum to the parent.

Reconciliation reads only released values and public noise variances, so
it is post-processing: the privacy guarantee is exactly the budget spent
on the two raw releases, while both levels gain accuracy (the parent
estimate averages in the children's information and vice versa).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.params import EREEParams
from repro.api.registry import create_mechanism
from repro.core.release import MarginalRelease, release_marginal
from repro.db.join import WorkerFull
from repro.util import as_generator, check_fraction


def reconcile_two_level(
    children: np.ndarray,
    child_variance: np.ndarray,
    parents: np.ndarray,
    parent_variance: np.ndarray,
    parent_of_child: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Variance-weighted consistency adjustment.

    For each parent p with children C(p), solves

        min Σ_{i∈C(p)} (x̂_i - x_i)²/σ_i²  +  (ŷ_p - y_p)²/τ_p²
        s.t. Σ_{i∈C(p)} x̂_i = ŷ_p

    whose closed form shifts each child by λσ_i² and the parent by
    -λτ_p² with λ = (y_p - Σx_i)/(Στσ² + τ_p²).  Returns the adjusted
    (children, parents).
    """
    children = np.asarray(children, dtype=np.float64)
    parents = np.asarray(parents, dtype=np.float64)
    child_variance = np.asarray(child_variance, dtype=np.float64)
    parent_variance = np.asarray(parent_variance, dtype=np.float64)
    parent_of_child = np.asarray(parent_of_child, dtype=np.int64)
    if np.any(child_variance <= 0) or np.any(parent_variance <= 0):
        raise ValueError("variances must be positive")

    n_parents = len(parents)
    child_sum = np.bincount(
        parent_of_child, weights=children, minlength=n_parents
    )
    variance_sum = np.bincount(
        parent_of_child, weights=child_variance, minlength=n_parents
    )
    discrepancy = parents - child_sum
    lam = discrepancy / (variance_sum + parent_variance)

    adjusted_children = children + child_variance * lam[parent_of_child]
    adjusted_parents = parents - parent_variance * lam
    return adjusted_children, adjusted_parents


@dataclass(frozen=True)
class HierarchicalRelease:
    """A two-level consistent release.

    ``child``/``parent`` are the raw releases; ``child_consistent`` and
    ``parent_consistent`` the reconciled vectors (aligned to the raw
    marginals' cells); ``parent_of_child`` maps child cells to parent
    cells.  Total privacy loss is child ε + parent ε.
    """

    child: MarginalRelease
    parent: MarginalRelease
    child_consistent: np.ndarray
    parent_consistent: np.ndarray
    parent_of_child: np.ndarray

    def consistency_gap(self, consistent: bool = True) -> float:
        """Max |Σ children - parent| over parents (0 after reconciliation)."""
        children = self.child_consistent if consistent else self.child.noisy
        parents = self.parent_consistent if consistent else self.parent.noisy
        sums = np.bincount(
            self.parent_of_child,
            weights=np.where(self.child.released, children, 0.0),
            minlength=len(parents),
        )
        mask = self.parent.released
        return float(np.abs(sums[mask] - parents[mask]).max())

    @property
    def total_epsilon(self) -> float:
        return (
            self.child.budget.total.epsilon + self.parent.budget.total.epsilon
        )


def _parent_attr_map(child_release: MarginalRelease, parent_release, child_attrs, parent_attrs):
    """Flat mapping from child cells to parent cells via shared attributes."""
    child_marginal = child_release.marginal
    schema = child_marginal.schema
    grids = np.unravel_index(
        np.arange(child_marginal.n_cells), child_marginal.shape
    )
    by_name = dict(zip(child_marginal.attrs, grids))

    codes = []
    for name in parent_attrs:
        if name in by_name:
            codes.append(by_name[name])
        elif name == "county" and "place" in by_name:
            # Geography rollup: places nest in counties.
            place_to_county = schema_place_to_county(schema)
            codes.append(place_to_county[by_name["place"]])
        elif name == "state" and "place" in by_name:
            place_to_state = schema_place_to_state(schema)
            codes.append(place_to_state[by_name["place"]])
        else:
            raise ValueError(
                f"cannot derive parent attribute {name!r} from child attrs "
                f"{child_marginal.attrs}"
            )
    return np.ravel_multi_index(codes, parent_release.marginal.shape).astype(
        np.int64
    )


def schema_place_to_county(schema) -> np.ndarray:
    """Place code -> county code, parsed from the synthetic place names.

    Synthetic places are named ``<county>-P###``, so the nesting is
    recoverable from the public attribute domains alone.
    """
    counties = {name: i for i, name in enumerate(schema["county"].values)}
    mapping = []
    for place in schema["place"].values:
        county_name = place.rsplit("-", 1)[0]
        mapping.append(counties[county_name])
    return np.array(mapping, dtype=np.int64)


def schema_place_to_state(schema) -> np.ndarray:
    """Place code -> state code, via the county naming convention."""
    states = {name: i for i, name in enumerate(schema["state"].values)}
    mapping = []
    for place in schema["place"].values:
        state_name = place.split("-", 1)[0]
        mapping.append(states[state_name])
    return np.array(mapping, dtype=np.int64)


def release_hierarchy(
    worker_full: WorkerFull,
    child_attrs: Sequence[str],
    parent_attrs: Sequence[str],
    mechanism_name: str,
    params: EREEParams,
    child_share: float = 0.5,
    seed=None,
) -> HierarchicalRelease:
    """Release child and parent marginals and reconcile them.

    ``child_share`` of the ε budget goes to the child level; the two
    releases sequential-compose to ``params.epsilon`` total.  Only the
    smooth mechanisms are supported (reconciliation weights need the
    released noise variances).
    """
    if mechanism_name == "log-laplace":
        raise ValueError(
            "hierarchical reconciliation needs per-cell noise variances; "
            "use a smooth mechanism"
        )
    check_fraction("child_share", child_share)
    rng = as_generator(seed)

    child_params = params.with_epsilon(child_share * params.epsilon)
    parent_params = params.with_epsilon((1 - child_share) * params.epsilon)
    child = release_marginal(
        worker_full, child_attrs, mechanism_name, child_params, seed=rng
    )
    parent = release_marginal(
        worker_full, parent_attrs, mechanism_name, parent_params, seed=rng
    )

    parent_of_child = _parent_attr_map(child, parent, child_attrs, parent_attrs)

    child_mechanism = create_mechanism(mechanism_name, child.budget.per_cell)
    parent_mechanism = create_mechanism(mechanism_name, parent.budget.per_cell)
    child_variance = np.maximum(
        child_mechanism.noise_variance(child.max_single), 1e-12
    )
    parent_variance = np.maximum(
        parent_mechanism.noise_variance(parent.max_single), 1e-12
    )

    # Reconcile over released cells only; suppressed child cells are
    # exact zeros (no establishments) and do not move.
    effective_children = np.where(child.released, child.noisy, 0.0)
    effective_child_variance = np.where(child.released, child_variance, 1e-12)
    adjusted_children, adjusted_parents = reconcile_two_level(
        effective_children,
        effective_child_variance,
        parent.noisy,
        parent_variance,
        parent_of_child,
    )
    adjusted_children = np.where(child.released, adjusted_children, 0.0)
    return HierarchicalRelease(
        child=child,
        parent=parent,
        child_consistent=adjusted_children,
        parent_consistent=adjusted_parents,
        parent_of_child=parent_of_child,
    )
