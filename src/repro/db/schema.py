"""Categorical attributes and table schemas.

Following Sec 2 of the paper, a table has schema ``(A1, ..., Ak)`` where
each attribute ``Ai`` has a finite domain ``dom(Ai)``.  We represent every
attribute as categorical: values are stored as integer codes indexing into
the attribute's value tuple.  Marginal-query domains ``dom(V)`` are the
cross products of the member attributes' domains.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from math import prod


@dataclass(frozen=True)
class Attribute:
    """A named categorical attribute with an explicit, ordered domain.

    The position of a value in ``values`` is its integer code; all columns
    in :class:`repro.db.table.Table` store codes, not raw values.
    """

    name: str
    values: tuple

    def __post_init__(self):
        if not self.name:
            raise ValueError("attribute name must be non-empty")
        if len(self.values) == 0:
            raise ValueError(f"attribute {self.name!r} must have a non-empty domain")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"attribute {self.name!r} has duplicate domain values")

    @property
    def size(self) -> int:
        """Number of values in the attribute's domain, |dom(A)|."""
        return len(self.values)

    def code(self, value) -> int:
        """Return the integer code of ``value``; raise if not in the domain."""
        try:
            return self.values.index(value)
        except ValueError:
            raise ValueError(
                f"{value!r} is not in the domain of attribute {self.name!r}"
            ) from None

    def decode(self, code: int):
        """Return the domain value for integer ``code``."""
        return self.values[code]


class Schema:
    """An ordered collection of :class:`Attribute` with unique names."""

    def __init__(self, attributes: Iterable[Attribute]):
        self.attributes = tuple(attributes)
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise ValueError(f"schema has duplicate attribute names: {names}")
        self._by_name = {a.name: a for a in self.attributes}

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"no attribute {name!r} in schema with attributes {self.names}"
            ) from None

    def __eq__(self, other) -> bool:
        return isinstance(other, Schema) and self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash(self.attributes)

    def __repr__(self) -> str:
        parts = ", ".join(f"{a.name}[{a.size}]" for a in self.attributes)
        return f"Schema({parts})"

    def subset(self, names: Sequence[str]) -> "Schema":
        """Schema restricted to ``names``, in the order given."""
        return Schema(self[name] for name in names)

    def domain_size(self, names: Sequence[str] | None = None) -> int:
        """|dom(V)| for the attribute set ``V = names`` (all attributes if None).

        The empty marginal has domain size 1 (the single COUNT(*) cell),
        matching ``q_∅`` in Definition 2.1.
        """
        if names is None:
            names = self.names
        return prod(self[name].size for name in names) if names else 1

    def domain_shape(self, names: Sequence[str]) -> tuple[int, ...]:
        """Per-attribute domain sizes for ``names`` (mixed-radix shape)."""
        return tuple(self[name].size for name in names)

    def merge(self, other: "Schema") -> "Schema":
        """Concatenate two schemas with disjoint attribute names."""
        overlap = set(self.names) & set(other.names)
        if overlap:
            raise ValueError(f"cannot merge schemas sharing attributes {sorted(overlap)}")
        return Schema(self.attributes + other.attributes)
