"""Per-establishment worker-attribute cross-tabulations h(w, c).

Sec 5.1 of the paper describes the SDL input as a ``WorkplaceFull`` table
with, per workplace ``w``, a histogram ``h(w)`` of its workforce counts
cross-tabulated over all combinations ``c`` of worker attributes.  The SDL
system multiplies every ``h(w, c)`` by the establishment's permanent fuzz
factor before tabulating.

We store the histograms as a scipy CSR sparse matrix (establishments ×
worker cells): real LODES worker domains have hundreds of cells and most
establishments populate only a few.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy import sparse

from repro.db.join import WorkerFull
from repro.db.query import Marginal


def establishment_histograms(
    worker_full: WorkerFull, worker_attrs: Sequence[str]
) -> sparse.csr_matrix:
    """Sparse matrix ``H`` with ``H[w, c] = h(w, c)``.

    ``worker_attrs`` selects the worker attributes whose cross product
    forms the histogram cells ``c`` (flat-indexed via
    :class:`repro.db.query.Marginal` cell order).  An empty ``worker_attrs``
    produces a single column holding total employment per establishment.
    """
    marginal = Marginal(worker_full.table.schema, worker_attrs)
    cell = marginal.cell_index(worker_full.table)
    data = np.ones(worker_full.n_jobs, dtype=np.int64)
    matrix = sparse.coo_matrix(
        (data, (worker_full.establishment, cell)),
        shape=(worker_full.n_establishments, marginal.n_cells),
    )
    return matrix.tocsr()
