"""Marginal-query evaluation (Definition 2.1 of the paper).

A marginal query ``q_V(D)`` over attribute set ``V`` returns one count per
cell of ``dom(V)``; in SQL, ``SELECT COUNT(*) FROM D GROUP BY V``.  Cells
are addressed by a flat mixed-radix index over the member attributes'
domains, in attribute order.

Beyond plain counts this module computes, per cell, the contribution of
the single largest establishment (``xv`` in Lemma 8.5).  The local
sensitivity of a cell count under α-neighbors is ``max(xv · α, 1)``, so
the smooth-sensitivity mechanisms (Algorithms 2 and 3) need ``xv`` for
every released cell.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.db.schema import Schema
from repro.db.table import Table


class Marginal:
    """A marginal query ``q_V`` over attributes ``attrs`` of ``schema``.

    The cell order is row-major over ``attrs`` in the order given; cell
    ``v = (v1, ..., vm)`` has flat index ``ravel_multi_index(codes, shape)``.
    An empty ``attrs`` is the COUNT(*) query with a single cell.
    """

    def __init__(self, schema: Schema, attrs: Sequence[str]):
        self.schema = schema
        self.attrs = tuple(attrs)
        if len(set(self.attrs)) != len(self.attrs):
            raise ValueError(f"marginal attributes must be distinct, got {attrs}")
        for name in self.attrs:
            if name not in schema:
                raise KeyError(f"attribute {name!r} not in schema {schema.names}")
        self.shape = schema.domain_shape(self.attrs)
        self.n_cells = schema.domain_size(self.attrs)

    def __repr__(self) -> str:
        return f"Marginal({list(self.attrs)}, n_cells={self.n_cells})"

    def cell_index(self, table: Table) -> np.ndarray:
        """Flat cell index of every row of ``table`` (shape ``(n_rows,)``)."""
        if not self.attrs:
            return np.zeros(table.n_rows, dtype=np.int64)
        codes = [table.column(name) for name in self.attrs]
        return np.ravel_multi_index(codes, self.shape).astype(np.int64)

    def counts(self, table: Table) -> np.ndarray:
        """The marginal-count vector ``q_V(table)`` (length ``n_cells``)."""
        index = self.cell_index(table)
        return np.bincount(index, minlength=self.n_cells).astype(np.int64)

    def weighted_counts(self, table: Table, weights: np.ndarray) -> np.ndarray:
        """Per-cell sums of per-row ``weights`` (the SDL fuzzed tabulator)."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (table.n_rows,):
            raise ValueError(f"weights shape {weights.shape} != ({table.n_rows},)")
        index = self.cell_index(table)
        return np.bincount(index, weights=weights, minlength=self.n_cells)

    def cell_values(self, flat_index: int) -> tuple:
        """Decoded attribute values ``(v1, ..., vm)`` of cell ``flat_index``."""
        if not (0 <= flat_index < self.n_cells):
            raise IndexError(f"cell {flat_index} out of range [0, {self.n_cells})")
        if not self.attrs:
            return ()
        codes = np.unravel_index(flat_index, self.shape)
        return tuple(
            self.schema[name].decode(int(code))
            for name, code in zip(self.attrs, codes)
        )

    def flat_index(self, values: Sequence[object]) -> int:
        """Flat cell index of the cell with decoded attribute ``values``."""
        if len(values) != len(self.attrs):
            raise ValueError(f"expected {len(self.attrs)} values, got {len(values)}")
        if not self.attrs:
            return 0
        codes = [
            self.schema[name].code(value) for name, value in zip(self.attrs, values)
        ]
        return int(np.ravel_multi_index(codes, self.shape))

    def cells(self):
        """Iterate ``(flat_index, values_tuple)`` over all cells in order."""
        for flat in range(self.n_cells):
            yield flat, self.cell_values(flat)

    def project_onto(self, sub_attrs: Sequence[str]) -> np.ndarray:
        """Map each of this marginal's cells to a cell of the sub-marginal.

        ``sub_attrs`` must be a subset of this marginal's attributes.  The
        result has length ``n_cells`` and entry ``i`` is the flat index in
        the ``sub_attrs`` marginal of the projection of cell ``i``; used to
        aggregate fine cells into coarser ones.
        """
        sub = Marginal(self.schema, sub_attrs)
        missing = set(sub_attrs) - set(self.attrs)
        if missing:
            raise ValueError(f"{sorted(missing)} not among marginal attributes")
        if not self.attrs:
            return np.zeros(1, dtype=np.int64)
        grids = np.unravel_index(np.arange(self.n_cells), self.shape)
        by_name = dict(zip(self.attrs, grids))
        if not sub.attrs:
            return np.zeros(self.n_cells, dtype=np.int64)
        return np.ravel_multi_index(
            [by_name[name] for name in sub.attrs], sub.shape
        ).astype(np.int64)


@dataclass(frozen=True)
class EstablishmentCounts:
    """Per-cell totals plus the per-cell largest single-establishment share.

    ``totals[i]`` is the cell count ``q_V(D, v_i)``; ``max_single[i]`` is
    ``xv`` of Lemma 8.5 — the maximum number of workers any one
    establishment contributes to cell ``i``; ``n_establishments[i]`` is the
    number of distinct establishments contributing to the cell.
    """

    totals: np.ndarray
    max_single: np.ndarray
    n_establishments: np.ndarray


def per_establishment_counts(
    cell_index: np.ndarray,
    establishment: np.ndarray,
    n_cells: int,
) -> EstablishmentCounts:
    """Aggregate per-(cell, establishment) job counts into cell statistics.

    Parameters
    ----------
    cell_index:
        Flat marginal cell index per job row.
    establishment:
        Establishment row index per job row (any non-negative int labels).
    n_cells:
        Number of cells in the marginal.
    """
    cell_index = np.asarray(cell_index, dtype=np.int64)
    establishment = np.asarray(establishment, dtype=np.int64)
    if cell_index.shape != establishment.shape:
        raise ValueError("cell_index and establishment must align row-wise")

    totals = np.bincount(cell_index, minlength=n_cells).astype(np.int64)
    max_single = np.zeros(n_cells, dtype=np.int64)
    n_establishments = np.zeros(n_cells, dtype=np.int64)
    if cell_index.size:
        n_estab = int(establishment.max()) + 1
        combined = cell_index * n_estab + establishment
        unique_pairs, pair_counts = np.unique(combined, return_counts=True)
        pair_cells = unique_pairs // n_estab
        np.maximum.at(max_single, pair_cells, pair_counts)
        np.add.at(n_establishments, pair_cells, 1)
    return EstablishmentCounts(
        totals=totals, max_single=max_single, n_establishments=n_establishments
    )
