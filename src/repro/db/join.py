"""The WorkerFull universal relation (Sec 3.1 of the paper).

LODES has three tables: ``Workplace`` (one record per establishment),
``Worker`` (one record per employed individual) and ``Job`` (pairs of
worker and workplace IDs).  Each worker holds exactly one job, so the
universal relation ``WorkerFull = Worker ⋈ Job ⋈ Workplace`` has one
record per worker carrying both worker and workplace attributes.

Because the smooth-sensitivity mechanisms and the SDL system both need to
know which establishment each joined record came from, the join result
carries the establishment row index explicitly alongside the attribute
table (explicit is better than hiding it in a pseudo-attribute).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.table import Table


@dataclass(frozen=True)
class WorkerFull:
    """The joined universal relation plus job-level establishment links.

    ``table`` has one row per job with worker and workplace attributes;
    ``establishment[i]`` is the Workplace-table row index of job ``i``;
    ``n_establishments`` is the total number of establishments in the
    Workplace table (including any with zero matching jobs).
    """

    table: Table
    establishment: np.ndarray
    n_establishments: int

    def __post_init__(self):
        if self.establishment.shape != (self.table.n_rows,):
            raise ValueError("establishment index must have one entry per row")
        if self.establishment.size and (
            self.establishment.min() < 0
            or self.establishment.max() >= self.n_establishments
        ):
            raise ValueError("establishment index out of range")

    @property
    def n_jobs(self) -> int:
        return self.table.n_rows

    def establishment_sizes(self) -> np.ndarray:
        """Total employment |e| per establishment (length n_establishments)."""
        return np.bincount(
            self.establishment, minlength=self.n_establishments
        ).astype(np.int64)

    def filter(self, mask: np.ndarray) -> "WorkerFull":
        """Restrict to jobs where ``mask`` is true (establishment set kept)."""
        mask = np.asarray(mask, dtype=bool)
        return WorkerFull(
            table=self.table.filter(mask),
            establishment=self.establishment[mask],
            n_establishments=self.n_establishments,
        )


def join_worker_full(
    worker: Table,
    workplace: Table,
    job_worker: np.ndarray,
    job_establishment: np.ndarray,
) -> WorkerFull:
    """Join Worker and Workplace through the Job pairs.

    ``job_worker[i]`` and ``job_establishment[i]`` are row indices into the
    Worker and Workplace tables for job ``i``.  The result row order follows
    the job order.
    """
    job_worker = np.asarray(job_worker, dtype=np.int64)
    job_establishment = np.asarray(job_establishment, dtype=np.int64)
    if job_worker.shape != job_establishment.shape:
        raise ValueError("job arrays must have equal length")
    if job_worker.size:
        if job_worker.min() < 0 or job_worker.max() >= worker.n_rows:
            raise ValueError("job_worker index out of range of the Worker table")
        if job_establishment.min() < 0 or job_establishment.max() >= workplace.n_rows:
            raise ValueError(
                "job_establishment index out of range of the Workplace table"
            )

    worker_part = worker.take(job_worker)
    workplace_part = workplace.take(job_establishment)
    joined = worker_part.with_columns(
        workplace_part.schema,
        {name: workplace_part.column(name) for name in workplace_part.schema.names},
    )
    return WorkerFull(
        table=joined,
        establishment=job_establishment,
        n_establishments=workplace.n_rows,
    )
