"""Column-store database substrate.

The paper models LODES as a relational database with three tables (Worker,
Workplace, Job) joined into a universal ``WorkerFull`` relation, queried
with marginal (GROUP BY count) queries (Sec 2 and 3.1 of the paper).  This
package implements that substrate:

- :mod:`repro.db.schema` — categorical attributes and schemas;
- :mod:`repro.db.table` — an in-memory column store over integer codes;
- :mod:`repro.db.query` — marginal-query evaluation (Definition 2.1),
  including the per-cell largest-establishment contribution ``xv`` that the
  smooth-sensitivity mechanisms need (Lemma 8.5);
- :mod:`repro.db.join` — the Worker ⋈ Job ⋈ Workplace universal relation;
- :mod:`repro.db.histogram` — per-establishment cross-tabulations ``h(w, c)``
  used by the SDL input-noise-infusion system (Sec 5.1).
"""

from repro.db.histogram import establishment_histograms
from repro.db.join import WorkerFull, join_worker_full
from repro.db.query import Marginal, per_establishment_counts
from repro.db.schema import Attribute, Schema
from repro.db.table import Table

__all__ = [
    "Attribute",
    "Schema",
    "Table",
    "Marginal",
    "per_establishment_counts",
    "WorkerFull",
    "join_worker_full",
    "establishment_histograms",
]
