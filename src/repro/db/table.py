"""In-memory column-store table over integer-coded categorical columns.

A :class:`Table` stores one numpy integer array per schema attribute.
All query evaluation in :mod:`repro.db.query` operates directly on these
code arrays, which makes the GROUP BY marginal queries of the paper a
vectorized mixed-radix bincount.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.db.schema import Schema


class Table:
    """A table of ``n`` records over a categorical :class:`Schema`.

    Columns are integer code arrays (codes index the attribute's value
    tuple).  Tables are immutable by convention: transformation methods
    return new tables sharing column arrays where possible.
    """

    def __init__(self, schema: Schema, columns: Mapping[str, np.ndarray]):
        self.schema = schema
        missing = set(schema.names) - set(columns)
        if missing:
            raise ValueError(f"columns missing for attributes {sorted(missing)}")
        extra = set(columns) - set(schema.names)
        if extra:
            raise ValueError(f"columns {sorted(extra)} not in schema {schema.names}")

        self._columns: dict[str, np.ndarray] = {}
        n_rows = None
        for name in schema.names:
            col = np.asarray(columns[name])
            if col.ndim != 1:
                raise ValueError(f"column {name!r} must be one-dimensional")
            if not np.issubdtype(col.dtype, np.integer):
                raise ValueError(f"column {name!r} must hold integer codes")
            if n_rows is None:
                n_rows = col.shape[0]
            elif col.shape[0] != n_rows:
                raise ValueError(
                    f"column {name!r} has {col.shape[0]} rows, expected {n_rows}"
                )
            size = schema[name].size
            if col.size and (col.min() < 0 or col.max() >= size):
                raise ValueError(
                    f"column {name!r} has codes outside [0, {size})"
                )
            self._columns[name] = col
        self._n_rows = 0 if n_rows is None else int(n_rows)

    @property
    def n_rows(self) -> int:
        return self._n_rows

    def __len__(self) -> int:
        return self._n_rows

    def __repr__(self) -> str:
        return f"Table(n_rows={self.n_rows}, schema={self.schema!r})"

    def column(self, name: str) -> np.ndarray:
        """Integer code array for attribute ``name`` (do not mutate)."""
        if name not in self._columns:
            raise KeyError(f"no column {name!r}; table has {self.schema.names}")
        return self._columns[name]

    def decoded(self, name: str) -> np.ndarray:
        """Column of decoded domain values (materialized; for display/tests)."""
        attribute = self.schema[name]
        values = np.asarray(attribute.values, dtype=object)
        return values[self.column(name)]

    def filter(self, mask: np.ndarray) -> "Table":
        """Rows where boolean ``mask`` is true."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n_rows,):
            raise ValueError(f"mask shape {mask.shape} != ({self.n_rows},)")
        return Table(self.schema, {n: c[mask] for n, c in self._columns.items()})

    def take(self, indices: np.ndarray) -> "Table":
        """Rows at ``indices`` (gather; used by joins)."""
        indices = np.asarray(indices)
        return Table(self.schema, {n: c[indices] for n, c in self._columns.items()})

    def select(self, names: Sequence[str]) -> "Table":
        """Restrict to attributes ``names`` (projection without dedup)."""
        return Table(self.schema.subset(names), {n: self._columns[n] for n in names})

    def equals_value(self, name: str, value) -> np.ndarray:
        """Boolean mask of rows where attribute ``name`` equals domain ``value``."""
        return self.column(name) == self.schema[name].code(value)

    def row(self, index: int) -> dict[str, object]:
        """Decoded values of row ``index`` as an attribute-name dict."""
        return {
            name: self.schema[name].decode(int(self._columns[name][index]))
            for name in self.schema.names
        }

    def to_records(self) -> list[dict[str, object]]:
        """All rows as decoded dicts (small tables / tests only)."""
        return [self.row(i) for i in range(self.n_rows)]

    @classmethod
    def from_records(cls, schema: Schema, records: Sequence[Mapping[str, object]]) -> "Table":
        """Build a table by encoding raw-value ``records`` against ``schema``."""
        columns = {}
        for name in schema.names:
            attribute = schema[name]
            columns[name] = np.array(
                [attribute.code(record[name]) for record in records], dtype=np.int64
            )
        if not records:
            columns = {name: np.array([], dtype=np.int64) for name in schema.names}
        return cls(schema, columns)

    def concat(self, other: "Table") -> "Table":
        """Vertical concatenation of two tables with identical schemas."""
        if other.schema != self.schema:
            raise ValueError("cannot concat tables with different schemas")
        return Table(
            self.schema,
            {
                name: np.concatenate([self._columns[name], other._columns[name]])
                for name in self.schema.names
            },
        )

    def with_columns(self, schema: Schema, columns: Mapping[str, np.ndarray]) -> "Table":
        """New table extending this one with extra attributes (same row count)."""
        merged_schema = self.schema.merge(schema)
        merged_columns = dict(self._columns)
        for name in schema.names:
            merged_columns[name] = np.asarray(columns[name])
        return Table(merged_schema, merged_columns)
