"""repro.serve — the DP release service.

A long-lived, multi-tenant query server over the release session layer:

- :class:`~repro.serve.app.ReleaseService` — the asyncio HTTP front end
  (``POST /v1/release``, ledgers, scenarios, health, metrics);
- :class:`~repro.serve.pool.SessionPool` — warm per-scenario
  :class:`~repro.api.ReleaseSession`\\ s plus the bounded compute
  executor that keeps the event loop unblocked;
- :class:`~repro.serve.tenants.TenantRegistry` /
  :class:`~repro.serve.tenants.TenantAccount` — persistent per-tenant
  :class:`~repro.api.PrivacyLedger`\\ s backed by durable, fsync'd
  append-only spend journals (a crashed server never forgets a debit);
- :mod:`~repro.serve.dedupe` — content-addressed idempotency: identical
  requests are served from the result store with zero compute and zero
  repeat budget;
- :class:`~repro.serve.client.ServeClient` — a small blocking client.

Start one from the shell with ``repro serve`` or in-process::

    import asyncio
    from repro.serve import ReleaseCache, ReleaseService, SessionPool, TenantRegistry

    pool = SessionPool.from_scenarios(["paper-default"])
    service = ReleaseService(pool, TenantRegistry(root="reports/ledgers"))
    asyncio.run(service.run_until_signalled())
"""

from repro.serve.app import ReleaseService, ServiceMetrics
from repro.serve.client import ServeClient, ServeError
from repro.serve.dedupe import RELEASE_KIND, ReleaseCache, release_key
from repro.serve.pool import SessionPool
from repro.serve.tenants import (
    DEFAULT_LEDGER_DIR,
    JournalCorrupt,
    SpendJournal,
    TenantAccount,
    TenantPolicy,
    TenantRegistry,
    TornJournalWarning,
    UnknownTenant,
)

__all__ = [
    "DEFAULT_LEDGER_DIR",
    "JournalCorrupt",
    "RELEASE_KIND",
    "ReleaseCache",
    "ReleaseService",
    "ServeClient",
    "ServeError",
    "ServiceMetrics",
    "SessionPool",
    "SpendJournal",
    "TenantAccount",
    "TenantPolicy",
    "TenantRegistry",
    "TornJournalWarning",
    "UnknownTenant",
    "release_key",
]
