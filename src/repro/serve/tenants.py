"""Durable multi-tenant privacy accounting for the release service.

Each tenant owns a :class:`~repro.api.ledger.PrivacyLedger` whose every
debit is also written — fsync'd, entry by entry — to an append-only
**spend journal** through the PR-6 storage-backend layer
(:meth:`repro.storage.StorageBackend.append_line`).  The ordering is
journal-then-ledger-then-ack: by the time a release response leaves the
server, its debit is on stable storage, so a crashed (even ``kill -9``'d)
server never forgets a charge.  The conservative failure direction is
the only one possible: a crash *between* journal fsync and response can
leave a journaled debit the client never saw acknowledged — budget is
over-counted in that window, never under-counted.

On startup the journal is **replayed**: entries restore onto the ledger
bypassing the overdraft check (history is already spent, even when the
budget has since been tightened) and the set of paid request keys is
rebuilt, so duplicate requests stay free across restarts.  A torn final
line — the signature of a writer killed mid-append — is tolerated and
truncated; corruption anywhere *before* the final record raises
:class:`JournalCorrupt` loudly rather than silently dropping spend.
"""

from __future__ import annotations

import json
import re
import threading
import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.api.ledger import RAISE, WARN, LedgerEntry, PrivacyLedger
from repro.dp.composition import PrivacyBudgetExceeded
from repro.storage import LocalFSBackend, StorageBackend

__all__ = [
    "DEFAULT_LEDGER_DIR",
    "JOURNAL_SCHEMA_VERSION",
    "JournalCorrupt",
    "SpendJournal",
    "TenantAccount",
    "TenantPolicy",
    "TenantRegistry",
    "TornJournalWarning",
    "UnknownTenant",
]

DEFAULT_LEDGER_DIR = Path("reports") / "ledgers"

JOURNAL_SCHEMA_VERSION = 1

# Tenant names become journal file keys, so they are restricted to a
# path-safe alphabet (no separators, no dotfiles, no traversal).
_TENANT_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")


class UnknownTenant(ValueError):
    """A request named a tenant the registry has no policy for."""


class JournalCorrupt(RuntimeError):
    """A spend journal failed to parse *before* its final record.

    A torn final line is the expected wreckage of a killed writer and is
    tolerated (see :meth:`SpendJournal.replay`); garbage earlier in the
    file means lost accounting history and must fail loudly — silently
    skipping records would under-count privacy spend.
    """


class TornJournalWarning(UserWarning):
    """A journal's torn final line was discarded during replay."""


def validate_tenant_name(name) -> str:
    if not isinstance(name, str) or not _TENANT_NAME.match(name):
        raise ValueError(
            f"tenant name must match {_TENANT_NAME.pattern} "
            f"(it names the tenant's journal file), got {name!r}"
        )
    return name


class SpendJournal:
    """An append-only JSON-lines debit log over a storage backend.

    Appends are durable (``O_APPEND`` + fsync through
    :meth:`~repro.storage.StorageBackend.append_line`); replay tolerates
    exactly one torn final line and truncates it so the next append
    starts on a clean record boundary.
    """

    def __init__(self, backend: StorageBackend, key: str):
        self.backend = backend
        self.key = key

    @property
    def path(self) -> Path:
        """Where the journal lives locally (may not exist yet)."""
        return self.backend.root / self.key

    def append(self, record: dict, *, fsync: bool = True) -> None:
        """Durably append one record; returns only after the fsync."""
        self.backend.append_line(
            self.key, json.dumps(record, sort_keys=True).encode("utf-8"),
            fsync=fsync,
        )

    def replay(self) -> list[dict]:
        """Parse every record, truncating a torn final line.

        The torn-write contract: an appender that died mid-write leaves
        a partial *final* line (``O_APPEND`` writes land whole or at the
        end).  Such a tail is discarded — its debit was never fsync'd,
        hence never acknowledged — with a :class:`TornJournalWarning`.
        An unparsable record with complete records *after* it cannot be
        a torn write and raises :class:`JournalCorrupt`.
        """
        path = self.backend.open_local(self.key)
        if path is None:
            return []
        raw = path.read_bytes()
        records: list[dict] = []
        consumed = 0
        while consumed < len(raw):
            newline = raw.find(b"\n", consumed)
            end = len(raw) if newline < 0 else newline + 1
            line = raw[consumed:end]
            try:
                record = json.loads(line.decode("utf-8"))
                if not isinstance(record, dict):
                    raise ValueError("journal records must be JSON objects")
            except (ValueError, UnicodeDecodeError):
                if end < len(raw):
                    raise JournalCorrupt(
                        f"journal {self.key!r} is corrupt at byte "
                        f"{consumed}: a non-final record failed to parse"
                    ) from None
                with open(path, "r+b") as handle:
                    handle.truncate(consumed)
                warnings.warn(
                    f"journal {self.key!r}: discarded torn final line "
                    f"({len(line)} byte(s) from a killed writer)",
                    TornJournalWarning,
                    stacklevel=2,
                )
                break
            records.append(record)
            consumed = end
        return records

    def size_bytes(self) -> int:
        """The journal's current size (0 when it does not exist yet)."""
        return self.backend.size_bytes(self.key)

    def compact(self, *, min_bytes: int = 0) -> bool:
        """Collapse the journal to one snapshot record; True if rewritten.

        An append-only journal grows without bound — one record per
        charge, forever.  Compaction replays the journal and atomically
        rewrites it as a single **snapshot record** carrying everything
        replay needs for exact accounting: the aggregate spend (the
        same left-to-right float sum replay would have produced, so
        ledger totals are bit-equal), every paid request key (duplicate
        suppression survives), and the count of records folded in
        (``replayed`` counts stay honest).  What it deliberately drops
        is per-entry audit detail — individual labels, mechanisms and
        (ε, δ) splits — which is the space being reclaimed; operators
        who need the full history should archive the journal before
        compacting.

        ``min_bytes`` gates the rewrite: journals at or below the
        threshold are left alone (compacting a tiny journal trades
        audit detail for nothing).  An already-compact journal (one
        snapshot record) is never rewritten again.  The rewrite goes
        through :meth:`~repro.storage.StorageBackend.put_file`, so it
        is atomic: a crash mid-compaction leaves the old journal, never
        a half-written one.
        """
        if self.size_bytes() <= min_bytes:
            return False
        records = self.replay()
        if not records:
            return False
        if len(records) == 1 and records[0].get("compacted"):
            return False
        epsilon = 0.0
        delta = 0.0
        folded = 0
        tenant = ""
        request_keys: list[str] = []
        seen: set[str] = set()
        for record in records:
            spend = LedgerEntry.from_dict(record["spend"])
            epsilon += spend.epsilon
            delta += spend.delta
            tenant = record.get("tenant", tenant) or tenant
            if record.get("compacted"):
                folded += int(record["compacted"])
                keys = record.get("request_keys", ())
            else:
                folded += 1
                keys = (record.get("request_key"),)
            for key in keys:
                if key and key not in seen:
                    seen.add(key)
                    request_keys.append(key)
        snapshot = {
            "schema": JOURNAL_SCHEMA_VERSION,
            "tenant": tenant,
            "compacted": folded,
            "request_keys": request_keys,
            "spend": LedgerEntry(
                label=f"compacted:{folded}", epsilon=epsilon, delta=delta
            ).to_dict(),
        }
        self.backend.put_file(
            self.key,
            (json.dumps(snapshot, sort_keys=True) + "\n").encode("utf-8"),
        )
        return True


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's budget contract (``None`` budgets mean unlimited)."""

    epsilon_budget: float | None = None
    delta_budget: float | None = None
    on_overdraft: str = RAISE

    @classmethod
    def from_dict(cls, payload, *, tenant: str = "?") -> "TenantPolicy":
        """Parse a policy from config JSON, naming any offending field."""
        if not isinstance(payload, dict):
            raise ValueError(
                f"tenant {tenant!r}: policy must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        known = {"epsilon_budget", "delta_budget", "on_overdraft"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"tenant {tenant!r}: unknown policy field(s) {unknown}; "
                f"valid fields are {sorted(known)}"
            )
        kwargs = {}
        for name in ("epsilon_budget", "delta_budget"):
            value = payload.get(name)
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(
                    f"tenant {tenant!r}: field {name!r} must be a number, "
                    f"got {value!r}"
                )
            kwargs[name] = float(value)
        policy = payload.get("on_overdraft", RAISE)
        if policy not in (RAISE, WARN):
            raise ValueError(
                f"tenant {tenant!r}: field 'on_overdraft' must be "
                f"{RAISE!r} or {WARN!r}, got {policy!r}"
            )
        kwargs["on_overdraft"] = policy
        return cls(**kwargs)


class TenantAccount:
    """One tenant's ledger + journal + paid-request set, charge-serialized.

    All mutation goes through :meth:`charge` under the account lock, so
    concurrent debits compose exactly — no pair of charges can both slip
    under the last sliver of budget, and the journal order matches the
    ledger order.
    """

    def __init__(self, name: str, policy: TenantPolicy, journal: SpendJournal):
        self.name = validate_tenant_name(name)
        self.policy = policy
        self.journal = journal
        self.ledger = PrivacyLedger(
            epsilon_budget=policy.epsilon_budget,
            delta_budget=policy.delta_budget,
            on_overdraft=policy.on_overdraft,
        )
        self.paid: set[str] = set()
        self._lock = threading.Lock()
        self.replayed = 0
        for record in journal.replay():
            self.ledger.restore(LedgerEntry.from_dict(record["spend"]))
            if record.get("compacted"):
                # A snapshot record (see SpendJournal.compact): one
                # aggregate spend standing in for `compacted` original
                # charges, with every paid key preserved.
                self.paid.update(
                    key for key in record.get("request_keys", ()) if key
                )
                self.replayed += int(record["compacted"])
            else:
                key = record.get("request_key")
                if key:
                    self.paid.add(key)
                self.replayed += 1

    def has_paid(self, request_key: str) -> bool:
        """Whether this exact request was already charged (ever)."""
        return request_key in self.paid

    def preflight(self, epsilon: float, delta: float, *, label: str = "") -> None:
        """Affordability gate before compute (raise-mode tenants raise)."""
        self.ledger.preflight(epsilon, delta, label=label)

    def charge(self, spend: LedgerEntry, request_key: str) -> str | None:
        """Debit ``spend``, journal it durably, and mark the key paid.

        Returns the overdraft warning text for a ``warn``-policy tenant
        that just went over budget (``None`` otherwise); a ``raise``
        policy rejects the charge with
        :class:`~repro.dp.composition.PrivacyBudgetExceeded` before
        anything is written.  The journal append (fsync'd) happens
        *before* the in-memory debit: an acknowledged charge is always
        on stable storage, and the only crash asymmetry is a journaled
        debit the client never saw — spend over-counted, never lost.
        """
        with self._lock:
            over = self.ledger.would_overdraw(spend)
            if over is not None and self.policy.on_overdraft == RAISE:
                raise PrivacyBudgetExceeded(over)
            self.journal.append(
                {
                    "schema": JOURNAL_SCHEMA_VERSION,
                    "tenant": self.name,
                    "request_key": request_key,
                    "spend": spend.to_dict(),
                }
            )
            self.ledger.restore(spend)
            self.paid.add(request_key)
            return over

    def summary(self) -> dict:
        """Compact JSON state (no per-entry detail) for release responses."""
        ledger = self.ledger
        return {
            "tenant": self.name,
            "epsilon_budget": ledger.epsilon_budget,
            "delta_budget": ledger.delta_budget,
            "on_overdraft": ledger.on_overdraft,
            "n_entries": len(ledger.entries),
            "spent_epsilon": ledger.spent_epsilon,
            "spent_delta": ledger.spent_delta,
            "remaining_epsilon": (
                None if ledger.epsilon_budget is None else ledger.remaining_epsilon
            ),
            "utilization": ledger.utilization,
        }

    def state(self) -> dict:
        """Full JSON ledger state (``GET /v1/ledger/<tenant>``)."""
        payload = self.ledger.as_dict()
        payload["tenant"] = self.name
        payload["paid_requests"] = len(self.paid)
        payload["journal"] = self.journal.key
        return payload


class TenantRegistry:
    """Named tenants over one ledger backend, with lazy journal replay.

    ``policies`` map configured tenant names to budgets; ``default_policy``
    (when given) admits *any* path-safe tenant name with that budget —
    the zero-config mode of ``repro serve``.  Accounts materialize (and
    replay their journals) on first touch.
    """

    def __init__(
        self,
        backend: StorageBackend | None = None,
        *,
        root: Path | str | None = None,
        policies: dict[str, TenantPolicy] | None = None,
        default_policy: TenantPolicy | None = None,
    ):
        if backend is None:
            backend = LocalFSBackend(
                DEFAULT_LEDGER_DIR if root is None else root
            )
        elif root is not None and Path(root) != backend.root:
            raise ValueError(
                f"pass either root or backend, not both "
                f"(root={str(root)!r}, backend root={str(backend.root)!r})"
            )
        self.backend = backend
        self.policies = dict(policies or {})
        for name in self.policies:
            validate_tenant_name(name)
        self.default_policy = default_policy
        self._accounts: dict[str, TenantAccount] = {}
        self._lock = threading.Lock()

    @staticmethod
    def journal_key(name: str) -> str:
        return f"{name}.journal.jsonl"

    def account(self, name: str) -> TenantAccount:
        """The (possibly just-replayed) account for ``name``.

        Raises :class:`UnknownTenant` for unconfigured names when no
        default policy admits them, ``ValueError`` for path-unsafe names.
        """
        validate_tenant_name(name)
        with self._lock:
            account = self._accounts.get(name)
            if account is None:
                policy = self.policies.get(name, self.default_policy)
                if policy is None:
                    raise UnknownTenant(
                        f"unknown tenant {name!r}; configured tenants: "
                        f"{sorted(self.policies)}"
                    )
                account = TenantAccount(
                    name, policy, SpendJournal(self.backend, self.journal_key(name))
                )
                self._accounts[name] = account
            return account

    def names(self) -> list[str]:
        """Configured plus materialized tenant names, sorted."""
        with self._lock:
            return sorted(set(self.policies) | set(self._accounts))

    def compact_journals(self, *, min_bytes: int = 0) -> list[str]:
        """Compact every on-disk tenant journal; returns compacted names.

        Walks the backend for ``*.journal.jsonl`` keys rather than the
        in-memory accounts, so journals left by tenants that have not
        been touched this process lifetime compact too.  Meant for
        startup (``repro serve --compact-on-start``) — before accounts
        materialize — so replay of the freshly compacted journals is
        what builds the ledgers.
        """
        suffix = ".journal.jsonl"
        compacted = []
        for key in self.backend.list_keys():
            if not key.endswith(suffix):
                continue
            if SpendJournal(self.backend, key).compact(min_bytes=min_bytes):
                compacted.append(key[: -len(suffix)])
        return compacted

    def accounts(self) -> list[TenantAccount]:
        with self._lock:
            return list(self._accounts.values())

    @classmethod
    def from_config(
        cls, payload, backend: StorageBackend | None = None, **kwargs
    ) -> "TenantRegistry":
        """Build a registry from config JSON, naming any offending field.

        Shape: ``{"tenants": {name: policy, ...}, "default": policy|null}``
        where a policy is ``{"epsilon_budget": ..., "delta_budget": ...,
        "on_overdraft": "raise"|"warn"}``.  Without ``"default"``, only
        the named tenants are admitted.
        """
        if not isinstance(payload, dict):
            raise ValueError(
                "tenants config must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        unknown = sorted(set(payload) - {"tenants", "default"})
        if unknown:
            raise ValueError(
                f"unknown tenants-config field(s) {unknown}; valid fields "
                "are ['default', 'tenants']"
            )
        tenants = payload.get("tenants", {})
        if not isinstance(tenants, dict):
            raise ValueError(
                f"field 'tenants' must be a JSON object, got {tenants!r}"
            )
        policies = {
            validate_tenant_name(name): TenantPolicy.from_dict(spec, tenant=name)
            for name, spec in tenants.items()
        }
        default = payload.get("default")
        default_policy = (
            None
            if default is None
            else TenantPolicy.from_dict(default, tenant="<default>")
        )
        return cls(
            backend, policies=policies, default_policy=default_policy, **kwargs
        )

    @classmethod
    def from_config_file(
        cls, path: Path | str, backend: StorageBackend | None = None, **kwargs
    ) -> "TenantRegistry":
        text = Path(path).read_text(encoding="utf-8")
        try:
            payload = json.loads(text)
        except ValueError as error:
            raise ValueError(
                f"tenants config {str(path)!r} is not valid JSON: {error}"
            ) from None
        return cls.from_config(payload, backend, **kwargs)
