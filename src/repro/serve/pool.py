"""Warm release sessions plus the bounded compute executor.

The service keeps one :class:`~repro.api.ReleaseSession` per configured
scenario — built lazily on first request (or eagerly via :meth:`warm`),
memory-mapped over the persistent
:class:`~repro.scenarios.SnapshotStore` where one is given — and shares
it across all tenants: the session's trial-invariant caches (true
marginals, release masks, smooth-sensitivity statistics, SDL answers)
are lock-guarded, so a thousand requests against one scenario pay the
expensive statistics exactly once and only draw noise per request.

Compute runs on a **bounded** :class:`~repro.runtime.ComputePool`
(`--compute-workers`): the asyncio front end awaits
:meth:`SessionPool.run` for anything that touches a dataset, a journal
or the result store, so the event loop itself never blocks on NumPy or
disk — it keeps accepting connections and serving ``/healthz`` while
releases grind.  Sizing goes through the one
:mod:`repro.runtime.policy` every pool in the codebase uses: an
explicit ``--compute-workers`` wins, otherwise
:func:`~repro.runtime.serve_compute_workers` (small, CPU-derived, and —
new with the shared policy — bounded by ``REPRO_MAX_WORKERS`` like
every other pool).
"""

from __future__ import annotations

import threading
from collections.abc import Mapping, Sequence

from repro.api.session import ReleaseSession
from repro.engine.plan import snapshot_fingerprint
from repro.runtime import ComputePool

__all__ = ["SessionPool"]


class SessionPool:
    """Scenario name → warm :class:`~repro.api.ReleaseSession`, plus executor.

    ``configs`` maps serving names to
    :class:`~repro.experiments.config.ExperimentConfig`; the first name
    (or ``default``) is what requests without a ``"scenario"`` field get.
    Pool sessions run tracking-only ledgers — budget enforcement lives in
    the per-tenant accounts, not the shared sessions.
    """

    def __init__(
        self,
        configs: Mapping,
        *,
        snapshot_store=None,
        compute_workers: int | None = None,
        default: str | None = None,
    ):
        self._configs = dict(configs)
        if not self._configs:
            raise ValueError("a session pool needs at least one scenario")
        if default is not None and default not in self._configs:
            raise ValueError(
                f"default scenario {default!r} is not in the pool "
                f"({sorted(self._configs)})"
            )
        self.default = default if default is not None else next(iter(self._configs))
        self.snapshot_store = snapshot_store
        self._pool = ComputePool(
            compute_workers, thread_name_prefix="repro-serve"
        )
        self.compute_workers = self._pool.workers
        self._sessions: dict[str, ReleaseSession] = {}
        self._build_locks = {
            name: threading.Lock() for name in self._configs
        }

    @classmethod
    def from_scenarios(
        cls, names: Sequence[str], *, n_trials: int | None = None, **kwargs
    ) -> "SessionPool":
        """A pool over registered scenario economies (by name)."""
        from repro.experiments.config import ExperimentConfig

        overrides = {} if n_trials is None else {"n_trials": n_trials}
        configs = {
            name: ExperimentConfig.for_scenario(name, **overrides)
            for name in names
        }
        return cls(configs, **kwargs)

    # -- sessions -------------------------------------------------------

    @property
    def names(self) -> list[str]:
        return sorted(self._configs)

    def config(self, name: str):
        try:
            return self._configs[name]
        except KeyError:
            raise ValueError(
                f"unknown scenario {name!r}; this server hosts "
                f"{sorted(self._configs)}"
            ) from None

    def session(self, name: str | None = None) -> ReleaseSession:
        """The warm session for ``name`` (built on first use, exactly once).

        The per-scenario build lock means concurrent first requests
        against a cold scenario block behind one build instead of
        generating the economy N times.
        """
        name = self.default if name is None else name
        config = self.config(name)
        session = self._sessions.get(name)
        if session is None:
            with self._build_locks[name]:
                session = self._sessions.get(name)
                if session is None:
                    session = ReleaseSession(
                        config, snapshot_store=self.snapshot_store
                    )
                    self._sessions[name] = session
        return session

    def warm(self, names: Sequence[str] | None = None) -> list[str]:
        """Build the named (default: all) sessions now; returns the names."""
        warmed = list(self._configs if names is None else names)
        for name in warmed:
            self.session(name)
        return warmed

    def describe(self) -> list[dict]:
        """JSON inventory for ``GET /v1/scenarios``."""
        rows = []
        for name in self.names:
            config = self._configs[name]
            rows.append(
                {
                    "name": name,
                    "default": name == self.default,
                    "target_jobs": config.data.target_jobs,
                    "n_trials": config.n_trials,
                    "fingerprint": snapshot_fingerprint(config),
                    "warm": name in self._sessions,
                }
            )
        return rows

    # -- compute offload ------------------------------------------------

    async def run(self, fn, /, *args):
        """Run blocking work on the bounded compute pool, off the event loop."""
        return await self._pool.run(fn, *args)

    async def session_async(self, name: str | None = None) -> ReleaseSession:
        """:meth:`session` off-loop (a cold first build is expensive)."""
        return await self.run(self.session, name)

    def close(self) -> None:
        """Finish queued compute and release the worker threads."""
        self._pool.shutdown(wait=True)
