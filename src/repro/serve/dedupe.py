"""Idempotent release serving: content-addressed dedupe, zero repeat spend.

A release request is identified the same way the sweep engine identifies
a grid point (:meth:`repro.engine.plan.PointSpec.key`): the snapshot
fingerprint plus every *value-determining* request field, hashed through
the shared :func:`repro.engine.store.content_key` idiom.  Fields that
cannot change the released numbers — the ledger label, the trial batch
size — are excluded, so two requests that would produce byte-identical
releases hash identically even when their bookkeeping differs.

The cache itself is the PR-6 :class:`~repro.engine.store.ResultStore`:
payloads live next to sweep points (same backend, same fan-out, same
corrupt-as-miss semantics) and are fleet-shareable through
``--store-url``.  Serving a cached release costs *zero compute and zero
repeat privacy budget*: the noise was drawn, and paid for, when the
release was first computed — re-publishing the same noisy numbers leaks
nothing new (DP post-processing).  Per-tenant idempotency is enforced
one level up: the service only serves tenant T from the cache when T's
own ledger already paid for that key, so tenant A's spend never
subsidizes tenant B.
"""

from __future__ import annotations

from repro.api.request import ReleaseRequest
from repro.engine.store import ResultStore, content_key

__all__ = ["RELEASE_KIND", "ReleaseCache", "release_key"]

RELEASE_KIND = "serve-release"

# Request fields with no influence on the released values: the label
# only names the ledger entry, and trials_batch only chunks the noise
# draw (bit-identical output by construction, pinned by the batched-
# trials tests).
_KEY_EXCLUDED_FIELDS = ("label", "trials_batch")


def release_key(fingerprint: str, request: ReleaseRequest) -> str:
    """The content hash identifying one release against one snapshot.

    Note that a request without a ``seed`` draws fresh entropy on every
    compute, so deduping it pins the *first* draw — exactly the
    idempotent-retry semantics a client wants (and the only
    budget-sound one: re-drawing noise for free would be a new release).
    """
    payload = request.to_dict()
    for name in _KEY_EXCLUDED_FIELDS:
        payload.pop(name, None)
    return content_key(
        {"kind": RELEASE_KIND, "snapshot": fingerprint, "request": payload}
    )


class ReleaseCache:
    """Served releases in the content-addressed result store.

    ``store=None`` disables caching (every request computes); corrupt or
    foreign payloads under a key are misses, mirroring the store's own
    resumability contract.
    """

    def __init__(self, store: ResultStore | None):
        self.store = store

    @property
    def enabled(self) -> bool:
        return self.store is not None

    def get(self, key: str) -> dict | None:
        """The cached ``{"result": ..., "spend": ...}`` payload, or None."""
        if self.store is None:
            return None
        payload = self.store.get(key)
        if (
            not isinstance(payload, dict)
            or payload.get("kind") != RELEASE_KIND
            or "result" not in payload
        ):
            return None
        return payload

    def put(self, key: str, result_payload: dict, spend) -> None:
        """Persist one computed release (atomic install via the backend)."""
        if self.store is None:
            return
        self.store.put(
            key,
            {
                "kind": RELEASE_KIND,
                "result": result_payload,
                "spend": None if spend is None else spend.to_dict(),
            },
        )

    def stats(self) -> dict | None:
        """The underlying store's unified telemetry (None when disabled)."""
        if self.store is None:
            return None
        return self.store.statistics.as_dict()
