"""A small blocking client for the release service (stdlib http.client).

Used by the tests, the examples and the benchmark load generator — one
persistent keep-alive connection per client instance, JSON in / JSON
out, errors surfaced as :class:`ServeError` carrying the HTTP status
and the server's decoded payload (so a 402's ledger state is readable
at the call site).
"""

from __future__ import annotations

import http.client
import json
import urllib.parse

from repro.api.request import ReleaseRequest

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A non-2xx service response."""

    def __init__(self, status: int, payload: dict):
        message = (
            payload.get("error", "") if isinstance(payload, dict) else str(payload)
        )
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload if isinstance(payload, dict) else {}


class ServeClient:
    """Blocking JSON client over one keep-alive connection.

    Not thread-safe — the benchmark gives each worker thread its own
    client, which is also what exercises the server's concurrency.
    """

    def __init__(self, base_url: str, *, timeout: float = 60.0):
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ValueError(
                f"base_url must look like http://host:port, got {base_url!r}"
            )
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout
        self._connection: http.client.HTTPConnection | None = None

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(self, method: str, path: str, payload: dict | None = None):
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
                break
            except (ConnectionError, http.client.HTTPException, OSError):
                # A server that drained between requests closed our
                # keep-alive socket; reconnect once, then give up.
                self.close()
                if attempt:
                    raise
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            decoded = {"error": raw.decode("utf-8", "replace")}
        if response.status >= 400:
            raise ServeError(response.status, decoded)
        return decoded

    # -- endpoints ------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def scenarios(self) -> dict:
        return self._request("GET", "/v1/scenarios")

    def ledger(self, tenant: str) -> dict:
        return self._request("GET", f"/v1/ledger/{urllib.parse.quote(tenant)}")

    def release(
        self,
        tenant: str,
        request: "ReleaseRequest | dict",
        *,
        scenario: str | None = None,
    ) -> dict:
        """Execute one release; raises :class:`ServeError` on any refusal.

        ``request`` is a :class:`~repro.api.request.ReleaseRequest` or
        its :meth:`~repro.api.request.ReleaseRequest.to_dict` payload.
        """
        if isinstance(request, ReleaseRequest):
            request = request.to_dict()
        envelope: dict = {"tenant": tenant, "request": request}
        if scenario is not None:
            envelope["scenario"] = scenario
        return self._request("POST", "/v1/release", envelope)
