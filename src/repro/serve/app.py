"""The DP release service: a long-lived, multi-tenant HTTP query server.

Stdlib-asyncio HTTP/1.1 front end (no framework, no new dependency)
over the library's release machinery:

- ``POST /v1/release`` — execute one declarative
  :class:`~repro.api.request.ReleaseRequest` for a tenant.  The flow is
  validate → dedupe lookup → budget preflight → compute (on the bounded
  executor) → durable charge → cache → respond.  Overdrafts return
  **402** for ``raise``-policy tenants and **200 with a warning** for
  ``warn``-policy ones; an identical repeat request is served straight
  from the content-addressed store with zero compute and zero new debit.
- ``GET /v1/ledger/<tenant>`` — the tenant's full ledger state.
- ``GET /v1/scenarios`` — the hosted economies and their warm state.
- ``GET /healthz`` — liveness (and draining state).
- ``GET /metrics`` — request counts by route/status, a latency
  histogram with p50/p95/p99, release compute/dedupe counts, and the
  unified store telemetry (:class:`~repro.storage.StoreStats`).

**The event loop never blocks**: dataset compute, journal fsyncs,
ledger replay and store I/O all run through the pool's bounded
executor.  **Shutdown is graceful**: SIGINT/SIGTERM stop the listener,
in-flight requests finish (journals are fsync'd per entry, so there is
nothing else to flush), and the process exits 0.  Binding ``port=0``
picks an ephemeral port which is reported on stdout — the hook the
tests and the load generator use.
"""

from __future__ import annotations

import asyncio
import bisect
import json
import signal
import threading
import time

from repro.api.request import ReleaseRequest
from repro.api.session import ReleaseSession
from repro.core.composition import marginal_budget
from repro.core.release import resolve_mode
from repro.dp.composition import PrivacyBudgetExceeded
from repro.serve.dedupe import ReleaseCache, release_key
from repro.serve.pool import SessionPool
from repro.serve.tenants import TenantRegistry, UnknownTenant

__all__ = ["ReleaseService", "ServiceMetrics"]

_MAX_BODY_BYTES = 4 * 1024 * 1024
_MAX_HEADER_LINES = 100

# Latency histogram bucket upper bounds, in milliseconds.
_LATENCY_BUCKETS_MS = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0,
)


class _HTTPError(Exception):
    """An error response with a status and a JSON-safe message."""

    def __init__(self, status: int, message: str, **extra):
        super().__init__(message)
        self.status = status
        self.payload = {"error": message, **extra}


class ServiceMetrics:
    """Thread-safe request/latency/release counters for ``/metrics``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_at = time.time()
        self.by_route: dict[str, int] = {}
        self.by_status: dict[int, int] = {}
        self.releases_computed = 0
        self.releases_deduped = 0
        self.releases_denied = 0
        self._bucket_counts = [0] * (len(_LATENCY_BUCKETS_MS) + 1)
        self._latency_sum_ms = 0.0
        self._latency_count = 0

    def observe(self, route: str, status: int, seconds: float) -> None:
        ms = seconds * 1000.0
        with self._lock:
            self.by_route[route] = self.by_route.get(route, 0) + 1
            self.by_status[status] = self.by_status.get(status, 0) + 1
            self._bucket_counts[bisect.bisect_left(_LATENCY_BUCKETS_MS, ms)] += 1
            self._latency_sum_ms += ms
            self._latency_count += 1

    def release_outcome(self, outcome: str) -> None:
        with self._lock:
            if outcome == "computed":
                self.releases_computed += 1
            elif outcome == "deduped":
                self.releases_deduped += 1
            elif outcome == "denied":
                self.releases_denied += 1

    def _quantile_ms(self, q: float) -> float | None:
        """The bucket upper bound covering quantile ``q`` (histogram
        estimate: correct to bucket resolution, cheap at any volume)."""
        if self._latency_count == 0:
            return None
        rank = q * self._latency_count
        seen = 0
        for index, count in enumerate(self._bucket_counts):
            seen += count
            if seen >= rank:
                if index < len(_LATENCY_BUCKETS_MS):
                    return _LATENCY_BUCKETS_MS[index]
                return float("inf")
        return _LATENCY_BUCKETS_MS[-1]

    def snapshot(self) -> dict:
        with self._lock:
            buckets = {
                f"le_{bound:g}ms": count
                for bound, count in zip(
                    _LATENCY_BUCKETS_MS, self._bucket_counts
                )
            }
            buckets["le_inf"] = self._bucket_counts[-1]
            p99 = self._quantile_ms(0.99)
            return {
                "uptime_s": time.time() - self.started_at,
                "requests": {
                    "total": self._latency_count,
                    "by_route": dict(self.by_route),
                    "by_status": {
                        str(code): count
                        for code, count in sorted(self.by_status.items())
                    },
                },
                "releases": {
                    "computed": self.releases_computed,
                    "deduped": self.releases_deduped,
                    "denied": self.releases_denied,
                },
                "latency_ms": {
                    "count": self._latency_count,
                    "sum": self._latency_sum_ms,
                    "p50": self._quantile_ms(0.50),
                    "p95": self._quantile_ms(0.95),
                    "p99": None if p99 == float("inf") else p99,
                    "buckets": buckets,
                },
            }


def expected_spend(
    session: ReleaseSession, request: ReleaseRequest
) -> tuple[float, float]:
    """The (ε, δ) a request will debit, computed *before* any noise draw.

    This is the preflight amount: baseline (node-DP) releases spend the
    request ε alone; composite and calibrated releases spend the Sec-4
    composed total of their marginal.  Cheap — pure arithmetic over the
    schema — so an over-budget tenant is refused before paying compute.
    """
    from repro.api.registry import BASELINE, COMPOSITE

    kind = request.spec.kind
    if kind == BASELINE:
        return float(request.epsilon), 0.0
    if kind == COMPOSITE:
        return float(request.epsilon), float(request.delta)
    budget = marginal_budget(
        request.params,
        session.schema,
        request.attrs,
        session.worker_attrs,
        resolve_mode(request.attrs, session.worker_attrs, request.mode),
        request.budget_style,
    )
    return float(budget.total.epsilon), float(budget.total.delta)


class ReleaseService:
    """The asyncio HTTP server wiring pool + tenants + dedupe together."""

    DRAIN_TIMEOUT_S = 30.0

    def __init__(
        self,
        pool: SessionPool,
        tenants: TenantRegistry,
        cache: ReleaseCache | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.pool = pool
        self.tenants = tenants
        self.cache = cache if cache is not None else ReleaseCache(None)
        self.host = host
        self.port = port  # replaced by the bound port after start()
        self.metrics = ServiceMetrics()
        self._server: asyncio.AbstractServer | None = None
        self._stopping = False
        self._in_flight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._connections: set[asyncio.Task] = set()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> "ReleaseService":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def shutdown(self) -> None:
        """Stop accepting, drain in-flight requests, release resources.

        Journals need no flush — every charge was fsync'd before its
        response went out — so draining the request counter *is* the
        durability barrier.
        """
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(
                self._idle.wait(), timeout=self.DRAIN_TIMEOUT_S
            )
        except asyncio.TimeoutError:
            pass
        # In-flight work is done (or timed out); what remains are idle
        # keep-alive connections parked on readline — hang up on them.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        await asyncio.get_running_loop().run_in_executor(None, self.pool.close)

    async def run_until_signalled(self, *, announce=print) -> None:
        """Serve until SIGINT/SIGTERM, then drain and return (exit 0).

        ``announce`` gets the one-line ``listening on ...`` report —
        stdout by default, which is how tests and the load generator
        discover an ephemeral ``--port 0`` binding.
        """
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                signal.signal(signum, lambda *_: stop.set())
        await self.start()
        announce(
            f"release service listening on {self.url} "
            f"(scenarios: {', '.join(self.pool.names)}; "
            f"default: {self.pool.default})",
        )
        await stop.wait()
        announce("release service draining...")
        await self.shutdown()
        announce("release service stopped cleanly")

    # -- HTTP plumbing --------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        self._connections.add(asyncio.current_task())
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, body, keep_alive = request
                if self._stopping:
                    await self._write_response(
                        writer, 503, {"error": "server is draining"},
                        keep_alive=False,
                    )
                    break
                self._in_flight += 1
                self._idle.clear()
                started = time.perf_counter()
                try:
                    status, payload = await self._dispatch(method, path, body)
                finally:
                    self._in_flight -= 1
                    if self._in_flight == 0:
                        self._idle.set()
                self.metrics.observe(
                    self._route_of(method, path),
                    status,
                    time.perf_counter() - started,
                )
                await self._write_response(
                    writer, status, payload, keep_alive=keep_alive
                )
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
            ConnectionError,
            asyncio.LimitOverrunError,
        ):
            pass
        finally:
            self._connections.discard(asyncio.current_task())
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _read_request(self, reader):
        """Parse one HTTP/1.1 request; None on a cleanly closed socket."""
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, target, _version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            raise ConnectionError("malformed request line") from None
        headers = {}
        for _ in range(_MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise ConnectionError("too many header lines")
        length = int(headers.get("content-length") or 0)
        if length > _MAX_BODY_BYTES:
            raise ConnectionError("request body too large")
        body = await reader.readexactly(length) if length else b""
        keep_alive = headers.get("connection", "").lower() != "close"
        return method.upper(), target.split("?", 1)[0], body, keep_alive

    async def _write_response(
        self, writer, status: int, payload: dict, *, keep_alive: bool
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 402: "Payment Required",
                  404: "Not Found", 405: "Method Not Allowed",
                  500: "Internal Server Error",
                  503: "Service Unavailable"}.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    @staticmethod
    def _route_of(method: str, path: str) -> str:
        if path.startswith("/v1/ledger/"):
            return f"{method} /v1/ledger/<tenant>"
        return f"{method} {path}"

    # -- routing --------------------------------------------------------

    async def _dispatch(self, method: str, path: str, body: bytes):
        try:
            if path == "/healthz" and method == "GET":
                return 200, {"status": "ok", "draining": self._stopping}
            if path == "/metrics" and method == "GET":
                return 200, self._metrics_payload()
            if path == "/v1/scenarios" and method == "GET":
                return 200, {
                    "scenarios": self.pool.describe(),
                    "default": self.pool.default,
                }
            if path.startswith("/v1/ledger/") and method == "GET":
                return await self._handle_ledger(path[len("/v1/ledger/"):])
            if path == "/v1/release" and method == "POST":
                return await self._handle_release(body)
            if path in ("/healthz", "/metrics", "/v1/scenarios", "/v1/release"):
                return 405, {"error": f"method {method} not allowed on {path}"}
            return 404, {"error": f"no route for {method} {path}"}
        except _HTTPError as error:
            if error.status == 402:
                self.metrics.release_outcome("denied")
            return error.status, error.payload
        except Exception as error:  # a bug must not kill the connection loop
            return 500, {"error": f"internal error: {error!r}"}

    def _metrics_payload(self) -> dict:
        payload = self.metrics.snapshot()
        stores = {}
        if self.cache.enabled:
            stores["results"] = self.cache.stats()
        snapshot_store = self.pool.snapshot_store
        if snapshot_store is not None:
            stores["snapshots"] = snapshot_store.statistics.as_dict()
        payload["stores"] = stores
        payload["tenants"] = {"materialized": len(self.tenants.accounts())}
        return payload

    async def _handle_ledger(self, name: str):
        try:
            account = await self.pool.run(self.tenants.account, name)
        except UnknownTenant as error:
            raise _HTTPError(404, str(error)) from None
        except ValueError as error:
            raise _HTTPError(400, str(error)) from None
        return 200, await self.pool.run(account.state)

    # -- the release flow ----------------------------------------------

    async def _handle_release(self, body: bytes):
        try:
            envelope = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise _HTTPError(400, "request body is not valid JSON") from None
        if not isinstance(envelope, dict):
            raise _HTTPError(400, "request body must be a JSON object")
        unknown = sorted(set(envelope) - {"tenant", "scenario", "request"})
        if unknown:
            raise _HTTPError(
                400,
                f"unknown field(s) {unknown}; valid fields are "
                "['request', 'scenario', 'tenant']",
            )
        tenant_name = envelope.get("tenant")
        if not isinstance(tenant_name, str) or not tenant_name:
            raise _HTTPError(
                400, f"field 'tenant' must be a tenant name, got {tenant_name!r}"
            )
        scenario = envelope.get("scenario")
        if scenario is not None and not isinstance(scenario, str):
            raise _HTTPError(
                400, f"field 'scenario' must be a scenario name, got {scenario!r}"
            )
        try:
            request = ReleaseRequest.from_dict(envelope.get("request"))
        except ValueError as error:
            raise _HTTPError(400, str(error)) from None

        try:
            account = await self.pool.run(self.tenants.account, tenant_name)
        except UnknownTenant as error:
            raise _HTTPError(404, str(error)) from None
        except ValueError as error:
            raise _HTTPError(400, str(error)) from None
        try:
            session = await self.pool.session_async(scenario)
        except ValueError as error:
            raise _HTTPError(404, str(error)) from None
        try:
            await self.pool.run(
                lambda: request.validate(
                    schema=session.schema, worker_attrs=session.worker_attrs
                )
            )
        except ValueError as error:
            raise _HTTPError(400, str(error)) from None

        key = release_key(session.snapshot_fingerprint, request)
        already_paid = account.has_paid(key)

        if already_paid:
            cached = await self.pool.run(self.cache.get, key)
            if cached is not None:
                self.metrics.release_outcome("deduped")
                return 200, {
                    "result": cached["result"],
                    "request_key": key,
                    "cached": True,
                    "charged": False,
                    "warning": None,
                    "ledger": account.summary(),
                }
            # Paid but evicted from the cache: recompute below, but the
            # tenant is never charged twice for one request key.

        if not already_paid:
            epsilon, delta = expected_spend(session, request)
            try:
                account.preflight(epsilon, delta, label=request.ledger_label)
            except PrivacyBudgetExceeded as error:
                raise _HTTPError(
                    402, str(error), ledger=account.summary()
                ) from None

        result, spend = await self.pool.run(session.execute, request)
        result_payload = result.to_dict()
        warning = None
        if not already_paid:
            try:
                # Journal fsync before the in-memory debit, both before
                # the cache write and the response: an acknowledged (or
                # cached) release is always a journaled one.
                warning = await self.pool.run(account.charge, spend, key)
            except PrivacyBudgetExceeded as error:
                # A concurrent debit for the same tenant won the race
                # between preflight and charge.
                raise _HTTPError(
                    402, str(error), ledger=account.summary()
                ) from None
        await self.pool.run(self.cache.put, key, result_payload, spend)
        self.metrics.release_outcome("computed")
        return 200, {
            "result": result_payload,
            "request_key": key,
            "cached": False,
            "charged": not already_paid,
            "warning": warning,
            "ledger": account.summary(),
        }
