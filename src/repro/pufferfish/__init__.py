"""Pufferfish formalization and exact verification (Sec 4 of the paper).

The paper states its privacy requirements as bounds on the Bayes factor
an informed attacker can achieve about (a) a worker's record, (b) an
establishment's size, and (c) an establishment's shape.  This package
makes those statements executable: on a tiny universe we enumerate every
possible dataset, weight each by an adversary's product prior, push the
weights through a mechanism's output density, and compute the exact
posterior-to-prior odds ratios of Definitions 4.1–4.3.

Used by the test suite both positively (the paper's mechanisms respect
the bounds) and negatively (edge DP breaks the size requirement; SDL
breaks all three).
"""

from repro.pufferfish.adversary import informed_adversary, weak_adversary
from repro.pufferfish.bayes_factor import (
    max_log_bayes_factor,
    posterior_distribution,
)
from repro.pufferfish.framework import ProductPrior, Universe, enumerate_datasets
from repro.pufferfish.requirements import (
    employee_requirement_bound,
    employer_shape_requirement_bound,
    employer_size_requirement_bound,
)

__all__ = [
    "Universe",
    "ProductPrior",
    "enumerate_datasets",
    "informed_adversary",
    "weak_adversary",
    "posterior_distribution",
    "max_log_bayes_factor",
    "employee_requirement_bound",
    "employer_size_requirement_bound",
    "employer_shape_requirement_bound",
]
