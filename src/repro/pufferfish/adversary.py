"""Adversary priors: informed attackers Θ and weak attackers Θ_weak.

Θ contains every product prior — including attackers who know all but
one worker exactly, and attackers who know everything about all but one
establishment.  Θ_weak ⊂ Θ (Sec 4.2) restricts each worker's prior to a
product of an employer prior (shared across workers) and a *uniform*
prior over worker attributes: weak attackers cannot tell workers apart.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.pufferfish.framework import ProductPrior, Universe


def informed_adversary(
    universe: Universe,
    base_probabilities: Sequence[float],
    known_workers: Mapping[str, tuple] | None = None,
) -> ProductPrior:
    """A (possibly maximally) informed attacker.

    ``base_probabilities`` is the default belief over T for unknown
    workers; ``known_workers`` pins specific workers to exact values
    (probability 1) — the paper's informed attackers who know all but one
    worker or establishment.
    """
    base = np.asarray(base_probabilities, dtype=np.float64)
    if base.shape != (universe.n_values,):
        raise ValueError(
            f"base probabilities must have length {universe.n_values}"
        )
    table = np.tile(base, (len(universe.workers), 1))
    for worker_name, value in (known_workers or {}).items():
        worker_index = universe.workers.index(worker_name)
        table[worker_index] = 0.0
        table[worker_index, universe.value_index(value)] = 1.0
    return ProductPrior(universe=universe, table=table)


def weak_adversary(
    universe: Universe, employer_probabilities: Sequence[float]
) -> ProductPrior:
    """A weak attacker: per-establishment beliefs, uniform over attributes.

    ``employer_probabilities`` runs over E ∪ {⊥} in universe order; each
    worker's prior is that employer belief times the uniform distribution
    over the attribute combinations, identically for every worker.
    """
    employers = universe.establishments + ("⊥",)
    employer_probabilities = np.asarray(employer_probabilities, dtype=np.float64)
    if employer_probabilities.shape != (len(employers),):
        raise ValueError(f"need one probability per employer option ({len(employers)})")
    if not np.isclose(employer_probabilities.sum(), 1.0, atol=1e-9):
        raise ValueError("employer probabilities must sum to 1")

    n_attribute_values = len(universe.worker_attribute_values)
    base = np.empty(universe.n_values, dtype=np.float64)
    for value_index, (employer, _) in enumerate(universe.values):
        employer_index = employers.index(employer)
        base[value_index] = employer_probabilities[employer_index] / n_attribute_values
    table = np.tile(base, (len(universe.workers), 1))
    return ProductPrior(universe=universe, table=table)
