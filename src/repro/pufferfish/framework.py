"""Tiny-universe Pufferfish model (Sec 4.2 of the paper).

The adversary model: the universe of establishments ``E`` with public
attributes, the universe of workers ``U``, and for each worker a value in

    T = (E ∪ {⊥}) × A1 × ... × Ak

(⊥ means "not employed at any in-scope establishment"; the Ai are worker
attributes).  The adversary's belief is a product distribution
``θ = Π_w π_w`` — no correlations between workers (the assumption the
paper argues is unavoidable after the no-free-lunch theorem).

A *dataset* is one value assignment per worker; enumerating all
``|T|^|U|`` assignments is feasible for the verification universes used
in tests (a few workers, a few values).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from itertools import product

import numpy as np

UNEMPLOYED = "⊥"


@dataclass(frozen=True)
class Universe:
    """The adversary's universe.

    ``establishments`` are establishment names; ``worker_attribute_values``
    is the cross product domain of worker attributes (use ``((),)`` — a
    single empty tuple — when workers carry no attributes beyond their
    employer).  ``values`` is T: pairs (employer-or-⊥, attribute-tuple).
    """

    establishments: tuple[str, ...]
    workers: tuple[str, ...]
    worker_attribute_values: tuple[tuple, ...] = ((),)

    def __post_init__(self):
        if not self.establishments:
            raise ValueError("universe needs at least one establishment")
        if not self.workers:
            raise ValueError("universe needs at least one worker")

    @property
    def values(self) -> tuple[tuple, ...]:
        """T = (E ∪ {⊥}) × attribute values, in a fixed order."""
        employers = self.establishments + (UNEMPLOYED,)
        return tuple(
            (employer, attributes)
            for employer in employers
            for attributes in self.worker_attribute_values
        )

    @property
    def n_values(self) -> int:
        return len(self.values)

    def value_index(self, value: tuple) -> int:
        try:
            return self.values.index(value)
        except ValueError:
            raise ValueError(f"{value!r} is not in T for this universe") from None

    def employer_of(self, value_index: int) -> str:
        return self.values[value_index][0]

    def attributes_of(self, value_index: int) -> tuple:
        return self.values[value_index][1]


Dataset = tuple  # one value index per worker


def enumerate_datasets(universe: Universe) -> Iterator[Dataset]:
    """All |T|^|U| assignments of workers to values, as index tuples."""
    return product(range(universe.n_values), repeat=len(universe.workers))


def establishment_size(universe: Universe, dataset: Dataset, establishment: str) -> int:
    """|e|: number of workers assigned to ``establishment`` in ``dataset``."""
    return sum(
        1 for v in dataset if universe.employer_of(v) == establishment
    )


def establishment_class_count(
    universe: Universe,
    dataset: Dataset,
    establishment: str,
    attribute_predicate,
) -> int:
    """|e_X|: workers at ``establishment`` whose attributes satisfy X."""
    return sum(
        1
        for v in dataset
        if universe.employer_of(v) == establishment
        and attribute_predicate(universe.attributes_of(v))
    )


@dataclass(frozen=True)
class ProductPrior:
    """θ = Π_w π_w over the universe's value set.

    ``table[w, v]`` is worker w's probability of value v.  Rows must be
    distributions.
    """

    universe: Universe
    table: np.ndarray

    def __post_init__(self):
        expected = (len(self.universe.workers), self.universe.n_values)
        if self.table.shape != expected:
            raise ValueError(f"prior table must have shape {expected}")
        if np.any(self.table < 0):
            raise ValueError("prior probabilities must be non-negative")
        sums = self.table.sum(axis=1)
        if not np.allclose(sums, 1.0, atol=1e-9):
            raise ValueError("each worker's prior must sum to 1")

    def probability(self, dataset: Dataset) -> float:
        """θ(dataset) — the product of per-worker probabilities."""
        result = 1.0
        for worker_index, value_index in enumerate(dataset):
            result *= float(self.table[worker_index, value_index])
        return result

    def dataset_probabilities(self) -> tuple[list[Dataset], np.ndarray]:
        """All datasets with their prior probabilities (enumeration order)."""
        datasets = list(enumerate_datasets(self.universe))
        probabilities = np.array([self.probability(d) for d in datasets])
        return datasets, probabilities
