"""Exact posterior and Bayes-factor computation.

For a mechanism whose output has a known density given the dataset,
Bayes' rule gives the attacker's posterior over datasets at any observed
output ω:

    Pr[D | ω]  ∝  θ(D) · p(ω | D).

The Bayes factor of Definitions 4.1–4.3 for a secret pair (s_a, s_b) is

    ( Pr[s_a | ω] / Pr[s_b | ω] )  /  ( Pr[s_a] / Pr[s_b] ),

with the event probabilities summed over the datasets where the secret
holds.  Everything here is exact up to float arithmetic — no sampling —
so the privacy tests are deterministic.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

import numpy as np

from repro.pufferfish.framework import Dataset, ProductPrior

# A mechanism adapter: log density of output ω given a dataset.
LogDensity = Callable[[Dataset, float], float]


def posterior_distribution(
    prior: ProductPrior, log_density: LogDensity, omega: float
) -> tuple[list[Dataset], np.ndarray]:
    """Posterior probabilities over all datasets at output ``omega``."""
    datasets, prior_probabilities = prior.dataset_probabilities()
    log_likelihoods = np.array(
        [
            log_density(dataset, omega) if p > 0 else -np.inf
            for dataset, p in zip(datasets, prior_probabilities)
        ]
    )
    with np.errstate(divide="ignore"):
        log_weights = np.log(prior_probabilities) + log_likelihoods
    finite = np.isfinite(log_weights)
    if not finite.any():
        raise ValueError(f"no dataset has positive posterior mass at ω={omega}")
    shifted = log_weights - log_weights[finite].max()
    weights = np.where(np.isfinite(shifted), np.exp(shifted), 0.0)
    return datasets, weights / weights.sum()


def _event_odds(
    datasets: Sequence[Dataset],
    probabilities: np.ndarray,
    event_a: Callable[[Dataset], bool],
    event_b: Callable[[Dataset], bool],
) -> float:
    """Pr[A]/Pr[B] under ``probabilities``; nan when either mass is zero."""
    mass_a = sum(p for d, p in zip(datasets, probabilities) if event_a(d))
    mass_b = sum(p for d, p in zip(datasets, probabilities) if event_b(d))
    if mass_a <= 0.0 or mass_b <= 0.0:
        return float("nan")
    return mass_a / mass_b


def log_bayes_factor(
    prior: ProductPrior,
    log_density: LogDensity,
    omega: float,
    event_a: Callable[[Dataset], bool],
    event_b: Callable[[Dataset], bool],
) -> float:
    """log of (posterior odds / prior odds) for the event pair at ω.

    Returns nan when either event has zero prior mass (Definitions
    4.1–4.3 only constrain pairs with positive prior probability).
    """
    datasets, prior_probabilities = prior.dataset_probabilities()
    prior_odds = _event_odds(datasets, prior_probabilities, event_a, event_b)
    if math.isnan(prior_odds):
        return float("nan")
    _, posterior = posterior_distribution(prior, log_density, omega)
    posterior_odds = _event_odds(datasets, posterior, event_a, event_b)
    if math.isnan(posterior_odds):
        return float("nan")
    return math.log(posterior_odds / prior_odds)


def max_log_bayes_factor(
    prior: ProductPrior,
    log_density: LogDensity,
    omegas: Sequence[float],
    event_pairs: Sequence[tuple],
) -> float:
    """Max |log Bayes factor| over an output grid and secret pairs.

    ``event_pairs`` holds ``(event_a, event_b)`` callables.  This is the
    quantity the requirements bound by ε.
    """
    worst = 0.0
    for omega in omegas:
        for event_a, event_b in event_pairs:
            value = log_bayes_factor(prior, log_density, omega, event_a, event_b)
            if not math.isnan(value):
                worst = max(worst, abs(value))
    return worst
