"""Definitions 4.1–4.3 as executable requirement checks.

Each function computes the worst-case |log Bayes factor| a given attacker
achieves about the protected secret over a grid of mechanism outputs.  A
mechanism meets the requirement at level ε (or (ε, α)) when the returned
bound is at most ε (up to numerical tolerance); the tests also use these
to show *violations* by SDL and edge DP.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.pufferfish.bayes_factor import LogDensity, max_log_bayes_factor
from repro.pufferfish.framework import (
    ProductPrior,
    establishment_class_count,
    establishment_size,
)


def employee_requirement_bound(
    prior: ProductPrior,
    log_density: LogDensity,
    omegas: Sequence[float],
    worker: str,
    value_pairs: Sequence[tuple] | None = None,
) -> float:
    """Definition 4.1: worst |log BF| over pairs of values for one worker.

    ``value_pairs`` defaults to all ordered pairs of T values with
    positive prior probability for ``worker``.
    """
    universe = prior.universe
    worker_index = universe.workers.index(worker)
    if value_pairs is None:
        supported = [
            universe.values[i]
            for i in range(universe.n_values)
            if prior.table[worker_index, i] > 0
        ]
        value_pairs = [(a, b) for a in supported for b in supported if a != b]

    def holds(value):
        index = universe.value_index(value)
        return lambda dataset: dataset[worker_index] == index

    event_pairs = [(holds(a), holds(b)) for a, b in value_pairs]
    return max_log_bayes_factor(prior, log_density, omegas, event_pairs)


def employer_size_requirement_bound(
    prior: ProductPrior,
    log_density: LogDensity,
    omegas: Sequence[float],
    establishment: str,
    alpha: float,
    max_size: int | None = None,
) -> float:
    """Definition 4.2: worst |log BF| over size pairs x <= y <= ceil((1+α)x).

    Pairs range over sizes up to ``max_size`` (default: the number of
    workers in the universe).
    """
    universe = prior.universe
    limit = max_size if max_size is not None else len(universe.workers)

    def size_is(target):
        return lambda dataset: establishment_size(
            universe, dataset, establishment
        ) == target

    event_pairs = []
    for x in range(0, limit + 1):
        upper = min(limit, math.ceil((1.0 + alpha) * x)) if x > 0 else min(limit, 1)
        for y in range(x, upper + 1):
            if y != x:
                event_pairs.append((size_is(x), size_is(y)))
                event_pairs.append((size_is(y), size_is(x)))
    if not event_pairs:
        return 0.0
    return max_log_bayes_factor(prior, log_density, omegas, event_pairs)


def employer_shape_requirement_bound(
    prior: ProductPrior,
    log_density: LogDensity,
    omegas: Sequence[float],
    establishment: str,
    attribute_predicate,
    alpha: float,
    size: int,
) -> float:
    """Definition 4.3: worst |log BF| over shape pairs at fixed size.

    Compares the events (|e_X|/|e| = p, |e| = z) vs (q, z) for all
    fractions p <= q <= min(1, (1+α)p) realizable at size ``z = size``,
    where X is given by ``attribute_predicate`` on the worker attributes.
    """
    universe = prior.universe

    def shape_is(class_count):
        def event(dataset):
            return (
                establishment_size(universe, dataset, establishment) == size
                and establishment_class_count(
                    universe, dataset, establishment, attribute_predicate
                )
                == class_count
            )

        return event

    event_pairs = []
    for count_p in range(1, size + 1):
        p = count_p / size
        for count_q in range(count_p, size + 1):
            q = count_q / size
            if count_q != count_p and q <= min(1.0, (1.0 + alpha) * p):
                event_pairs.append((shape_is(count_p), shape_is(count_q)))
                event_pairs.append((shape_is(count_q), shape_is(count_p)))
    if not event_pairs:
        return 0.0
    return max_log_bayes_factor(prior, log_density, omegas, event_pairs)
