"""The input-noise-infusion protection system (Sec 5.1).

``InputNoiseInfusion.fit`` draws the permanent per-establishment fuzz
factors once; ``answer_marginal`` then tabulates any marginal by summing
fuzzed establishment contributions ``f_w · h(w, c)`` and applying the
small-cell replacement to cells whose *true* count is in ``(0, S)``.

Summing ``f_w · h(w, c)`` over matching establishments is implemented as
a weighted bincount with per-job weight ``f_{w(job)}`` — identical by
linearity, and O(jobs) per marginal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.db.histogram import establishment_histograms
from repro.db.join import WorkerFull
from repro.db.query import Marginal
from repro.sdl.distortion import DistortionParams, sample_distortion_factors
from repro.sdl.small_cells import SmallCellModel
from repro.util import as_generator, derive_seed


@dataclass(frozen=True)
class SDLAnswer:
    """One protected marginal release.

    ``noisy`` is the published vector; ``true`` the confidential counts;
    ``replaced`` flags cells that went through small-cell replacement.
    """

    noisy: np.ndarray
    true: np.ndarray
    replaced: np.ndarray


@dataclass
class InputNoiseInfusion:
    """The current SDL system, fit once per confidential snapshot."""

    distortion: DistortionParams = field(default_factory=DistortionParams)
    small_cells: SmallCellModel = field(default_factory=SmallCellModel)
    seed: int = 0
    _factors: np.ndarray | None = field(default=None, repr=False)

    def fit(self, worker_full: WorkerFull) -> "InputNoiseInfusion":
        """Draw the permanent fuzz factor for every establishment."""
        rng = as_generator(derive_seed(self.seed, "sdl-factors"))
        self._factors = sample_distortion_factors(
            self.distortion, worker_full.n_establishments, rng
        )
        return self

    @property
    def factors(self) -> np.ndarray:
        """Permanent per-establishment fuzz factors (confidential in prod)."""
        if self._factors is None:
            raise RuntimeError("call fit() before using the SDL system")
        return self._factors

    def answer_marginal(
        self, worker_full: WorkerFull, marginal: Marginal, seed=None
    ) -> SDLAnswer:
        """Publish marginal counts under input noise infusion.

        The small-cell draw is the only per-release randomness; the fuzz
        factors are the permanent ones drawn by :meth:`fit`.
        """
        factors = self.factors
        job_weights = factors[worker_full.establishment]
        noisy = marginal.weighted_counts(worker_full.table, job_weights)
        true = marginal.counts(worker_full.table).astype(np.float64)

        replaced = self.small_cells.is_small(true)
        n_replaced = int(replaced.sum())
        if n_replaced:
            rng = as_generator(
                derive_seed(self.seed, "sdl-small-cells") if seed is None else seed
            )
            noisy = noisy.copy()
            noisy[replaced] = self.small_cells.sample(n_replaced, rng)

        # Zero true counts are published as exact zeros (Sec 5.1).
        noisy = noisy.copy()
        noisy[true == 0] = 0.0
        return SDLAnswer(noisy=noisy, true=true, replaced=replaced)

    def protected_histograms(
        self, worker_full: WorkerFull, worker_attrs
    ) -> sparse.csr_matrix:
        """The fuzzed per-establishment histograms h*(w, c) = f_w · h(w, c).

        This is the intermediate product the Sec 5.2 attacks exploit:
        every cell of establishment ``w`` shares the same factor ``f_w``
        and zero cells stay exactly zero.
        """
        histograms = establishment_histograms(worker_full, worker_attrs)
        scaling = sparse.diags(self.factors)
        return (scaling @ histograms).tocsr()
