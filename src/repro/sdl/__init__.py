"""Current statistical disclosure limitation: input noise infusion.

This is the protection system the paper's utility comparisons are made
against (Sec 5).  Every establishment receives a permanent, confidential
multiplicative distortion factor ``f_w`` bounded away from 1; all of its
histogram counts ``h(w, c)`` are multiplied by ``f_w`` before tabulation;
small true cells are replaced by posterior-predictive draws; zero cells
pass through unperturbed.

The scheme avoids *exact* disclosure but admits the inference attacks of
Sec 5.2, implemented in :mod:`repro.attacks`.
"""

from repro.sdl.distortion import DistortionParams, sample_distortion_factors
from repro.sdl.noise_infusion import InputNoiseInfusion, SDLAnswer
from repro.sdl.small_cells import SmallCellModel

__all__ = [
    "DistortionParams",
    "sample_distortion_factors",
    "SmallCellModel",
    "InputNoiseInfusion",
    "SDLAnswer",
]
