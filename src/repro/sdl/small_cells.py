"""Small-cell replacement for the SDL system.

Sec 5.1: when a marginal cell's *true* count lies in ``(0, S)`` (the
small-cell limit, ``S = 2.5`` for the paper's dataset), the noise-infused
answer is replaced by a draw from a posterior predictive distribution
supported on the integers ``1, ..., floor(S)``.  Zero cells pass through
unmodified.

The production system fits a posterior predictive model; any fixed
distribution on ``{1, ..., floor(S)}`` reproduces the privacy-relevant
behaviour (small counts are resampled, zeros are preserved), so the model
here takes explicit probabilities with a near-uniform default slightly
favouring 1 (small true cells are more often 1 than 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util import as_generator, check_positive


@dataclass(frozen=True)
class SmallCellModel:
    """Replacement distribution for true counts in ``(0, limit)``.

    ``probabilities[j]`` is the probability of outputting ``j + 1``; its
    length must be ``floor(limit)``.
    """

    limit: float = 2.5
    probabilities: tuple[float, ...] = (0.6, 0.4)

    def __post_init__(self):
        check_positive("limit", self.limit)
        support = int(np.floor(self.limit))
        if support < 1:
            raise ValueError(f"limit {self.limit} leaves an empty support")
        if len(self.probabilities) != support:
            raise ValueError(
                f"need {support} probabilities for limit {self.limit}, "
                f"got {len(self.probabilities)}"
            )
        total = sum(self.probabilities)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"probabilities must sum to 1, got {total}")
        if any(p < 0 for p in self.probabilities):
            raise ValueError("probabilities must be non-negative")

    @property
    def support(self) -> tuple[int, ...]:
        """The integers the replacement draw can output."""
        return tuple(range(1, int(np.floor(self.limit)) + 1))

    def is_small(self, true_counts: np.ndarray) -> np.ndarray:
        """Boolean mask of counts in the open interval (0, limit)."""
        true_counts = np.asarray(true_counts)
        return (true_counts > 0) & (true_counts < self.limit)

    def sample(self, count: int, seed=None) -> np.ndarray:
        """Draw ``count`` replacement values from the support."""
        rng = as_generator(seed)
        values = np.asarray(self.support, dtype=np.int64)
        return rng.choice(values, size=count, p=np.asarray(self.probabilities))
