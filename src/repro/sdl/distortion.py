"""Permanent multiplicative distortion (fuzz) factors.

Sec 5.1: every establishment ``w`` is assigned a unique, time-invariant,
confidential factor ``f_w`` within ``[1-t, 1-s] ∪ [1+s, 1+t]`` with
``0 < s < t < 1``.  The gap ``(1-s, 1+s)`` around 1 guarantees the true
count is never published exactly; ``s`` and ``t`` themselves are kept
confidential by the agency (we default to plausible public-knowledge
values and expose them as parameters).

Two densities for the distortion magnitude ``|f_w - 1| ∈ [s, t]``:

- ``"ramp"`` (default): linearly decreasing density ``2(t-x)/(t-s)^2``,
  the shape described for the QWI production system — most establishments
  get close-to-minimal distortion;
- ``"uniform"``: uniform on ``[s, t]``.

The sign (inflate vs deflate) is symmetric ±1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util import as_generator, check_fraction, check_in


@dataclass(frozen=True)
class DistortionParams:
    """Fuzz-factor parameters ``0 < s < t < 1`` and magnitude density."""

    s: float = 0.07
    t: float = 0.25
    density: str = "ramp"

    def __post_init__(self):
        check_fraction("s", self.s)
        check_fraction("t", self.t)
        if self.s >= self.t:
            raise ValueError(f"need s < t, got s={self.s}, t={self.t}")
        check_in("density", self.density, ("ramp", "uniform"))

    def mean_absolute_distortion(self) -> float:
        """E|f_w - 1|, the expected relative error SDL injects per count."""
        if self.density == "uniform":
            return (self.s + self.t) / 2
        # Decreasing ramp on [s, t]: E[x] = s + (t - s)/3.
        return self.s + (self.t - self.s) / 3


def sample_distortion_magnitudes(
    params: DistortionParams, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``count`` distortion magnitudes in [s, t] from the chosen density."""
    u = rng.random(count)
    if params.density == "uniform":
        return params.s + (params.t - params.s) * u
    # Inverse CDF of the decreasing ramp: F(x) = 1 - ((t-x)/(t-s))^2.
    return params.t - (params.t - params.s) * np.sqrt(1.0 - u)


def sample_distortion_factors(
    params: DistortionParams, count: int, seed=None
) -> np.ndarray:
    """Draw ``count`` permanent fuzz factors f_w ∈ [1-t,1-s] ∪ [1+s,1+t]."""
    rng = as_generator(seed)
    magnitudes = sample_distortion_magnitudes(params, count, rng)
    signs = np.where(rng.random(count) < 0.5, -1.0, 1.0)
    return 1.0 + signs * magnitudes
