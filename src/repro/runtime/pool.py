"""The bounded compute pool an event loop offloads blocking work onto.

Extracted from ``repro/serve/pool.py`` so the service's executor sizing
goes through the same :mod:`repro.runtime.policy` as every other pool
(``REPRO_MAX_WORKERS`` now bounds serve threads too).  Threads — not
processes — because the serve sessions' statistic caches are shared
in-memory state and the noise kernels release the GIL inside NumPy.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Future, ThreadPoolExecutor

from repro.runtime.policy import resolve_workers, serve_compute_workers

__all__ = ["ComputePool"]


class ComputePool:
    """A bounded :class:`~concurrent.futures.ThreadPoolExecutor` wrapper.

    ``workers`` resolves through the runtime policy: an explicit
    positive count wins; otherwise :func:`serve_compute_workers` (small,
    CPU-derived, env-capped).
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        thread_name_prefix: str = "repro-compute",
    ):
        self.workers = resolve_workers(workers, fallback=serve_compute_workers)
        self.executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix=thread_name_prefix
        )

    def __repr__(self) -> str:
        return f"ComputePool(workers={self.workers})"

    def submit(self, fn, /, *args) -> Future:
        """Queue blocking work on the pool (sync callers)."""
        return self.executor.submit(fn, *args)

    async def run(self, fn, /, *args):
        """Run blocking work on the pool, off the running event loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self.executor, fn, *args)

    def shutdown(self, *, wait: bool = True) -> None:
        """Finish queued compute and release the worker threads."""
        self.executor.shutdown(wait=wait)
