"""Task placement drivers: serial, thread pool, and crash-tolerant processes.

A driver runs a :class:`~repro.runtime.taskset.TaskSet` and returns the
results in item order.  Because every task is self-seeded and the
context is rebuilt from a spec, *which* driver ran a task — and whether
it ran once or was retried after a worker crash — cannot change the
result.

- :class:`SerialDriver` — the reference implementation: build the
  context once, loop.  Every other driver must be bit-identical to it.
- :class:`ThreadDriver` — a thread pool sharing one in-process context
  (the repo's contexts are lock-guarded; the NumPy kernels release the
  GIL for large draws).
- :class:`ProcessDriver` — true parallelism: items are sharded
  round-robin across worker processes, each of which builds its context
  **once** and streams its shard through the task function.  A worker
  that *crashes* (OOM-killed, segfaulted, ``kill -9``) does not abort
  the run: the shards whose results never came back are resubmitted to
  a fresh pool — bounded by ``max_shard_retries`` — and because tasks
  are self-seeded the retried results are bit-identical to what the
  dead worker would have produced.  Ordinary task *exceptions* are not
  retried; they propagate (a deterministic error would just fail again).
"""

from __future__ import annotations

import os
import signal
from collections.abc import Callable
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from functools import partial
from typing import Protocol, runtime_checkable

from repro.runtime.taskset import ContextSpec, TaskSet

__all__ = [
    "Driver",
    "DriverStats",
    "SerialDriver",
    "ThreadDriver",
    "ProcessDriver",
    "run_sharded",
    "KILL_TASK_ENV",
]

# Deterministic fault injection for crash-recovery tests: when set to
# "<marker-path>" (or "<marker-path>@<task-index>"), a process-pool
# worker about to run the matching task atomically creates the marker
# file and SIGKILLs itself — exactly once across the whole pool, because
# O_EXCL arbitrates which worker wins.  Never consulted on the inline
# (serial/thread) paths, so it cannot kill the parent process.
KILL_TASK_ENV = "REPRO_RUNTIME_KILL_TASK"


@dataclass
class DriverStats:
    """What the last :meth:`ProcessDriver.run` had to do to finish.

    ``attempts`` counts submissions per item index (1 everywhere on a
    clean run); ``retried_tasks`` lists the indices that were
    resubmitted after a worker crash; ``shard_retries`` counts the
    resubmitted shards.  Crash-recovery tests read these to assert a
    crashed task was retried *exactly once*.
    """

    attempts: dict[int, int] = field(default_factory=dict)
    retried_tasks: tuple[int, ...] = ()
    shard_retries: int = 0


@runtime_checkable
class Driver(Protocol):
    """The placement protocol: ordered execution of a TaskSet."""

    name: str
    workers: int

    def run(self, taskset: TaskSet) -> list:
        """Run every task; results in item order."""
        ...


class SerialDriver:
    """Run every task in the calling thread against one built context."""

    name = "serial"
    workers = 1

    def run(self, taskset: TaskSet) -> list:
        if not taskset.items:
            return []
        context = taskset.context.build()
        return [taskset.fn(context, item) for item in taskset.items]

    def __repr__(self) -> str:
        return "SerialDriver()"


class ThreadDriver:
    """A thread pool over one shared in-process context."""

    name = "thread"

    def __init__(self, workers: int = 2):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def run(self, taskset: TaskSet) -> list:
        items = taskset.items
        if len(items) <= 1 or self.workers == 1:
            return SerialDriver().run(taskset)
        context = taskset.context.build()
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(partial(taskset.fn, context), items))

    def __repr__(self) -> str:
        return f"ThreadDriver(workers={self.workers})"


def _maybe_injected_crash(index: int) -> None:
    """Die here if the fault-injection env var targets this task.

    The marker file is created with ``O_EXCL`` so exactly one worker
    across the pool (and across retries — the marker persists) takes
    the hit; everyone else, including the retry of the killed shard,
    sees the marker and runs normally.
    """
    target = os.environ.get(KILL_TASK_ENV)
    if not target:
        return
    marker, _, wanted = target.partition("@")
    if wanted and int(wanted) != index:
        return
    try:
        descriptor = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return
    os.close(descriptor)
    os.kill(os.getpid(), signal.SIGKILL)


def _run_task_shard(make_context, context_args, fn, indexed_items):
    """Worker entry point: evaluate one shard against a rebuilt context.

    ``make_context(*context_args)`` builds (or fetches this process's
    cached) task context — a :class:`~repro.api.session.ReleaseSession`
    for sweeps, a plain picklable build context for sharded snapshot
    generation — and the shard streams through ``fn(context, item)``.
    """
    context = make_context(*context_args)
    results = []
    for index, item in indexed_items:
        _maybe_injected_crash(index)
        results.append((index, fn(context, item)))
    return results


class ProcessDriver:
    """Round-robin sharded process pool with bounded crash recovery.

    ``start_method`` picks the :mod:`multiprocessing` context (``None``
    uses the platform default — ``fork`` on Linux, which inherits the
    imported modules and makes worker start cheap).  Items are sharded
    round-robin so every worker gets an even slice in one submission,
    amortizing whatever the context factory costs across its whole
    shard.  With one item or one worker the map runs inline in the
    calling process, context built the same way, so callers get a
    single code path.

    **Crash recovery**: a dead worker poisons the whole
    :class:`~concurrent.futures.ProcessPoolExecutor`
    (:class:`BrokenProcessPool`), so shards whose futures never
    delivered are collected and resubmitted to a *fresh* pool.  Each
    round of resubmission consumes one of ``max_shard_retries``; a
    shard that dies again past the budget raises, because a task that
    kills its worker every time is a bug, not bad luck.  Retried tasks
    are bit-identical to their first attempt (self-seeded items,
    content-derived seeds), so recovery is invisible in the results.
    """

    name = "process"

    def __init__(
        self,
        workers: int = 2,
        start_method: str | None = None,
        *,
        max_shard_retries: int = 1,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.start_method = start_method
        self.max_shard_retries = max_shard_retries
        self.stats = DriverStats()

    def run(self, taskset: TaskSet) -> list:
        items = taskset.items
        self.stats = DriverStats()
        if not items:
            return []
        if len(items) == 1 or self.workers == 1:
            context = taskset.context.build()
            self.stats.attempts = {i: 1 for i in range(len(items))}
            return [taskset.fn(context, item) for item in items]
        import multiprocessing

        mp_context = multiprocessing.get_context(self.start_method)
        n_workers = min(self.workers, len(items))
        indexed = list(enumerate(items))
        pending = [indexed[offset::n_workers] for offset in range(n_workers)]
        results: list = [None] * len(items)
        retries_left = self.max_shard_retries
        while pending:
            for shard in pending:
                for index, _ in shard:
                    self.stats.attempts[index] = (
                        self.stats.attempts.get(index, 0) + 1
                    )
            crashed = []
            with ProcessPoolExecutor(
                max_workers=min(n_workers, len(pending)),
                mp_context=mp_context,
            ) as pool:
                submitted = [
                    (
                        shard,
                        pool.submit(
                            _run_task_shard,
                            taskset.context.make,
                            taskset.context.args,
                            taskset.fn,
                            shard,
                        ),
                    )
                    for shard in pending
                ]
                for shard, future in submitted:
                    try:
                        for index, result in future.result():
                            results[index] = result
                    except BrokenProcessPool:
                        crashed.append(shard)
            if crashed:
                if retries_left <= 0:
                    dead = sorted(i for shard in crashed for i, _ in shard)
                    raise RuntimeError(
                        f"worker process(es) crashed repeatedly; task(s) "
                        f"{dead} failed after "
                        f"{self.max_shard_retries + 1} attempt(s)"
                    )
                retries_left -= 1
                self.stats.shard_retries += len(crashed)
                self.stats.retried_tasks = tuple(
                    sorted(
                        set(self.stats.retried_tasks)
                        | {i for shard in crashed for i, _ in shard}
                    )
                )
            pending = crashed
        return results

    def __repr__(self) -> str:
        return f"ProcessDriver(workers={self.workers})"


def run_sharded(
    fn: Callable,
    items,
    *,
    workers: int,
    make_context: Callable | None = None,
    context_args: tuple = (),
    start_method: str | None = None,
) -> list:
    """Ordered ``fn(context, item)`` map over a crash-tolerant process pool.

    The process-parallel core shared by the sweep engine's
    :class:`~repro.engine.executors.ProcessExecutor` (whose context is
    a per-process rebuilt session) and the sharded snapshot builder
    (whose context is the picklable generation plan) — a thin wrapper
    that describes the call as a :class:`TaskSet` and hands it to a
    :class:`ProcessDriver`.
    """
    context = (
        ContextSpec(make=make_context, args=tuple(context_args))
        if make_context is not None
        else ContextSpec(args=tuple(context_args))
    )
    driver = ProcessDriver(workers=workers, start_method=start_method)
    return driver.run(TaskSet(fn=fn, items=tuple(items), context=context))
