"""The TaskSet abstraction: what runs, over what, against which context.

A :class:`TaskSet` is the unit of placement for the whole codebase —
sweep grids, sharded snapshot chunks, and ad-hoc process maps all
describe themselves as one: a module-level task function, an ordered
item list, a picklable :class:`ContextSpec` saying how each worker
obtains its evaluation context, and (optionally) per-item **content
keys** for claim/lease coordination.

Three invariants make placement irrelevant to results:

- **Task functions are module-level** callables of ``(context, item)``,
  picklable by reference, so a process driver can ship them.
- **Items carry their own derived seeds.**  Every stochastic item in
  this repo (a :class:`~repro.engine.plan.PointSpec`, a snapshot build
  chunk) embeds a seed derived from its *content*, never from its
  position in a schedule — :meth:`TaskSet.derive_seed` is the shared
  derivation for new task kinds.  Rerunning a task — on another worker,
  after a crash, on another machine — therefore reproduces its result
  bit for bit.
- **Context is a spec, not an object.**  :class:`ContextSpec` ships a
  module-level factory plus picklable args; each worker process builds
  (or process-caches) its own context, so nothing unpicklable ever
  crosses a process boundary.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

__all__ = ["ContextSpec", "TaskSet"]


def _context_passthrough(context=None):
    """Identity factory for callers shipping the (picklable) context itself.

    With no args — the default ``ContextSpec()`` — the built context is
    ``None``: tasks that need no context just ignore the argument.
    """
    return context


@dataclass(frozen=True)
class ContextSpec:
    """How a worker obtains the task context: a factory plus its args.

    ``make`` must be module-level (picklable by reference) and
    ``args`` a picklable tuple; ``build()`` is what runs — inline in
    the calling process for serial/thread drivers, once per worker
    process for process drivers (factories are free to cache per
    process, as :func:`repro.engine.executors._shard_session` does).
    """

    make: Callable = _context_passthrough
    args: tuple = ()

    def build(self):
        return self.make(*self.args)

    @classmethod
    def of_value(cls, context) -> "ContextSpec":
        """A spec wrapping an already-built context (shared in-process)."""
        return cls(make=_context_passthrough, args=(context,))


@dataclass(frozen=True, eq=False)
class TaskSet:
    """An ordered set of tasks: ``fn(context, item)`` per item.

    ``keys``, when given, aligns one content key per item — the
    addressing a :class:`~repro.runtime.claims.ClaimBoard` leases and a
    result store persists under.  Drivers return results **in item
    order** whatever order the work ran in.
    """

    fn: Callable
    items: tuple = ()
    context: ContextSpec = field(default_factory=ContextSpec)
    keys: tuple[str, ...] | None = None

    def __post_init__(self):
        object.__setattr__(self, "items", tuple(self.items))
        if self.keys is not None:
            keys = tuple(self.keys)
            if len(keys) != len(self.items):
                raise ValueError(
                    f"keys must align with items: {len(keys)} key(s) for "
                    f"{len(self.items)} item(s)"
                )
            object.__setattr__(self, "keys", keys)

    def __len__(self) -> int:
        return len(self.items)

    def key_of(self, index: int) -> str | None:
        """The content key of item ``index`` (``None`` when unkeyed)."""
        return None if self.keys is None else self.keys[index]

    def subset(self, indices: Sequence[int]) -> "TaskSet":
        """The same task over a subset of items (for retries/partitions)."""
        indices = list(indices)
        return TaskSet(
            fn=self.fn,
            items=tuple(self.items[i] for i in indices),
            context=self.context,
            keys=(
                None
                if self.keys is None
                else tuple(self.keys[i] for i in indices)
            ),
        )

    @staticmethod
    def derive_seed(base_seed: int, key: str) -> int:
        """A stable per-task seed from the run seed and the task's key.

        Content-derived, position-free: the same ``(base_seed, key)``
        yields the same 63-bit seed on every machine and Python build
        (SHA-256, not ``hash()``), so a retried or stolen task draws
        exactly the noise the original placement would have.
        """
        digest = hashlib.sha256(
            f"{base_seed}:{key}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") >> 1
