"""One runtime: task placement for sweeps, snapshot builds, and serve.

This package owns *where work runs* for the whole codebase.  The three
execution layers that grew independently — the sweep executors
(:mod:`repro.engine.executors`), the sharded snapshot build
(:func:`repro.data.workers.build_workforce_sharded`), and the release
service's compute pool (:mod:`repro.serve.pool`) — are all thin
adapters over four pieces:

- :mod:`~repro.runtime.taskset` — :class:`TaskSet`: content-keyed,
  self-seeded tasks plus a picklable context spec; the unit of
  placement.
- :mod:`~repro.runtime.drivers` — :class:`SerialDriver` /
  :class:`ThreadDriver` / :class:`ProcessDriver`: ordered, bit-identical
  execution at any worker count, with bounded crash recovery on the
  process path (a killed worker's shard is resubmitted, not fatal).
- :mod:`~repro.runtime.claims` — :class:`ClaimBoard`: optimistic lease
  files (TTL + owner id) over any storage backend, so N processes or
  machines draining one plan *partition* the grid; last-writer-wins
  result puts remain the correctness safety net.
- :mod:`~repro.runtime.policy` — the one worker-count policy
  (``default_workers`` / ``serve_compute_workers`` /
  ``REPRO_MAX_WORKERS``) every layer resolves through.
"""

from repro.runtime.claims import (
    CLAIMS_PREFIX,
    DEFAULT_LEASE_TTL_S,
    ClaimBoard,
    Lease,
    default_owner,
)
from repro.runtime.drivers import (
    KILL_TASK_ENV,
    Driver,
    DriverStats,
    ProcessDriver,
    SerialDriver,
    ThreadDriver,
    run_sharded,
)
from repro.runtime.policy import (
    MAX_WORKERS_ENV,
    default_workers,
    resolve_workers,
    serve_compute_workers,
    worker_cap,
)
from repro.runtime.pool import ComputePool
from repro.runtime.taskset import ContextSpec, TaskSet

__all__ = [
    "CLAIMS_PREFIX",
    "DEFAULT_LEASE_TTL_S",
    "ClaimBoard",
    "ComputePool",
    "ContextSpec",
    "Driver",
    "DriverStats",
    "KILL_TASK_ENV",
    "Lease",
    "MAX_WORKERS_ENV",
    "ProcessDriver",
    "SerialDriver",
    "TaskSet",
    "ThreadDriver",
    "default_owner",
    "default_workers",
    "resolve_workers",
    "run_sharded",
    "serve_compute_workers",
    "worker_cap",
]
