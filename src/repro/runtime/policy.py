"""The one worker-count policy for every execution layer.

Before this module existed, the three execution layers each resolved
worker counts on their own: the sweep executors used
``max(2, cpu_count)`` capped by ``REPRO_MAX_WORKERS``, the serve
compute pool used ``max(2, min(4, cpu_count))`` with *no* env cap, and
the sharded snapshot build defaulted to sequential with an uncapped
explicit ``--workers``.  Divergent policies mean a CI runner that sets
``REPRO_MAX_WORKERS=2`` still fans the serve pool out to four threads,
and nobody can answer "how many workers will this command use" without
reading three call sites.

Now every layer resolves through here:

- :func:`default_workers` — the sweep/build pool size: scales with the
  machine (floor of 2 so a bare ``--executor process`` always yields
  real parallelism), capped by :data:`MAX_WORKERS_ENV`.
- :func:`serve_compute_workers` — the serve compute-pool size: small
  and CPU-derived (enough to overlap noise draws with journal fsyncs
  without oversubscribing small machines), *also* capped by
  :data:`MAX_WORKERS_ENV` — the env var now bounds every pool the
  process creates.
- :func:`resolve_workers` — the shared "explicit wins" rule: a caller
  passing a positive count gets exactly that count (operators override
  policy); ``None`` or a non-positive count falls back to the given
  policy default.
"""

from __future__ import annotations

import os
from collections.abc import Callable

__all__ = [
    "MAX_WORKERS_ENV",
    "worker_cap",
    "default_workers",
    "serve_compute_workers",
    "resolve_workers",
]

# Caps the *derived* worker counts regardless of the machine's core
# count, so CI (and any shared box) can bound process/thread fan-out
# without touching code.  Explicitly requested counts are not capped:
# an operator typing --workers 8 outranks the environment.
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"


def worker_cap() -> int | None:
    """The :data:`MAX_WORKERS_ENV` cap, or ``None`` when unset.

    A cap below 1 is clamped to 1 (a pool always has at least one
    worker — "serial" is an executor choice, not a worker count).
    """
    override = os.environ.get(MAX_WORKERS_ENV, "").strip()
    if not override:
        return None
    try:
        cap = int(override)
    except ValueError:
        raise ValueError(
            f"{MAX_WORKERS_ENV} must be an integer, got {override!r}"
        ) from None
    return max(1, cap)


def _capped(workers: int) -> int:
    cap = worker_cap()
    return workers if cap is None else min(workers, cap)


def default_workers() -> int:
    """A sensible pool size for sweeps and sharded snapshot builds.

    Scales with ``os.cpu_count()`` — a 64-core sweep box gets 64
    workers, not a hard-coded 4 — with a floor of 2 so ``--executor
    process`` without a count always yields real parallelism.  The
    ``REPRO_MAX_WORKERS`` environment variable caps the result; a cap
    of 1 forces serial-in-process execution.
    """
    return _capped(max(2, os.cpu_count() or 2))


def serve_compute_workers() -> int:
    """The bounded compute-pool size for the release service.

    Enough threads to overlap noise draws with journal fsyncs without
    oversubscribing small CI machines, and — unlike the pre-runtime
    serve default — bounded by the same ``REPRO_MAX_WORKERS`` cap as
    every other pool.
    """
    return _capped(max(2, min(4, os.cpu_count() or 2)))


def resolve_workers(
    requested: int | None, *, fallback: Callable[[], int] = default_workers
) -> int:
    """Explicit wins, policy otherwise: the one resolution rule.

    A positive ``requested`` is returned verbatim (operator overrides
    are never silently capped); ``None`` or a non-positive count falls
    back to ``fallback()`` — pass :func:`serve_compute_workers` for the
    service pool, leave the default for sweep/build pools.
    """
    if requested is not None and requested > 0:
        return requested
    return fallback()
