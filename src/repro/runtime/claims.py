"""Optimistic claim markers: N drains of one plan partition the grid.

Before claims, two processes (or machines) draining the same sweep plan
against one shared result store both computed every missing point and
raced last-writer-wins on the puts — correct (same key ⇒ same bytes)
but wasteful: the fleet did N× the work.  A :class:`ClaimBoard` adds
the missing coordination primitive on top of any
:class:`~repro.storage.StorageBackend`:

- **claim-before-compute**: a drain that is about to compute a unit of
  work first tries to create its *lease file* (``claims/<k>.lease``)
  with an atomic conditional put
  (:meth:`~repro.storage.StorageBackend.put_if_absent`).  Exactly one
  drain wins; the others defer and poll the store for the winner's
  result instead of recomputing it.
- **TTL + owner id**: a lease records who took it and when.  A holder
  that crashes mid-compute never releases, so leases *expire*: once a
  lease is older than its TTL, any waiting drain may take it over
  (overwrite the lease and compute).
- **last-writer-wins stays the safety net**: claims are an
  optimization, never a correctness mechanism.  Two drains that both
  believe they hold a lease (an expiry race, a partitioned network, an
  unreadable lease file) both compute and both write — bit-identical
  bytes, exactly the pre-claim behavior.  Nothing ever *waits
  forever* on a lease: expiry bounds every stall.

Clock caveat: expiry compares the lease's ``acquired_at`` wall-clock
stamp against the *reader's* clock, so cross-machine takeover tolerates
clock skew up to the TTL.  Keep TTLs comfortably above both the unit
compute time and the fleet's clock skew.
"""

from __future__ import annotations

import json
import os
import secrets
import socket
import time
from dataclasses import dataclass

__all__ = [
    "DEFAULT_LEASE_TTL_S",
    "CLAIMS_PREFIX",
    "Lease",
    "ClaimBoard",
    "default_owner",
]

# Long enough that no healthy drain loses a lease mid-compute (grid
# units take seconds, not minutes), short enough that a crashed owner's
# work is reclaimed promptly.
DEFAULT_LEASE_TTL_S = 300.0

# Lease files live beside the payloads they guard, under their own
# prefix, so result listings (which filter on .json/.npz) never see
# them and `clear()` never deletes them out from under a live drain.
CLAIMS_PREFIX = "claims"

LEASE_SCHEMA_VERSION = 1


def default_owner() -> str:
    """A fleet-unique owner id: host, pid, and a random tail.

    The random tail disambiguates two boards in one process (each
    concurrent drain owns its own board) and pid reuse across restarts.
    """
    return f"{socket.gethostname()}:{os.getpid()}:{secrets.token_hex(4)}"


@dataclass(frozen=True)
class Lease:
    """One claim: who took it, when, and for how long."""

    owner: str
    acquired_at: float
    ttl_s: float

    def expired(self, now: float | None = None) -> bool:
        now = time.time() if now is None else now
        return now - self.acquired_at > self.ttl_s

    def to_json(self) -> bytes:
        return json.dumps(
            {
                "schema": LEASE_SCHEMA_VERSION,
                "owner": self.owner,
                "acquired_at": self.acquired_at,
                "ttl_s": self.ttl_s,
            },
            sort_keys=True,
        ).encode("utf-8")

    @classmethod
    def from_json(cls, raw: bytes) -> "Lease | None":
        """Parse a lease file; ``None`` for garbage (treated as expired).

        An unreadable lease means a writer died mid-put or the file was
        corrupted; either way the safe reading is "stale" — a waiting
        drain takes over and, at worst, duplicates work the safety net
        already tolerates.
        """
        try:
            payload = json.loads(raw.decode("utf-8"))
            return cls(
                owner=str(payload["owner"]),
                acquired_at=float(payload["acquired_at"]),
                ttl_s=float(payload["ttl_s"]),
            )
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            return None


class ClaimBoard:
    """Lease files over a storage backend: try-claim, inspect, release.

    One board per drain: the board's ``owner`` id is what lease files
    record, and :meth:`try_claim` is re-entrant for the same owner (a
    takeover round may re-claim keys this drain already holds).
    """

    def __init__(
        self,
        backend,
        *,
        owner: str | None = None,
        ttl_s: float | None = None,
        prefix: str = CLAIMS_PREFIX,
    ):
        self.backend = backend
        self.owner = owner if owner is not None else default_owner()
        self.ttl_s = DEFAULT_LEASE_TTL_S if ttl_s is None else float(ttl_s)
        self.prefix = prefix.strip("/")
        self._held: set[str] = set()

    def __repr__(self) -> str:
        return (
            f"ClaimBoard(owner={self.owner!r}, ttl_s={self.ttl_s}, "
            f"held={len(self._held)})"
        )

    def lease_key(self, key: str) -> str:
        """Where ``key``'s lease lives (two-level fan-out like payloads)."""
        fanout = key[:2] if len(key) > 2 else "_"
        return f"{self.prefix}/{fanout}/{key}.lease"

    def _fresh_lease(self) -> Lease:
        return Lease(
            owner=self.owner, acquired_at=time.time(), ttl_s=self.ttl_s
        )

    def holder(self, key: str) -> Lease | None:
        """The current lease on ``key``, or ``None`` (absent/unreadable).

        Reads are authoritative (:meth:`~repro.storage.StorageBackend.peek`
        bypasses any local cache): a stale cached lease would make a
        drain wait on an owner that already released.
        """
        raw = self.backend.peek(self.lease_key(key))
        return None if raw is None else Lease.from_json(raw)

    def try_claim(self, key: str) -> bool:
        """Claim ``key`` if unclaimed, expired, or already ours.

        The happy path is one atomic conditional create.  On conflict,
        an expired (or unreadable) lease is taken over by overwriting it
        and *reading back*: the read-back narrows — but cannot close —
        the window in which two drains take over simultaneously; the
        store's last-writer-wins semantics absorb whatever slips
        through.
        """
        lease_key = self.lease_key(key)
        mine = self._fresh_lease()
        if self.backend.put_if_absent(lease_key, mine.to_json()):
            self._held.add(key)
            return True
        current = self.holder(key)
        if current is not None and current.owner == self.owner:
            self._held.add(key)
            return True
        if current is not None and not current.expired():
            return False
        # Absent (released between our put and read), unreadable, or
        # expired: take over, then confirm the takeover stuck.
        self.backend.put_file(lease_key, mine.to_json())
        confirmed = self.holder(key)
        if confirmed is not None and confirmed.owner == self.owner:
            self._held.add(key)
            return True
        return False

    def release(self, key: str) -> bool:
        """Drop ``key``'s lease (done computing, or abandoning it)."""
        self._held.discard(key)
        return self.backend.delete(self.lease_key(key))

    def release_all(self) -> int:
        """Release every lease this board still holds; returns the count."""
        released = 0
        for key in sorted(self._held):
            released += bool(self.release(key))
        return released

    @property
    def held(self) -> frozenset[str]:
        """The keys this board currently believes it holds."""
        return frozenset(self._held)
