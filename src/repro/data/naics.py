"""NAICS industry sectors (2-digit level) with employment weights.

LODES tabulates employment by the twenty 2-digit NAICS sectors.  The
relative establishment frequencies and size multipliers here are rough
public-knowledge shapes (e.g. health care and manufacturing establishments
are larger on average; food service establishments are numerous but
small).  They only need to create realistic heterogeneity across sectors,
not match CBP exactly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Sector:
    """One 2-digit NAICS sector.

    ``share`` is the relative frequency of establishments in the sector;
    ``size_multiplier`` scales the establishment-size distribution;
    ``public_share`` is the probability an establishment is publicly owned;
    ``college_share`` and ``female_share`` steer worker education and sex
    mixes so that establishment *shape* varies by sector.
    """

    code: str
    name: str
    share: float
    size_multiplier: float
    public_share: float
    college_share: float
    female_share: float


NAICS_SECTORS: tuple[Sector, ...] = (
    Sector("11", "Agriculture, Forestry, Fishing", 0.020, 0.6, 0.01, 0.10, 0.28),
    Sector("21", "Mining, Quarrying, Oil and Gas", 0.005, 1.4, 0.01, 0.18, 0.14),
    Sector("22", "Utilities", 0.005, 2.2, 0.25, 0.30, 0.24),
    Sector("23", "Construction", 0.080, 0.7, 0.01, 0.12, 0.11),
    Sector("31-33", "Manufacturing", 0.050, 2.8, 0.01, 0.22, 0.29),
    Sector("42", "Wholesale Trade", 0.055, 1.1, 0.01, 0.22, 0.30),
    Sector("44-45", "Retail Trade", 0.110, 1.3, 0.01, 0.14, 0.49),
    Sector("48-49", "Transportation and Warehousing", 0.035, 1.6, 0.08, 0.13, 0.24),
    Sector("51", "Information", 0.015, 1.5, 0.02, 0.45, 0.40),
    Sector("52", "Finance and Insurance", 0.050, 1.2, 0.02, 0.48, 0.55),
    Sector("53", "Real Estate and Rental", 0.040, 0.6, 0.02, 0.28, 0.46),
    Sector("54", "Professional and Technical Services", 0.095, 0.8, 0.02, 0.60, 0.43),
    Sector("55", "Management of Companies", 0.008, 2.4, 0.00, 0.52, 0.45),
    Sector("56", "Administrative and Waste Services", 0.055, 1.2, 0.02, 0.15, 0.41),
    Sector("61", "Educational Services", 0.020, 3.0, 0.60, 0.55, 0.68),
    Sector("62", "Health Care and Social Assistance", 0.090, 2.6, 0.10, 0.40, 0.78),
    Sector("71", "Arts, Entertainment, and Recreation", 0.018, 1.0, 0.10, 0.25, 0.45),
    Sector("72", "Accommodation and Food Services", 0.090, 1.4, 0.01, 0.07, 0.52),
    Sector("81", "Other Services", 0.094, 0.5, 0.02, 0.16, 0.49),
    Sector("92", "Public Administration", 0.015, 2.0, 1.00, 0.35, 0.48),
)


def sector_codes() -> tuple[str, ...]:
    """Domain values for the ``naics`` attribute, in canonical order."""
    return tuple(sector.code for sector in NAICS_SECTORS)


def sector_shares() -> tuple[float, ...]:
    """Establishment-frequency weights, normalized to sum to 1."""
    total = sum(sector.share for sector in NAICS_SECTORS)
    return tuple(sector.share / total for sector in NAICS_SECTORS)


def sector_by_code(code: str) -> Sector:
    """Look up a sector by its NAICS code."""
    for sector in NAICS_SECTORS:
        if sector.code == code:
            return sector
    raise KeyError(f"unknown NAICS sector code {code!r}")
