"""Right-skewed establishment-size model.

The paper stresses that establishment-level employment is "highly right
skewed (has many large outlying values)" and that this skewness, combined
with cell sparsity, drives both the re-identification risk and the noise
cost (smooth-sensitivity noise scales with the largest establishment in a
cell; node-DP truncation drops the large establishments entirely).

We model sizes as a lognormal body with a Pareto tail.  With the default
parameters the mean is ≈ 20 jobs per establishment, matching the paper's
sample (10.9M jobs / 527k establishments ≈ 20.7), while the tail produces
establishments with thousands of employees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util import as_generator, check_fraction, check_positive


@dataclass(frozen=True)
class SizeModel:
    """Lognormal-body, Pareto-tail establishment-size distribution.

    A draw is lognormal(``log_mean``, ``log_sigma``) with probability
    ``1 - tail_probability`` and Pareto(``tail_minimum``, ``tail_alpha``)
    otherwise; all draws are rounded up to at least 1 and capped at
    ``max_size``.  ``multiplier`` rescales draws (used for per-sector size
    differences).
    """

    log_mean: float = 1.55
    log_sigma: float = 1.15
    tail_probability: float = 0.02
    tail_minimum: float = 120.0
    tail_alpha: float = 1.35
    max_size: int = 40_000

    def __post_init__(self):
        check_positive("log_sigma", self.log_sigma)
        check_fraction("tail_probability", self.tail_probability)
        check_positive("tail_minimum", self.tail_minimum)
        check_positive("tail_alpha", self.tail_alpha)
        if self.tail_alpha <= 1.0:
            raise ValueError(
                f"tail_alpha must exceed 1 for a finite mean, got {self.tail_alpha}"
            )
        check_positive("max_size", self.max_size)

    def mean(self) -> float:
        """Approximate mean establishment size (ignoring the cap)."""
        body = np.exp(self.log_mean + self.log_sigma**2 / 2)
        tail = self.tail_alpha * self.tail_minimum / (self.tail_alpha - 1)
        return (1 - self.tail_probability) * body + self.tail_probability * tail

    def sample(self, count: int, multipliers=1.0, seed=None) -> np.ndarray:
        """Draw ``count`` establishment sizes (integer, >= 1).

        ``multipliers`` is a scalar or per-establishment array of sector
        size multipliers applied before rounding.
        """
        rng = as_generator(seed)
        multipliers = np.broadcast_to(np.asarray(multipliers, dtype=np.float64), (count,))
        body = rng.lognormal(self.log_mean, self.log_sigma, size=count)
        tail = self.tail_minimum * rng.pareto(self.tail_alpha, size=count) + self.tail_minimum
        is_tail = rng.random(count) < self.tail_probability
        raw = np.where(is_tail, tail, body) * multipliers
        return np.clip(np.ceil(raw), 1, self.max_size).astype(np.int64)
