"""Top-level synthetic LODES generator.

``generate(SyntheticConfig(...))`` plans a geography, places
establishments in it (count ∝ place population), draws skewed sizes and
sector/ownership attributes, and then draws each establishment's
workforce.  One integer seed determines everything.

The default configuration targets ≈ 60k jobs in ≈ 3k establishments —
small enough for tests and benchmarks, large enough to exhibit the
sparsity and skew the paper's findings depend on.  Scale up with
``target_jobs``: workforces are drawn in establishment blocks of
``chunk_jobs`` jobs (per-chunk derived seeds, bounded transients), so
million-job economies build without a million-row noise matrix ever
existing at once.  Named configurations at several scales live in
:mod:`repro.scenarios`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import LODESDataset
from repro.data.geography import GeographyConfig, generate_geography
from repro.data.naics import NAICS_SECTORS, sector_shares
from repro.data.schema import worker_schema, workplace_schema
from repro.data.sizes import SizeModel
from repro.data.workers import draw_place_mixes, sample_workforce_chunked
from repro.db.table import Table
from repro.util import as_generator, check_positive, derive_seed


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs for the synthetic snapshot.

    ``target_jobs`` is approximate: establishment counts are planned so the
    expected total employment matches it, then realized sizes vary.

    ``chunk_jobs`` bounds the worker-draw transient: establishments are
    streamed in contiguous blocks of roughly this many jobs, each block
    drawn from its own derived seed, so national-scale economies build in
    bounded memory.  It is part of the config (and hence the snapshot
    fingerprint) because the chunk partition determines the noise streams;
    any config whose realized jobs fit a single chunk — in particular the
    default ≈60k-job economy — is bit-identical to the historical
    single-shot build.
    """

    target_jobs: int = 60_000
    seed: int = 20170514  # SIGMOD'17 opening day
    geography: GeographyConfig = field(default_factory=GeographyConfig)
    sizes: SizeModel = field(default_factory=SizeModel)
    # Exponent linking place population to establishment count; < 1 gives
    # big places slightly fewer establishments per capita.
    population_exponent: float = 0.95
    # Large enough that every historical configuration (up to the CLI's
    # 150k-job figures default, whose realized size is ≈190k) stays a
    # single chunk and therefore byte-identical to the pre-chunking
    # generator; million-job scenarios stream in 4+ bounded blocks.
    chunk_jobs: int = 250_000

    def __post_init__(self):
        check_positive("target_jobs", self.target_jobs)
        check_positive("population_exponent", self.population_exponent)
        check_positive("chunk_jobs", self.chunk_jobs)


def _plan_establishments_per_place(
    populations: np.ndarray,
    n_establishments: int,
    exponent: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Allocate establishments to places with weight population**exponent.

    Every place receives at least one establishment so that single-
    establishment cells (the paper's worst case for SDL attacks) exist.
    """
    weights = populations.astype(np.float64) ** exponent
    weights /= weights.sum()
    n_extra = max(0, n_establishments - len(populations))
    extra = rng.multinomial(n_extra, weights)
    return (extra + 1).astype(np.int64)


def _draw_establishment_blocks(
    blocks_of_place, per_place: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Uniform block per establishment, one grouped draw per place.

    Establishments arrive grouped by place (``np.repeat`` order), so the
    historical per-establishment ``rng.choice(blocks_of_place[p])`` loop
    is equivalent to one size-``per_place[p]`` integer draw per place —
    and because a size-k ``Generator.integers`` draw consumes the bit
    stream exactly like k scalar draws, the grouped form is bit-identical
    while doing O(places) Python work instead of O(establishments).
    """
    block_counts = np.array([len(blocks) for blocks in blocks_of_place])
    offsets = np.concatenate([[0], np.cumsum(block_counts)])
    flat_blocks = np.fromiter(
        (block for blocks in blocks_of_place for block in blocks),
        dtype=np.int64,
        count=int(offsets[-1]),
    )
    out = np.empty(int(per_place.sum()), dtype=np.int64)
    position = 0
    for place, count in enumerate(per_place):
        count = int(count)
        indices = rng.integers(0, block_counts[place], size=count)
        out[position : position + count] = flat_blocks[offsets[place] + indices]
        position += count
    return out


@dataclass
class EconomyPlan:
    """Everything about a snapshot except the worker-attribute draws.

    The deterministic prologue of generation — geography, establishment
    placement, public attributes, realized sizes, per-place demographic
    mixes — plus ``worker_rng``, the ``derive_seed(seed, "workers")``
    stream advanced past the place-mix draw and therefore positioned
    exactly where chunk 0 of the workforce sampling continues it.

    The plan is what the sharded snapshot builder ships to worker
    processes: it is a pure function of ``config`` (and cheap, O(places
    + establishments)), while the O(jobs) workforce columns it seeds are
    drawn chunk-by-chunk wherever they are needed.  ``np.random.Generator``
    pickles with its exact bit-stream position, so a shipped plan draws
    chunk 0 bit-identically to the in-process path.
    """

    config: SyntheticConfig
    geography: object
    workplace: Table
    sizes: np.ndarray
    place_mixes: object
    worker_rng: np.random.Generator

    @property
    def n_establishments(self) -> int:
        return self.workplace.n_rows

    @property
    def n_jobs(self) -> int:
        """Realized jobs (the sum of realized establishment sizes)."""
        return int(self.sizes.sum())

    @property
    def sector(self) -> np.ndarray:
        return self.workplace.column("naics")

    @property
    def estab_place(self) -> np.ndarray:
        return self.workplace.column("place")


def plan_economy(config: SyntheticConfig | None = None) -> EconomyPlan:
    """Plan a snapshot: every deterministic draw up to the workforce.

    Consumes the ``geography``/``establishments``/``sizes``/``workers``
    derived streams in exactly the order :func:`generate` always has, so
    a plan followed by chunked workforce sampling is bit-identical to
    the historical single-pass generator.
    """
    # REPRO_FORBID_GENERATE turns any regeneration into a hard error.
    # CI's remote-store replay sets it to prove a wiped local cache was
    # served entirely from the shared remote backend.
    if os.environ.get("REPRO_FORBID_GENERATE"):
        raise RuntimeError(
            "economy generation is forbidden (REPRO_FORBID_GENERATE is "
            "set): this run was expected to be served entirely from the "
            "snapshot store"
        )
    config = config or SyntheticConfig()
    geo_rng = as_generator(derive_seed(config.seed, "geography"))
    geography = generate_geography(config.geography, geo_rng)

    plan_rng = as_generator(derive_seed(config.seed, "establishments"))
    mean_size = config.sizes.mean()
    n_establishments = max(
        geography.n_places, int(round(config.target_jobs / mean_size))
    )
    per_place = _plan_establishments_per_place(
        geography.place_populations,
        n_establishments,
        config.population_exponent,
        plan_rng,
    )
    n_establishments = int(per_place.sum())
    estab_place = np.repeat(
        np.arange(geography.n_places, dtype=np.int64), per_place
    )

    # Sector, ownership, block per establishment.
    sector = plan_rng.choice(
        len(NAICS_SECTORS), size=n_establishments, p=sector_shares()
    ).astype(np.int64)
    public_share = np.array([s.public_share for s in NAICS_SECTORS])
    ownership = (
        plan_rng.random(n_establishments) < public_share[sector]
    ).astype(np.int64)
    block = _draw_establishment_blocks(
        geography.blocks_of_place, per_place, plan_rng
    )

    size_rng = as_generator(derive_seed(config.seed, "sizes"))
    multipliers = np.array([s.size_multiplier for s in NAICS_SECTORS])[sector]
    sizes = config.sizes.sample(n_establishments, multipliers, size_rng)

    workplace = Table(
        workplace_schema(geography),
        {
            "naics": sector,
            "ownership": ownership,
            "state": geography.place_state[estab_place],
            "county": geography.place_county[estab_place],
            "place": estab_place,
            "block": block,
        },
    )

    worker_rng = as_generator(derive_seed(config.seed, "workers"))
    place_mixes = draw_place_mixes(geography.n_places, worker_rng)
    return EconomyPlan(
        config=config,
        geography=geography,
        workplace=workplace,
        sizes=sizes,
        place_mixes=place_mixes,
        worker_rng=worker_rng,
    )


def generate(config: SyntheticConfig | None = None) -> LODESDataset:
    """Generate a full synthetic LODES snapshot from ``config``."""
    plan = plan_economy(config)
    config = plan.config
    worker_columns = sample_workforce_chunked(
        plan.sizes,
        plan.sector,
        plan.estab_place,
        plan.place_mixes,
        plan.worker_rng,
        base_seed=config.seed,
        chunk_jobs=config.chunk_jobs,
    )
    worker = Table(worker_schema(), worker_columns)

    n_jobs = worker.n_rows
    job_worker = np.arange(n_jobs, dtype=np.int64)
    job_establishment = np.repeat(
        np.arange(plan.n_establishments, dtype=np.int64), plan.sizes
    )

    return LODESDataset(
        worker=worker,
        workplace=plan.workplace,
        job_worker=job_worker,
        job_establishment=job_establishment,
        geography=plan.geography,
    )
