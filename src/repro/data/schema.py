"""LODES table schemas (Sec 3.1 of the paper).

Worker attributes: age, sex, race, ethnicity, education.
Workplace attributes: NAICS sector, ownership, and geography down to the
Census block.  The geography attribute domains depend on the generated
:class:`repro.data.geography.Geography`, so the workplace schema is built
per dataset; the worker schema is fixed.
"""

from __future__ import annotations

from repro.data.geography import Geography
from repro.data.naics import sector_codes
from repro.db.schema import Attribute, Schema

AGE_VALUES: tuple[str, ...] = (
    "14-18",
    "19-21",
    "22-24",
    "25-34",
    "35-44",
    "45-54",
    "55-64",
    "65+",
)
SEX_VALUES: tuple[str, ...] = ("M", "F")
RACE_VALUES: tuple[str, ...] = (
    "White",
    "Black",
    "AmericanIndian",
    "Asian",
    "PacificIslander",
    "TwoOrMoreRaces",
    "OtherRace",
)
ETHNICITY_VALUES: tuple[str, ...] = ("NotHispanic", "Hispanic")
EDUCATION_VALUES: tuple[str, ...] = (
    "LessThanHS",
    "HighSchool",
    "SomeCollege",
    "BachelorsOrHigher",
)
OWNERSHIP_VALUES: tuple[str, ...] = ("Private", "Public")

WORKER_ATTRS: tuple[str, ...] = ("age", "sex", "race", "ethnicity", "education")
WORKPLACE_ATTRS: tuple[str, ...] = (
    "naics",
    "ownership",
    "state",
    "county",
    "place",
    "block",
)


def worker_schema() -> Schema:
    """The fixed Worker table schema."""
    return Schema(
        [
            Attribute("age", AGE_VALUES),
            Attribute("sex", SEX_VALUES),
            Attribute("race", RACE_VALUES),
            Attribute("ethnicity", ETHNICITY_VALUES),
            Attribute("education", EDUCATION_VALUES),
        ]
    )


def workplace_schema(geography: Geography) -> Schema:
    """The Workplace table schema for a concrete geography."""
    return Schema(
        [
            Attribute("naics", sector_codes()),
            Attribute("ownership", OWNERSHIP_VALUES),
            Attribute("state", geography.state_names),
            Attribute("county", geography.county_names),
            Attribute("place", geography.place_names),
            Attribute("block", geography.block_names),
        ]
    )
