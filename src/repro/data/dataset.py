"""The LODESDataset container tying the three tables together.

A :class:`LODESDataset` holds the Worker, Workplace and Job tables, the
geography they were generated against, and convenience accessors used
throughout the experiments: the WorkerFull join, establishment sizes, and
place populations for stratified reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.geography import Geography, stratum_codes_of_populations
from repro.db.join import WorkerFull, join_worker_full
from repro.db.table import Table


@dataclass
class LODESDataset:
    """A synthetic LODES snapshot.

    ``worker`` has one row per employed individual; ``workplace`` one row
    per establishment; jobs pair them by row index (each worker holds
    exactly one job, as the paper assumes).
    """

    worker: Table
    workplace: Table
    job_worker: np.ndarray
    job_establishment: np.ndarray
    geography: Geography
    _worker_full: WorkerFull | None = field(default=None, repr=False)

    @property
    def n_jobs(self) -> int:
        return len(self.job_worker)

    @property
    def n_establishments(self) -> int:
        return self.workplace.n_rows

    @property
    def n_workers(self) -> int:
        return self.worker.n_rows

    def worker_full(self) -> WorkerFull:
        """The universal relation Worker ⋈ Job ⋈ Workplace (cached)."""
        if self._worker_full is None:
            self._worker_full = join_worker_full(
                self.worker, self.workplace, self.job_worker, self.job_establishment
            )
        return self._worker_full

    def establishment_sizes(self) -> np.ndarray:
        """Total employment per establishment, aligned to Workplace rows."""
        return np.bincount(
            self.job_establishment, minlength=self.n_establishments
        ).astype(np.int64)

    def place_of_establishment(self) -> np.ndarray:
        """Place code per establishment (codes into the place domain)."""
        return self.workplace.column("place")

    def place_population(self, place_code: int) -> int:
        """2010-Census-style total population of place ``place_code``."""
        return int(self.geography.place_populations[place_code])

    def place_stratum_codes(self) -> np.ndarray:
        """Stratum index per place code (see ``PLACE_STRATA``)."""
        return stratum_codes_of_populations(self.geography.place_populations)

    def summary(self) -> dict[str, float]:
        """Headline statistics (for logging and sanity tests)."""
        sizes = self.establishment_sizes()
        return {
            "n_jobs": float(self.n_jobs),
            "n_establishments": float(self.n_establishments),
            "n_places": float(self.geography.n_places),
            "mean_establishment_size": float(sizes.mean()) if sizes.size else 0.0,
            "max_establishment_size": float(sizes.max()) if sizes.size else 0.0,
        }
