"""Worker-attribute sampling.

Worker attributes are drawn per establishment so that each establishment
has a distinctive workforce *shape* (the thing Definition 4.3 protects):
education and sex mixes depend on the establishment's NAICS sector, while
race and ethnicity mixes vary by place (drawn once per place from a
Dirichlet around national shares).  Age is drawn from a common national
profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.data.naics import NAICS_SECTORS
from repro.data.schema import (
    AGE_VALUES,
    EDUCATION_VALUES,
    ETHNICITY_VALUES,
    RACE_VALUES,
)
from repro.util import as_generator, derive_seed

# Column order of the dicts returned by the workforce samplers (matches
# the worker schema attribute order).
WORKER_COLUMNS: tuple[str, ...] = ("age", "sex", "race", "ethnicity", "education")

# National age profile over AGE_VALUES (roughly the LODES age mix).
AGE_PROFILE = np.array([0.04, 0.06, 0.07, 0.24, 0.22, 0.20, 0.13, 0.04])

# National race profile over RACE_VALUES.
RACE_PROFILE = np.array([0.68, 0.13, 0.01, 0.07, 0.003, 0.027, 0.08])

# National Hispanic share (ETHNICITY_VALUES = NotHispanic, Hispanic).
HISPANIC_SHARE = 0.17

# Concentration of the per-place Dirichlet around the national profiles;
# lower = more geographic heterogeneity.
PLACE_CONCENTRATION = 60.0


def education_profile(college_share: float) -> np.ndarray:
    """Education distribution over EDUCATION_VALUES given a college share.

    The non-college mass is split between the three lower levels with
    fixed proportions, so sectors only differ in how college-heavy they
    are (enough to give establishments distinct shapes).
    """
    non_college = 1.0 - college_share
    return np.array(
        [0.22 * non_college, 0.45 * non_college, 0.33 * non_college, college_share]
    )


@dataclass(frozen=True)
class PlaceMixes:
    """Per-place race and ethnicity distributions (rows align to places)."""

    race: np.ndarray
    hispanic_share: np.ndarray


def draw_place_mixes(n_places: int, seed=None) -> PlaceMixes:
    """Draw per-place race/ethnicity mixes around the national profile."""
    rng = as_generator(seed)
    race = rng.dirichlet(RACE_PROFILE * PLACE_CONCENTRATION, size=n_places)
    hispanic = rng.beta(
        HISPANIC_SHARE * PLACE_CONCENTRATION,
        (1 - HISPANIC_SHARE) * PLACE_CONCENTRATION,
        size=n_places,
    )
    return PlaceMixes(race=race, hispanic_share=hispanic)


def sample_workforce(
    size: int,
    sector_index: int,
    place_index: int,
    place_mixes: PlaceMixes,
    rng: np.random.Generator,
) -> dict[str, np.ndarray]:
    """Draw attribute code arrays for the ``size`` workers of one establishment.

    Returns a dict of column name to int64 code array, keyed to the worker
    schema attribute order in :mod:`repro.data.schema`.
    """
    sector = NAICS_SECTORS[sector_index]
    age = rng.choice(len(AGE_VALUES), size=size, p=AGE_PROFILE)
    sex = (rng.random(size) < sector.female_share).astype(np.int64)  # 1 == F
    race = rng.choice(len(RACE_VALUES), size=size, p=place_mixes.race[place_index])
    ethnicity = (
        rng.random(size) < place_mixes.hispanic_share[place_index]
    ).astype(np.int64)
    education = rng.choice(
        len(EDUCATION_VALUES), size=size, p=education_profile(sector.college_share)
    )
    return {
        "age": age.astype(np.int64),
        "sex": sex,
        "race": race.astype(np.int64),
        "ethnicity": ethnicity,
        "education": education.astype(np.int64),
    }


def sample_workforce_batch(
    sizes: np.ndarray,
    sector_indices: np.ndarray,
    place_indices: np.ndarray,
    place_mixes: PlaceMixes,
    rng: np.random.Generator,
) -> dict[str, np.ndarray]:
    """Vectorized draw of worker attributes for all establishments at once.

    ``sizes[i]`` workers are drawn for establishment ``i`` with sector
    ``sector_indices[i]`` and place ``place_indices[i]``; rows of the
    returned columns are ordered establishment-by-establishment (matching
    ``np.repeat(np.arange(len(sizes)), sizes)``).
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    total = int(sizes.sum())
    job_sector = np.repeat(sector_indices, sizes)
    job_place = np.repeat(place_indices, sizes)

    age = rng.choice(len(AGE_VALUES), size=total, p=AGE_PROFILE).astype(np.int64)

    female_share = np.array([s.female_share for s in NAICS_SECTORS])
    sex = (rng.random(total) < female_share[job_sector]).astype(np.int64)

    # Race: inverse-CDF draw against each job's place-specific categorical.
    race_cdf = np.cumsum(place_mixes.race, axis=1)
    race = (
        rng.random(total)[:, None] > race_cdf[job_place]
    ).sum(axis=1).astype(np.int64)

    ethnicity = (
        rng.random(total) < place_mixes.hispanic_share[job_place]
    ).astype(np.int64)

    college_share = np.array([s.college_share for s in NAICS_SECTORS])
    edu_profiles = np.stack([education_profile(c) for c in college_share])
    edu_cdf = np.cumsum(edu_profiles, axis=1)
    education = (
        rng.random(total)[:, None] > edu_cdf[job_sector]
    ).sum(axis=1).astype(np.int64)

    return {
        "age": age,
        "sex": sex,
        "race": race,
        "ethnicity": ethnicity,
        "education": education,
    }


def chunk_ranges(sizes: np.ndarray, chunk_jobs: int) -> list[tuple[int, int]]:
    """Partition establishments into contiguous blocks of ~``chunk_jobs`` jobs.

    An establishment whose jobs start before a chunk boundary belongs
    entirely to that chunk, so a block can overshoot ``chunk_jobs`` by at
    most one establishment's size.  The partition depends only on
    ``sizes`` and ``chunk_jobs`` — it is what makes chunked generation a
    pure function of the config.
    """
    if chunk_jobs < 1:
        raise ValueError(f"chunk_jobs must be >= 1, got {chunk_jobs}")
    sizes = np.asarray(sizes, dtype=np.int64)
    if sizes.size == 0:
        return []
    starts = np.cumsum(sizes) - sizes  # job offset where each establishment begins
    chunk_of = starts // chunk_jobs
    # Establishments larger than chunk_jobs can leave gaps in the chunk
    # numbering; renumber consecutively while keeping the grouping.
    boundaries = np.flatnonzero(np.diff(chunk_of)) + 1
    edges = [0, *boundaries.tolist(), len(sizes)]
    return [(edges[i], edges[i + 1]) for i in range(len(edges) - 1)]


def chunk_generator(
    index: int, rng: np.random.Generator, base_seed: int
) -> np.random.Generator:
    """The noise stream chunk ``index`` draws from.

    Chunk 0 continues ``rng`` — the stream the single-shot path has
    always used — so single-chunk configs stay bit-identical to the
    historical generator; later chunks get independent derived streams.
    Shared by the sequential and sharded builders, which is what makes
    them byte-for-byte interchangeable.
    """
    if index == 0:
        return rng
    return as_generator(derive_seed(base_seed, f"workers:chunk:{index}"))


def sample_workforce_chunked(
    sizes: np.ndarray,
    sector_indices: np.ndarray,
    place_indices: np.ndarray,
    place_mixes: PlaceMixes,
    rng: np.random.Generator,
    *,
    base_seed: int,
    chunk_jobs: int,
) -> dict[str, np.ndarray]:
    """Streaming variant of :func:`sample_workforce_batch` in bounded memory.

    Establishments are processed in contiguous blocks of roughly
    ``chunk_jobs`` jobs (:func:`chunk_ranges`); each block's columns are
    written into preallocated output arrays, so the per-draw transient
    (the ``(jobs, values)`` inverse-CDF buffers) is bounded by the chunk
    size no matter how large the economy is.

    Seeding: chunk 0 continues ``rng`` — the stream the single-shot path
    has always used — so any config whose realized jobs fit one chunk
    produces *bit-identical* columns to the historical
    :func:`sample_workforce_batch` call.  Later chunks draw from
    independent streams derived as
    ``derive_seed(base_seed, "workers:chunk:{c}")``, so a million-job
    build never has to materialize one giant draw to stay deterministic.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    ranges = chunk_ranges(sizes, chunk_jobs)
    if len(ranges) <= 1:
        return sample_workforce_batch(
            sizes, sector_indices, place_indices, place_mixes, rng
        )

    total = int(sizes.sum())
    columns = {name: np.empty(total, dtype=np.int64) for name in WORKER_COLUMNS}
    offset = 0
    for index, (lo, hi) in enumerate(ranges):
        chunk_rng = chunk_generator(index, rng, base_seed)
        chunk = sample_workforce_batch(
            sizes[lo:hi],
            sector_indices[lo:hi],
            place_indices[lo:hi],
            place_mixes,
            chunk_rng,
        )
        n_chunk_jobs = chunk["age"].shape[0]
        for name in WORKER_COLUMNS:
            columns[name][offset : offset + n_chunk_jobs] = chunk[name]
        offset += n_chunk_jobs
    return columns


# -- sharded (process-parallel) builds ---------------------------------

# File names of the job-indexed link arrays, as laid out by the snapshot
# store; the sharded builder writes them chunk-by-chunk alongside the
# worker columns so no O(jobs) array ever materializes in the parent.
JOB_ARRAYS: tuple[str, ...] = ("job_worker", "job_establishment")


@dataclass(frozen=True)
class _ShardedBuildContext:
    """Everything a build worker needs, picklable in one piece.

    Shipped once per worker shard by :func:`repro.runtime.run_sharded`:
    the O(establishments) plan arrays, the per-place mixes, the advanced
    chunk-0 generator (pickled with its exact bit-stream position) and
    the target ``.npy`` paths the chunk slices land in.
    """

    sizes: np.ndarray
    sector_indices: np.ndarray
    place_indices: np.ndarray
    place_mixes: PlaceMixes
    rng0: np.random.Generator
    base_seed: int
    paths: dict  # column/link name -> str path of a preallocated .npy


def _write_chunk(context: _ShardedBuildContext, item) -> int:
    """Build-worker task: draw one chunk and write its job slices.

    Each chunk owns the disjoint job range ``[job_lo, job_hi)``, so
    concurrent workers write non-overlapping slices of the shared
    ``.npy`` files — opened as ``mmap_mode="r+"`` views of the arrays
    the parent preallocated with :func:`np.lib.format.open_memmap`.
    """
    index, lo, hi, job_lo, job_hi = item
    rng = chunk_generator(index, context.rng0, context.base_seed)
    chunk = sample_workforce_batch(
        context.sizes[lo:hi],
        context.sector_indices[lo:hi],
        context.place_indices[lo:hi],
        context.place_mixes,
        rng,
    )
    chunk["job_worker"] = np.arange(job_lo, job_hi, dtype=np.int64)
    chunk["job_establishment"] = np.repeat(
        np.arange(lo, hi, dtype=np.int64), context.sizes[lo:hi]
    )
    for name, values in chunk.items():
        out = np.load(context.paths[name], mmap_mode="r+")
        out[job_lo:job_hi] = values
        out.flush()
        del out
    return job_hi - job_lo


def build_workforce_sharded(
    sizes: np.ndarray,
    sector_indices: np.ndarray,
    place_indices: np.ndarray,
    place_mixes: PlaceMixes,
    rng: np.random.Generator,
    *,
    base_seed: int,
    chunk_jobs: int,
    paths: dict[str, Path | str],
    workers: int = 1,
    start_method: str | None = None,
) -> int:
    """Write the workforce directly into ``.npy`` files, chunks in parallel.

    The sharded counterpart of :func:`sample_workforce_chunked` for
    snapshot *persistence*: instead of assembling in-memory columns, the
    five worker columns plus the two job link arrays are preallocated on
    disk via :func:`np.lib.format.open_memmap` and each chunk's slice is
    drawn and written by a process-pool task (``workers=1`` runs the
    same tasks inline).  Chunks are independently seeded through
    :func:`chunk_generator`, so the files are **byte-identical** to what
    ``np.save`` of the sequential build produces, whatever the worker
    count or scheduling.  Returns the total number of jobs written.

    ``paths`` maps every :data:`WORKER_COLUMNS` name and both
    :data:`JOB_ARRAYS` names to its target file (typically a snapshot
    store's staging directory).
    """
    missing = [n for n in (*WORKER_COLUMNS, *JOB_ARRAYS) if n not in paths]
    if missing:
        raise ValueError(f"paths is missing targets for {missing}")
    sizes = np.asarray(sizes, dtype=np.int64)
    ranges = chunk_ranges(sizes, chunk_jobs)
    job_edges = np.concatenate([[0], np.cumsum(sizes)])
    items = [
        (index, lo, hi, int(job_edges[lo]), int(job_edges[hi]))
        for index, (lo, hi) in enumerate(ranges)
    ]
    total = int(sizes.sum())
    str_paths = {name: str(path) for name, path in paths.items()}
    for name in (*WORKER_COLUMNS, *JOB_ARRAYS):
        # Preallocate (and write the header of) every target file; the
        # chunk tasks only fill disjoint slices.
        out = np.lib.format.open_memmap(
            str_paths[name], mode="w+", dtype=np.int64, shape=(total,)
        )
        out.flush()
        del out
    context = _ShardedBuildContext(
        sizes=sizes,
        sector_indices=np.asarray(sector_indices, dtype=np.int64),
        place_indices=np.asarray(place_indices, dtype=np.int64),
        place_mixes=place_mixes,
        rng0=rng,
        base_seed=base_seed,
        paths=str_paths,
    )
    from repro.runtime import run_sharded

    written = run_sharded(
        _write_chunk,
        items,
        workers=workers,
        context_args=(context,),
        start_method=start_method,
    )
    return int(sum(written))
