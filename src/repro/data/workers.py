"""Worker-attribute sampling.

Worker attributes are drawn per establishment so that each establishment
has a distinctive workforce *shape* (the thing Definition 4.3 protects):
education and sex mixes depend on the establishment's NAICS sector, while
race and ethnicity mixes vary by place (drawn once per place from a
Dirichlet around national shares).  Age is drawn from a common national
profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.naics import NAICS_SECTORS
from repro.data.schema import (
    AGE_VALUES,
    EDUCATION_VALUES,
    ETHNICITY_VALUES,
    RACE_VALUES,
)
from repro.util import as_generator, derive_seed

# Column order of the dicts returned by the workforce samplers (matches
# the worker schema attribute order).
WORKER_COLUMNS: tuple[str, ...] = ("age", "sex", "race", "ethnicity", "education")

# National age profile over AGE_VALUES (roughly the LODES age mix).
AGE_PROFILE = np.array([0.04, 0.06, 0.07, 0.24, 0.22, 0.20, 0.13, 0.04])

# National race profile over RACE_VALUES.
RACE_PROFILE = np.array([0.68, 0.13, 0.01, 0.07, 0.003, 0.027, 0.08])

# National Hispanic share (ETHNICITY_VALUES = NotHispanic, Hispanic).
HISPANIC_SHARE = 0.17

# Concentration of the per-place Dirichlet around the national profiles;
# lower = more geographic heterogeneity.
PLACE_CONCENTRATION = 60.0


def education_profile(college_share: float) -> np.ndarray:
    """Education distribution over EDUCATION_VALUES given a college share.

    The non-college mass is split between the three lower levels with
    fixed proportions, so sectors only differ in how college-heavy they
    are (enough to give establishments distinct shapes).
    """
    non_college = 1.0 - college_share
    return np.array(
        [0.22 * non_college, 0.45 * non_college, 0.33 * non_college, college_share]
    )


@dataclass(frozen=True)
class PlaceMixes:
    """Per-place race and ethnicity distributions (rows align to places)."""

    race: np.ndarray
    hispanic_share: np.ndarray


def draw_place_mixes(n_places: int, seed=None) -> PlaceMixes:
    """Draw per-place race/ethnicity mixes around the national profile."""
    rng = as_generator(seed)
    race = rng.dirichlet(RACE_PROFILE * PLACE_CONCENTRATION, size=n_places)
    hispanic = rng.beta(
        HISPANIC_SHARE * PLACE_CONCENTRATION,
        (1 - HISPANIC_SHARE) * PLACE_CONCENTRATION,
        size=n_places,
    )
    return PlaceMixes(race=race, hispanic_share=hispanic)


def sample_workforce(
    size: int,
    sector_index: int,
    place_index: int,
    place_mixes: PlaceMixes,
    rng: np.random.Generator,
) -> dict[str, np.ndarray]:
    """Draw attribute code arrays for the ``size`` workers of one establishment.

    Returns a dict of column name to int64 code array, keyed to the worker
    schema attribute order in :mod:`repro.data.schema`.
    """
    sector = NAICS_SECTORS[sector_index]
    age = rng.choice(len(AGE_VALUES), size=size, p=AGE_PROFILE)
    sex = (rng.random(size) < sector.female_share).astype(np.int64)  # 1 == F
    race = rng.choice(len(RACE_VALUES), size=size, p=place_mixes.race[place_index])
    ethnicity = (
        rng.random(size) < place_mixes.hispanic_share[place_index]
    ).astype(np.int64)
    education = rng.choice(
        len(EDUCATION_VALUES), size=size, p=education_profile(sector.college_share)
    )
    return {
        "age": age.astype(np.int64),
        "sex": sex,
        "race": race.astype(np.int64),
        "ethnicity": ethnicity,
        "education": education.astype(np.int64),
    }


def sample_workforce_batch(
    sizes: np.ndarray,
    sector_indices: np.ndarray,
    place_indices: np.ndarray,
    place_mixes: PlaceMixes,
    rng: np.random.Generator,
) -> dict[str, np.ndarray]:
    """Vectorized draw of worker attributes for all establishments at once.

    ``sizes[i]`` workers are drawn for establishment ``i`` with sector
    ``sector_indices[i]`` and place ``place_indices[i]``; rows of the
    returned columns are ordered establishment-by-establishment (matching
    ``np.repeat(np.arange(len(sizes)), sizes)``).
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    total = int(sizes.sum())
    job_sector = np.repeat(sector_indices, sizes)
    job_place = np.repeat(place_indices, sizes)

    age = rng.choice(len(AGE_VALUES), size=total, p=AGE_PROFILE).astype(np.int64)

    female_share = np.array([s.female_share for s in NAICS_SECTORS])
    sex = (rng.random(total) < female_share[job_sector]).astype(np.int64)

    # Race: inverse-CDF draw against each job's place-specific categorical.
    race_cdf = np.cumsum(place_mixes.race, axis=1)
    race = (
        rng.random(total)[:, None] > race_cdf[job_place]
    ).sum(axis=1).astype(np.int64)

    ethnicity = (
        rng.random(total) < place_mixes.hispanic_share[job_place]
    ).astype(np.int64)

    college_share = np.array([s.college_share for s in NAICS_SECTORS])
    edu_profiles = np.stack([education_profile(c) for c in college_share])
    edu_cdf = np.cumsum(edu_profiles, axis=1)
    education = (
        rng.random(total)[:, None] > edu_cdf[job_sector]
    ).sum(axis=1).astype(np.int64)

    return {
        "age": age,
        "sex": sex,
        "race": race,
        "ethnicity": ethnicity,
        "education": education,
    }


def chunk_ranges(sizes: np.ndarray, chunk_jobs: int) -> list[tuple[int, int]]:
    """Partition establishments into contiguous blocks of ~``chunk_jobs`` jobs.

    An establishment whose jobs start before a chunk boundary belongs
    entirely to that chunk, so a block can overshoot ``chunk_jobs`` by at
    most one establishment's size.  The partition depends only on
    ``sizes`` and ``chunk_jobs`` — it is what makes chunked generation a
    pure function of the config.
    """
    if chunk_jobs < 1:
        raise ValueError(f"chunk_jobs must be >= 1, got {chunk_jobs}")
    sizes = np.asarray(sizes, dtype=np.int64)
    if sizes.size == 0:
        return []
    starts = np.cumsum(sizes) - sizes  # job offset where each establishment begins
    chunk_of = starts // chunk_jobs
    # Establishments larger than chunk_jobs can leave gaps in the chunk
    # numbering; renumber consecutively while keeping the grouping.
    boundaries = np.flatnonzero(np.diff(chunk_of)) + 1
    edges = [0, *boundaries.tolist(), len(sizes)]
    return [(edges[i], edges[i + 1]) for i in range(len(edges) - 1)]


def sample_workforce_chunked(
    sizes: np.ndarray,
    sector_indices: np.ndarray,
    place_indices: np.ndarray,
    place_mixes: PlaceMixes,
    rng: np.random.Generator,
    *,
    base_seed: int,
    chunk_jobs: int,
) -> dict[str, np.ndarray]:
    """Streaming variant of :func:`sample_workforce_batch` in bounded memory.

    Establishments are processed in contiguous blocks of roughly
    ``chunk_jobs`` jobs (:func:`chunk_ranges`); each block's columns are
    written into preallocated output arrays, so the per-draw transient
    (the ``(jobs, values)`` inverse-CDF buffers) is bounded by the chunk
    size no matter how large the economy is.

    Seeding: chunk 0 continues ``rng`` — the stream the single-shot path
    has always used — so any config whose realized jobs fit one chunk
    produces *bit-identical* columns to the historical
    :func:`sample_workforce_batch` call.  Later chunks draw from
    independent streams derived as
    ``derive_seed(base_seed, "workers:chunk:{c}")``, so a million-job
    build never has to materialize one giant draw to stay deterministic.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    ranges = chunk_ranges(sizes, chunk_jobs)
    if len(ranges) <= 1:
        return sample_workforce_batch(
            sizes, sector_indices, place_indices, place_mixes, rng
        )

    total = int(sizes.sum())
    columns = {name: np.empty(total, dtype=np.int64) for name in WORKER_COLUMNS}
    offset = 0
    for index, (lo, hi) in enumerate(ranges):
        chunk_rng = (
            rng
            if index == 0
            else as_generator(derive_seed(base_seed, f"workers:chunk:{index}"))
        )
        chunk = sample_workforce_batch(
            sizes[lo:hi],
            sector_indices[lo:hi],
            place_indices[lo:hi],
            place_mixes,
            chunk_rng,
        )
        n_chunk_jobs = chunk["age"].shape[0]
        for name in WORKER_COLUMNS:
            columns[name][offset : offset + n_chunk_jobs] = chunk[name]
        offset += n_chunk_jobs
    return columns
