"""Synthetic Census geography: states, counties, places, blocks.

The paper stratifies every figure by Census-place total population
(P0010001 from the 2010 Decennial Census) into four strata: <100,
100–10k, 10k–100k, and ≥100k.  The generator therefore plans places
stratum-by-stratum so all four strata are populated, then draws each
place's population log-uniformly within its stratum band.

Geography is hierarchical (state → county → place → block) like real
Census geography; establishments attach to a place and a block within it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util import as_generator, check_positive

# The paper's four place-population strata, as (label, low, high) with
# high exclusive.  Order matters: stratum index = position here.
PLACE_STRATA: tuple[tuple[str, int, int], ...] = (
    ("0 <= pop < 100", 0, 100),
    ("100 <= pop < 10k", 100, 10_000),
    ("10k <= pop < 100k", 10_000, 100_000),
    ("pop >= 100k", 100_000, 10_000_000),
)


@dataclass(frozen=True)
class GeographyConfig:
    """Controls how many places fall in each population stratum.

    ``places_per_stratum`` lists the number of places planned per stratum
    (aligned with :data:`PLACE_STRATA`).  ``scale`` multiplies all counts,
    so a single knob grows the geography proportionally.  Block counts per
    place grow with population.
    """

    n_states: int = 3
    counties_per_state: int = 4
    places_per_stratum: tuple[int, int, int, int] = (8, 24, 10, 3)
    scale: float = 1.0
    max_population: int = 2_500_000

    def planned_places(self) -> list[int]:
        """Number of places per stratum after applying ``scale``."""
        check_positive("scale", self.scale)
        return [max(1, round(count * self.scale)) for count in self.places_per_stratum]


@dataclass(frozen=True)
class Geography:
    """A realized synthetic geography.

    Arrays are aligned by place index:  ``place_names[i]`` has population
    ``place_populations[i]``, sits in state ``place_state[i]`` and county
    ``place_county[i]`` (codes into ``state_names`` / ``county_names``),
    and contains blocks ``blocks_of_place[i]`` (list of block-name
    indices into ``block_names``).
    """

    state_names: tuple[str, ...]
    county_names: tuple[str, ...]
    place_names: tuple[str, ...]
    block_names: tuple[str, ...]
    place_state: np.ndarray
    place_county: np.ndarray
    place_populations: np.ndarray
    blocks_of_place: tuple[tuple[int, ...], ...] = field(repr=False)

    @property
    def n_places(self) -> int:
        return len(self.place_names)

    def place_stratum(self, place_code: int) -> int:
        """Stratum index (into PLACE_STRATA) of place ``place_code``."""
        return stratum_of_population(int(self.place_populations[place_code]))


def stratum_of_population(population: int) -> int:
    """Map a place population to its stratum index in :data:`PLACE_STRATA`."""
    for index, (_, low, high) in enumerate(PLACE_STRATA):
        if low <= population < high:
            return index
    return len(PLACE_STRATA) - 1


# Lower edges of strata 1..n: a population's stratum is the number of
# edges at or below it, which is what np.digitize counts.
_STRATUM_EDGES = np.array([low for _, low, _ in PLACE_STRATA[1:]], dtype=np.int64)


def stratum_codes_of_populations(populations) -> np.ndarray:
    """Vectorized :func:`stratum_of_population` over a population array.

    Populations at or beyond the last stratum's upper bound land in the
    last stratum, matching the scalar function's fall-through.
    """
    populations = np.asarray(populations)
    return np.digitize(populations, _STRATUM_EDGES).astype(np.int64)


def geography_payload(geography: Geography) -> dict:
    """``geography`` as a JSON-serializable dict (snapshot persistence)."""
    return {
        "state_names": list(geography.state_names),
        "county_names": list(geography.county_names),
        "place_names": list(geography.place_names),
        "block_names": list(geography.block_names),
        "place_state": geography.place_state.tolist(),
        "place_county": geography.place_county.tolist(),
        "place_populations": geography.place_populations.tolist(),
        "blocks_of_place": [list(blocks) for blocks in geography.blocks_of_place],
    }


def geography_from_payload(payload: dict) -> Geography:
    """Rebuild a :class:`Geography` from :func:`geography_payload` output."""
    return Geography(
        state_names=tuple(payload["state_names"]),
        county_names=tuple(payload["county_names"]),
        place_names=tuple(payload["place_names"]),
        block_names=tuple(payload["block_names"]),
        place_state=np.array(payload["place_state"], dtype=np.int64),
        place_county=np.array(payload["place_county"], dtype=np.int64),
        place_populations=np.array(payload["place_populations"], dtype=np.int64),
        blocks_of_place=tuple(
            tuple(blocks) for blocks in payload["blocks_of_place"]
        ),
    )


def generate_geography(config: GeographyConfig, seed=None) -> Geography:
    """Draw a synthetic geography according to ``config``.

    Place populations are log-uniform within each stratum band, clipped at
    ``config.max_population``.  Places are assigned round-robin to
    counties so every county has places of varied size; blocks per place
    scale with log-population.
    """
    rng = as_generator(seed)
    state_names = tuple(f"S{i + 1:02d}" for i in range(config.n_states))
    county_names = tuple(
        f"{state}-C{j + 1:02d}"
        for state in state_names
        for j in range(config.counties_per_state)
    )
    n_counties = len(county_names)

    populations: list[int] = []
    for stratum_index, n_places in enumerate(config.planned_places()):
        _, low, high = PLACE_STRATA[stratum_index]
        low = max(low, 10)  # a "place" with population < 10 is degenerate
        high = min(high, config.max_population)
        log_draws = rng.uniform(np.log(low), np.log(high), size=n_places)
        populations.extend(int(round(np.exp(x))) for x in log_draws)

    order = rng.permutation(len(populations))
    place_populations = np.array([populations[i] for i in order], dtype=np.int64)

    n_places = len(place_populations)
    place_county = np.arange(n_places, dtype=np.int64) % n_counties
    place_state = place_county // config.counties_per_state
    place_names = tuple(
        f"{county_names[place_county[i]]}-P{i + 1:03d}" for i in range(n_places)
    )

    block_names: list[str] = []
    blocks_of_place: list[tuple[int, ...]] = []
    for i in range(n_places):
        n_blocks = max(1, int(np.log10(place_populations[i] + 1) * 2))
        indices = []
        for b in range(n_blocks):
            indices.append(len(block_names))
            block_names.append(f"{place_names[i]}-B{b + 1:02d}")
        blocks_of_place.append(tuple(indices))

    return Geography(
        state_names=state_names,
        county_names=county_names,
        place_names=place_names,
        block_names=tuple(block_names),
        place_state=place_state,
        place_county=place_county,
        place_populations=place_populations,
        blocks_of_place=tuple(blocks_of_place),
    )
