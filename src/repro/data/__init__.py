"""Synthetic LODES-style employer-employee microdata.

The paper's experiments run on a confidential 3-state LEHD/LODES snapshot
(10.9M jobs, ~527k establishments).  That file cannot leave the Census
Bureau, so this package generates a synthetic equivalent that preserves
the structural properties the evaluation depends on:

1. the documented LODES schema — Workplace (NAICS sector, ownership,
   state/county/place/block geography), Worker (age, sex, race, ethnicity,
   education) and Job tables (Sec 3.1);
2. heavy right skew in establishment sizes (lognormal body + Pareto tail,
   mean ≈ 20.7 jobs per establishment to match the paper's sample);
3. sparse marginal cells: many places × 20 sectors × ownership, with most
   cells containing zero or a handful of establishments;
4. place populations spanning the paper's four strata (<100, 100–10k,
   10k–100k, ≥100k), used to stratify every figure.
"""

from repro.data.dataset import LODESDataset
from repro.data.generator import SyntheticConfig, generate
from repro.data.geography import Geography, GeographyConfig, generate_geography
from repro.data.io import load_dataset, save_dataset
from repro.data.panel import (
    LODESPanel,
    PanelConfig,
    PanelPlan,
    generate_panel,
    panel_year,
    plan_panel,
)
from repro.data.naics import NAICS_SECTORS, sector_codes
from repro.data.schema import (
    OWNERSHIP_VALUES,
    WORKER_ATTRS,
    WORKPLACE_ATTRS,
    worker_schema,
    workplace_schema,
)
from repro.data.sizes import SizeModel

__all__ = [
    "LODESDataset",
    "SyntheticConfig",
    "generate",
    "LODESPanel",
    "PanelConfig",
    "PanelPlan",
    "generate_panel",
    "panel_year",
    "plan_panel",
    "save_dataset",
    "load_dataset",
    "Geography",
    "GeographyConfig",
    "generate_geography",
    "NAICS_SECTORS",
    "sector_codes",
    "OWNERSHIP_VALUES",
    "WORKER_ATTRS",
    "WORKPLACE_ATTRS",
    "worker_schema",
    "workplace_schema",
    "SizeModel",
]
