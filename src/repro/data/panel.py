"""Multi-year LODES panels (annual snapshots of an evolving economy).

LODES is published as an annual cross-section (Sec 3 of the paper), and
the production SDL system assigns each establishment a *time-invariant*
distortion factor precisely so that repeated publication does not let
users average the noise away [Abowd et al., 2012].  This module generates
a panel of snapshots against one establishment registry so that property
— and its contrast with per-year independent DP noise, which averages
down but composes in ε — can be measured.

Model: year 0 is a standard synthetic snapshot.  Each later year,
surviving establishments' sizes evolve by a lognormal growth shock,
a fraction die (size 0 thereafter), and a cohort of pre-registered
births activates.  Public workplace attributes are fixed in the
registry; workforces are redrawn each year from the same sector/place
mixes.

Generation is split the same way single-snapshot generation is split
into :func:`~repro.data.generator.plan_economy` + the chunked workforce
draw: :func:`plan_panel` produces the cheap deterministic prologue (the
registry, the size evolution matrix, the place mixes — O(places +
establishments), no O(jobs) arrays), and :func:`panel_year` draws one
year's workforce from the plan.  The split is what lets the snapshot
store persist and shard panel years independently — a year's draw
depends only on the plan and the year index, never on other years'
workforces — while :func:`generate_panel` (plan + every year, in order)
remains bit-identical to the historical single-pass implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import LODESDataset
from repro.data.generator import SyntheticConfig, plan_economy
from repro.data.schema import worker_schema
from repro.data.workers import draw_place_mixes, sample_workforce_chunked
from repro.db.table import Table
from repro.util import as_generator, check_nonnegative, check_positive, derive_seed


@dataclass(frozen=True)
class PanelConfig:
    """Panel evolution parameters on top of a base snapshot config."""

    base: SyntheticConfig = field(default_factory=SyntheticConfig)
    n_years: int = 5
    growth_sigma: float = 0.15
    death_rate: float = 0.03
    birth_rate: float = 0.03

    def __post_init__(self):
        check_positive("n_years", self.n_years)
        check_nonnegative("growth_sigma", self.growth_sigma)
        if not (0.0 <= self.death_rate < 1.0):
            raise ValueError(f"death_rate must lie in [0, 1), got {self.death_rate}")
        if not (0.0 <= self.birth_rate < 1.0):
            raise ValueError(f"birth_rate must lie in [0, 1), got {self.birth_rate}")


@dataclass
class LODESPanel:
    """A registry of establishments with per-year sizes and snapshots.

    ``workplace`` covers every establishment that ever exists (public
    attributes are constant); ``sizes_by_year[t, w]`` is establishment
    w's employment in year t (0 = not active); ``years[t]`` is the
    year-t snapshot sharing the registry's Workplace table, so
    establishment row indices are comparable across years.
    """

    workplace: Table
    geography: object
    sizes_by_year: np.ndarray
    years: tuple[LODESDataset, ...]

    @property
    def n_years(self) -> int:
        return len(self.years)

    @property
    def n_establishments(self) -> int:
        return self.workplace.n_rows

    def year(self, t: int) -> LODESDataset:
        return self.years[t]

    def active_mask(self, t: int) -> np.ndarray:
        return self.sizes_by_year[t] > 0

    def survivors(self) -> np.ndarray:
        """Establishments active in every year (stable panel members)."""
        return (self.sizes_by_year > 0).all(axis=0)


@dataclass
class PanelPlan:
    """The deterministic panel prologue: registry, size matrix, mixes.

    Everything a year's workforce draw needs except the draw itself —
    O(places + establishments) memory, no O(jobs) arrays — so the plan
    is cheap to rebuild and cheap to hold while years are generated,
    persisted or sharded one at a time.
    """

    config: PanelConfig
    workplace: Table
    geography: object
    sizes_by_year: np.ndarray
    place_mixes: np.ndarray

    @property
    def n_years(self) -> int:
        return int(self.sizes_by_year.shape[0])

    @property
    def n_establishments(self) -> int:
        return self.workplace.n_rows

    def year_seed(self, year: int):
        """The seed of year ``year``'s workforce stream.

        Derived per year from the base seed, so years' streams are
        disjoint and a single year can be (re)drawn — or sharded across
        a process pool — without touching any other year's stream.
        """
        return derive_seed(self.config.base.seed, f"panel-workers-{year}")


def _registry_with_births(
    workplace: Table, n_births: int, rng: np.random.Generator
) -> Table:
    """Extend the Workplace table with pre-registered birth cohorts.

    Births copy the public attributes of randomly chosen existing
    establishments (same place/sector/ownership mix as the economy).
    """
    if n_births == 0:
        return workplace
    templates = rng.integers(0, workplace.n_rows, size=n_births)
    births = workplace.take(templates)
    return workplace.concat(births)


def plan_panel(config: PanelConfig | None = None) -> PanelPlan:
    """Plan a panel: registry with births, size evolution, place mixes.

    Uses :func:`plan_economy` for year 0 — the planned workplace table
    and sizes are exactly what ``generate(config.base)`` would embed,
    so the plan (and everything drawn from it) is bit-identical to
    planning off a materialized base snapshot, without ever drawing the
    base year's O(jobs) workforce.
    """
    config = config or PanelConfig()
    base_plan = plan_economy(config.base)
    rng = as_generator(derive_seed(config.base.seed, "panel"))

    n_initial = base_plan.n_establishments
    births_per_year = round(config.birth_rate * n_initial)
    n_birth_total = births_per_year * (config.n_years - 1)
    workplace = _registry_with_births(base_plan.workplace, n_birth_total, rng)
    n_registry = workplace.n_rows

    birth_year = np.zeros(n_registry, dtype=np.int64)
    for year in range(1, config.n_years):
        start = n_initial + (year - 1) * births_per_year
        birth_year[start : start + births_per_year] = year

    size_model = config.base.sizes
    sizes_by_year = np.zeros((config.n_years, n_registry), dtype=np.int64)
    sizes_by_year[0, :n_initial] = base_plan.sizes

    for year in range(1, config.n_years):
        previous = sizes_by_year[year - 1]
        alive = previous > 0
        survives = alive & (rng.random(n_registry) >= config.death_rate)
        grown = np.zeros(n_registry, dtype=np.int64)
        shocks = rng.lognormal(0.0, config.growth_sigma, size=n_registry)
        grown[survives] = np.maximum(
            1, np.round(previous[survives] * shocks[survives])
        ).astype(np.int64)
        newborn = birth_year == year
        if newborn.any():
            multipliers = np.ones(int(newborn.sum()))
            grown[newborn] = size_model.sample(
                int(newborn.sum()), multipliers, rng
            )
        sizes_by_year[year] = grown

    place_mixes = draw_place_mixes(
        base_plan.geography.n_places,
        as_generator(derive_seed(config.base.seed, "panel-mixes")),
    )
    return PanelPlan(
        config=config,
        workplace=workplace,
        geography=base_plan.geography,
        sizes_by_year=sizes_by_year,
        place_mixes=place_mixes,
    )


def panel_year(plan: PanelPlan, year: int) -> LODESDataset:
    """Draw year ``year``'s snapshot from a panel plan."""
    sizes = plan.sizes_by_year[year]
    sector = plan.workplace.column("naics")
    place = plan.workplace.column("place")
    # Per-year draws stream through the chunked sampler so a scaled
    # panel never materializes a full-year inverse-CDF transient.
    # Chunk 0 continues the year's historical stream — any year
    # fitting one chunk (every current config) is bit-identical to
    # the old direct sample_workforce_batch call — and later chunks
    # derive from the year seed, keeping years' streams disjoint.
    year_seed = plan.year_seed(year)
    columns = sample_workforce_chunked(
        sizes,
        sector,
        place,
        plan.place_mixes,
        as_generator(year_seed),
        base_seed=year_seed,
        chunk_jobs=plan.config.base.chunk_jobs,
    )
    worker = Table(worker_schema(), columns)
    n_jobs = worker.n_rows
    return LODESDataset(
        worker=worker,
        workplace=plan.workplace,
        job_worker=np.arange(n_jobs, dtype=np.int64),
        job_establishment=np.repeat(
            np.arange(plan.n_establishments, dtype=np.int64), sizes
        ),
        geography=plan.geography,
    )


def generate_panel(config: PanelConfig | None = None) -> LODESPanel:
    """Generate an ``n_years`` panel from ``config``."""
    plan = plan_panel(config)
    years = tuple(panel_year(plan, year) for year in range(plan.n_years))
    return LODESPanel(
        workplace=plan.workplace,
        geography=plan.geography,
        sizes_by_year=plan.sizes_by_year,
        years=years,
    )
