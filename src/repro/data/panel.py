"""Multi-year LODES panels (annual snapshots of an evolving economy).

LODES is published as an annual cross-section (Sec 3 of the paper), and
the production SDL system assigns each establishment a *time-invariant*
distortion factor precisely so that repeated publication does not let
users average the noise away [Abowd et al., 2012].  This module generates
a panel of snapshots against one establishment registry so that property
— and its contrast with per-year independent DP noise, which averages
down but composes in ε — can be measured.

Model: year 0 is a standard synthetic snapshot.  Each later year,
surviving establishments' sizes evolve by a lognormal growth shock,
a fraction die (size 0 thereafter), and a cohort of pre-registered
births activates.  Public workplace attributes are fixed in the
registry; workforces are redrawn each year from the same sector/place
mixes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import LODESDataset
from repro.data.generator import SyntheticConfig, generate
from repro.data.schema import worker_schema
from repro.data.sizes import SizeModel
from repro.data.workers import draw_place_mixes, sample_workforce_chunked
from repro.db.table import Table
from repro.util import as_generator, check_nonnegative, check_positive, derive_seed


@dataclass(frozen=True)
class PanelConfig:
    """Panel evolution parameters on top of a base snapshot config."""

    base: SyntheticConfig = field(default_factory=SyntheticConfig)
    n_years: int = 5
    growth_sigma: float = 0.15
    death_rate: float = 0.03
    birth_rate: float = 0.03

    def __post_init__(self):
        check_positive("n_years", self.n_years)
        check_nonnegative("growth_sigma", self.growth_sigma)
        if not (0.0 <= self.death_rate < 1.0):
            raise ValueError(f"death_rate must lie in [0, 1), got {self.death_rate}")
        if not (0.0 <= self.birth_rate < 1.0):
            raise ValueError(f"birth_rate must lie in [0, 1), got {self.birth_rate}")


@dataclass
class LODESPanel:
    """A registry of establishments with per-year sizes and snapshots.

    ``workplace`` covers every establishment that ever exists (public
    attributes are constant); ``sizes_by_year[t, w]`` is establishment
    w's employment in year t (0 = not active); ``years[t]`` is the
    year-t snapshot sharing the registry's Workplace table, so
    establishment row indices are comparable across years.
    """

    workplace: Table
    geography: object
    sizes_by_year: np.ndarray
    years: tuple[LODESDataset, ...]

    @property
    def n_years(self) -> int:
        return len(self.years)

    @property
    def n_establishments(self) -> int:
        return self.workplace.n_rows

    def year(self, t: int) -> LODESDataset:
        return self.years[t]

    def active_mask(self, t: int) -> np.ndarray:
        return self.sizes_by_year[t] > 0

    def survivors(self) -> np.ndarray:
        """Establishments active in every year (stable panel members)."""
        return (self.sizes_by_year > 0).all(axis=0)


def _registry_with_births(
    initial: LODESDataset, n_births: int, rng: np.random.Generator
) -> Table:
    """Extend the Workplace table with pre-registered birth cohorts.

    Births copy the public attributes of randomly chosen existing
    establishments (same place/sector/ownership mix as the economy).
    """
    if n_births == 0:
        return initial.workplace
    templates = rng.integers(0, initial.workplace.n_rows, size=n_births)
    births = initial.workplace.take(templates)
    return initial.workplace.concat(births)


def generate_panel(config: PanelConfig | None = None) -> LODESPanel:
    """Generate an ``n_years`` panel from ``config``."""
    config = config or PanelConfig()
    initial = generate(config.base)
    rng = as_generator(derive_seed(config.base.seed, "panel"))

    n_initial = initial.n_establishments
    births_per_year = round(config.birth_rate * n_initial)
    n_birth_total = births_per_year * (config.n_years - 1)
    workplace = _registry_with_births(initial, n_birth_total, rng)
    n_registry = workplace.n_rows

    birth_year = np.zeros(n_registry, dtype=np.int64)
    for year in range(1, config.n_years):
        start = n_initial + (year - 1) * births_per_year
        birth_year[start : start + births_per_year] = year

    size_model = config.base.sizes
    sizes_by_year = np.zeros((config.n_years, n_registry), dtype=np.int64)
    sizes_by_year[0, :n_initial] = initial.establishment_sizes()

    for year in range(1, config.n_years):
        previous = sizes_by_year[year - 1]
        alive = previous > 0
        survives = alive & (rng.random(n_registry) >= config.death_rate)
        grown = np.zeros(n_registry, dtype=np.int64)
        shocks = rng.lognormal(0.0, config.growth_sigma, size=n_registry)
        grown[survives] = np.maximum(
            1, np.round(previous[survives] * shocks[survives])
        ).astype(np.int64)
        newborn = birth_year == year
        if newborn.any():
            multipliers = np.ones(int(newborn.sum()))
            grown[newborn] = size_model.sample(
                int(newborn.sum()), multipliers, rng
            )
        sizes_by_year[year] = grown

    # Build the per-year snapshots against the shared registry.
    place_mixes = draw_place_mixes(
        initial.geography.n_places,
        as_generator(derive_seed(config.base.seed, "panel-mixes")),
    )
    sector = workplace.column("naics")
    place = workplace.column("place")
    schema = worker_schema()
    years = []
    for year in range(config.n_years):
        sizes = sizes_by_year[year]
        # Per-year draws stream through the chunked sampler so a scaled
        # panel never materializes a full-year inverse-CDF transient.
        # Chunk 0 continues the year's historical stream — any year
        # fitting one chunk (every current config) is bit-identical to
        # the old direct sample_workforce_batch call — and later chunks
        # derive from the year seed, keeping years' streams disjoint.
        year_seed = derive_seed(config.base.seed, f"panel-workers-{year}")
        columns = sample_workforce_chunked(
            sizes,
            sector,
            place,
            place_mixes,
            as_generator(year_seed),
            base_seed=year_seed,
            chunk_jobs=config.base.chunk_jobs,
        )
        worker = Table(schema, columns)
        n_jobs = worker.n_rows
        years.append(
            LODESDataset(
                worker=worker,
                workplace=workplace,
                job_worker=np.arange(n_jobs, dtype=np.int64),
                job_establishment=np.repeat(
                    np.arange(n_registry, dtype=np.int64), sizes
                ),
                geography=initial.geography,
            )
        )

    return LODESPanel(
        workplace=workplace,
        geography=initial.geography,
        sizes_by_year=sizes_by_year,
        years=tuple(years),
    )
