"""Saving and loading LODES snapshots as CSV plus a JSON sidecar.

The public LODES files ship as flat CSVs; this module mirrors that
layout so a generated synthetic snapshot can be inspected with standard
tools and reloaded bit-for-bit:

- ``worker.csv`` / ``workplace.csv`` — decoded attribute values, one row
  per record;
- ``job.csv`` — the (worker_row, establishment_row) pairs;
- ``geography.json`` — the place/county/state structure with populations
  and blocks (needed to rebuild the workplace schema and the strata).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.data.dataset import LODESDataset
from repro.data.geography import geography_from_payload, geography_payload
from repro.data.schema import worker_schema, workplace_schema
from repro.db.table import Table

WORKER_FILE = "worker.csv"
WORKPLACE_FILE = "workplace.csv"
JOB_FILE = "job.csv"
GEOGRAPHY_FILE = "geography.json"


def _write_table(table: Table, path: Path) -> None:
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.schema.names)
        columns = [table.decoded(name) for name in table.schema.names]
        for row in zip(*columns):
            writer.writerow(row)


def _read_table(schema, path: Path) -> Table:
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if tuple(header) != schema.names:
            raise ValueError(
                f"{path.name} header {header} does not match schema "
                f"{schema.names}"
            )
        records = [dict(zip(header, row)) for row in reader]
    return Table.from_records(schema, records)


def save_dataset(dataset: LODESDataset, directory) -> Path:
    """Write the snapshot to ``directory`` (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    _write_table(dataset.worker, directory / WORKER_FILE)
    _write_table(dataset.workplace, directory / WORKPLACE_FILE)

    with (directory / JOB_FILE).open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["worker_row", "establishment_row"])
        for worker_row, establishment_row in zip(
            dataset.job_worker, dataset.job_establishment
        ):
            writer.writerow([int(worker_row), int(establishment_row)])

    (directory / GEOGRAPHY_FILE).write_text(
        json.dumps(geography_payload(dataset.geography), indent=2),
        encoding="utf-8",
    )
    return directory


def load_dataset(directory) -> LODESDataset:
    """Reload a snapshot written by :func:`save_dataset`."""
    directory = Path(directory)
    payload = json.loads((directory / GEOGRAPHY_FILE).read_text(encoding="utf-8"))
    geography = geography_from_payload(payload)

    worker = _read_table(worker_schema(), directory / WORKER_FILE)
    workplace = _read_table(workplace_schema(geography), directory / WORKPLACE_FILE)

    job_worker, job_establishment = [], []
    with (directory / JOB_FILE).open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if header != ["worker_row", "establishment_row"]:
            raise ValueError(f"unexpected {JOB_FILE} header: {header}")
        for worker_row, establishment_row in reader:
            job_worker.append(int(worker_row))
            job_establishment.append(int(establishment_row))

    return LODESDataset(
        worker=worker,
        workplace=workplace,
        job_worker=np.array(job_worker, dtype=np.int64),
        job_establishment=np.array(job_establishment, dtype=np.int64),
        geography=geography,
    )
