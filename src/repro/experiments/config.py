"""Experiment parameter grids, matching Sec 10 of the paper.

ε ∈ {0.25, 0.5, 1, 2, 4} for the standard figures (the paper also lists
0.67; we keep the plotted grid), ε ∈ {1, 2, 4, 8, 10, 16, 20} for the
worker-attribute marginal (Figure 4), α ∈ {0.01, 0.05, 0.1, 0.15, 0.2},
δ = 0.05 for Smooth Laplace, truncation θ ∈ {2, 20, 50, 100, 200, 500},
and 20 independent trials per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.generator import SyntheticConfig
from repro.sdl.distortion import DistortionParams
from repro.util import check_positive

EPSILON_GRID_STANDARD: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0)
EPSILON_GRID_EXTENDED: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 10.0, 16.0, 20.0)
ALPHA_GRID: tuple[float, ...] = (0.01, 0.05, 0.1, 0.15, 0.2)
DELTA_DEFAULT: float = 0.05
THETA_GRID: tuple[int, ...] = (2, 20, 50, 100, 200, 500)
MECHANISM_NAMES: tuple[str, ...] = ("log-laplace", "smooth-laplace", "smooth-gamma")


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything an experiment run needs, under one seed."""

    data: SyntheticConfig = field(default_factory=SyntheticConfig)
    sdl: DistortionParams = field(default_factory=DistortionParams)
    n_trials: int = 20
    # Max trials sharing one vectorized noise draw; None = all n_trials in
    # a single (n_trials, n_cells) matrix (the fastest setting — cap it
    # only to bound memory on very dense grids).
    trials_batch: int | None = None
    delta: float = DELTA_DEFAULT
    epsilons_standard: tuple[float, ...] = EPSILON_GRID_STANDARD
    epsilons_extended: tuple[float, ...] = EPSILON_GRID_EXTENDED
    alphas: tuple[float, ...] = ALPHA_GRID
    thetas: tuple[int, ...] = THETA_GRID
    seed: int = 7
    # Name of the registered scenario ``data`` came from, if any — pure
    # provenance: the snapshot fingerprint hashes ``data`` itself, so a
    # renamed scenario never invalidates caches.
    scenario: str | None = None

    def __post_init__(self):
        check_positive("n_trials", self.n_trials)
        if self.trials_batch is not None:
            check_positive("trials_batch", self.trials_batch)
        if not (0.0 < self.delta < 1.0):
            raise ValueError(f"delta must lie in (0, 1), got {self.delta}")

    @classmethod
    def for_scenario(cls, name: str, **overrides) -> "ExperimentConfig":
        """An experiment config whose data comes from a registered scenario.

        ``overrides`` are any other :class:`ExperimentConfig` fields
        (``n_trials``, ``seed``, grids ...).  The experiment ``seed``
        defaults to the scenario's data seed so a bare
        ``for_scenario(name)`` is fully pinned by the registry entry.
        """
        from repro.scenarios import scenario_config

        data = scenario_config(name)
        overrides.setdefault("seed", data.seed)
        return cls(data=data, scenario=name, **overrides)

    def small(self) -> "ExperimentConfig":
        """A reduced configuration for tests: fewer trials, smaller data."""
        return ExperimentConfig(
            data=SyntheticConfig(target_jobs=8_000, seed=self.data.seed),
            sdl=self.sdl,
            n_trials=3,
            delta=self.delta,
            epsilons_standard=(0.5, 2.0),
            epsilons_extended=(2.0, 8.0),
            alphas=(0.05, 0.2),
            thetas=(20, 200),
            seed=self.seed,
        )
