"""Tables 1 and 2 of the paper, plus the session accuracy summary.

Table 1 is the qualitative definitions × requirements matrix (encoded in
:mod:`repro.core.definitions`).  Table 2 gives, per (α, δ), the minimum ε
that makes the Smooth Laplace algorithm feasible; we compute it from the
Algorithm 3 constraint and also report the paper's published values for
comparison (the published δ = .05 column is internally consistent with
δ ≈ .005; see EXPERIMENTS.md).

Table 3 is not in the paper: it is an empirical per-mechanism accuracy
summary of the Workload-1 marginal on one snapshot, produced through the
:class:`repro.api.ReleaseSession` facade (one shared snapshot, the
batched trial engine, and ledger accounting) so the ``tables`` CLI
exercises the same path as ``figures``.
"""

from __future__ import annotations

from repro.api.request import ReleaseRequest
from repro.api.session import ReleaseSession
from repro.core.definitions import table1_rows
from repro.core.params import min_epsilon
from repro.experiments.workloads import WORKLOAD_1
from repro.util import format_table

# The paper's published Table 2 entries: (delta, alpha) -> epsilon.
PAPER_TABLE2: dict[tuple[float, float], float] = {
    (0.05, 0.01): 0.105,
    (0.05, 0.10): 1.01,
    (0.05, 0.20): 1.932,
    (5e-4, 0.01): 0.15,
    (5e-4, 0.10): 1.45,
    (5e-4, 0.20): 2.13,
}

TABLE2_ALPHAS: tuple[float, ...] = (0.01, 0.10, 0.20)
TABLE2_DELTAS: tuple[float, ...] = (0.05, 5e-4)


def table1_text() -> str:
    """Table 1 rendered as text."""
    return format_table(
        headers=["Definition", "Individuals", "Emp. Size", "Emp. Shape"],
        rows=table1_rows(),
        title="Table 1: privacy definitions and requirements they satisfy "
        "(Yes* = under weak adversaries)",
    )


def table2_rows(
    alphas=TABLE2_ALPHAS, deltas=TABLE2_DELTAS
) -> list[dict[str, float | None]]:
    """Minimum-ε rows: ours from the Algorithm 3 constraint, plus paper's."""
    rows = []
    for delta in deltas:
        for alpha in alphas:
            rows.append(
                {
                    "delta": delta,
                    "alpha": alpha,
                    "min_epsilon": min_epsilon(alpha, delta),
                    "paper_epsilon": PAPER_TABLE2.get((delta, alpha)),
                }
            )
    return rows


def table2_text() -> str:
    """Table 2 rendered as text with the paper's values alongside."""
    rows = [
        [
            row["delta"],
            row["alpha"],
            row["min_epsilon"],
            row["paper_epsilon"] if row["paper_epsilon"] is not None else "-",
        ]
        for row in table2_rows()
    ]
    return format_table(
        headers=["delta", "alpha", "min eps (ours)", "min eps (paper)"],
        rows=rows,
        title="Table 2: minimum epsilon given alpha and delta "
        "(Smooth Laplace feasibility)",
    )


TABLE3_ALPHA: float = 0.1
TABLE3_EPSILONS: tuple[float, ...] = (1.0, 2.0, 4.0)
TABLE3_DELTA: float = 0.05


def _table3_row_key(
    fingerprint: str, request: ReleaseRequest, fused: dict | None = None
) -> str:
    """Content-address of one Table-3 row for the result store.

    ``fused`` carries the fused-evaluation token (group seed + the
    group's ε tuple): fused rows come from a different noise stream than
    per-request rows, so their cache keys must never collide.
    """
    from repro.engine.store import content_key

    payload = {
        "kind": "table3-row",
        "fingerprint": fingerprint,
        "attrs": list(request.attrs),
        "mechanism": request.mechanism,
        "alpha": request.alpha,
        "epsilon": request.epsilon,
        "delta": request.delta,
        "budget_style": request.budget_style,
        "n_trials": request.n_trials,
        "seed": request.seed,
    }
    if fused is not None:
        payload["fused"] = fused
    return content_key(payload)


def _table3_rows_fused(
    session: ReleaseSession,
    requests,
    rows: list,
    fingerprint: str,
    delta: float,
    n_trials: int,
    store,
    resume: bool,
) -> list[dict]:
    """Fill the pending Table-3 rows group-at-a-time with shared draws.

    One (mechanism, α) group shares one unit-noise draw serving *both*
    metrics of every ε row (L1 ratio and Spearman reduce from the same
    noisy matrices), debiting once per feasible row — the same composed
    budget the per-request path debits.  A group recomputes whenever any
    of its rows is missing from the store; cached rows keep their stored
    values and debit nothing.
    """
    from repro.util import derive_seed

    groups: dict[tuple, list[int]] = {}
    for index, request in enumerate(requests):
        if rows[index] is not None and not rows[index]["feasible"]:
            continue  # prefiltered infeasible rows need no draw
        groups.setdefault((request.mechanism, request.alpha), []).append(index)

    for (mechanism, alpha), indices in groups.items():
        epsilons = [requests[i].epsilon for i in indices]
        group_seed = derive_seed(
            session.config.seed, f"table3-fused:{mechanism}:{alpha}"
        )
        token = {"group_seed": group_seed, "epsilons": list(epsilons)}
        cached: set[int] = set()
        if store is not None and resume:
            for i in indices:
                payload = store.get(
                    _table3_row_key(fingerprint, requests[i], fused=token)
                )
                if payload is not None and "row" in payload:
                    rows[i] = payload["row"]
                    cached.add(i)
        if len(cached) == len(indices):
            continue
        values, spends = session.evaluate_fused_outcome(
            WORKLOAD_1,
            mechanism,
            alpha=alpha,
            delta=delta,
            epsilons=epsilons,
            metrics=("l1-ratio", "spearman"),
            n_trials=n_trials,
            seed=group_seed,
        )
        for pos, i in enumerate(indices):
            if i in cached:
                continue
            row = {
                "mechanism": mechanism,
                "alpha": alpha,
                "epsilon": requests[i].epsilon,
                "feasible": values["l1-ratio"][pos].feasible,
                "l1_ratio": values["l1-ratio"][pos].overall,
                "spearman": values["spearman"][pos].overall,
            }
            rows[i] = row
            if spends[pos] is not None:
                session.ledger.record(spends[pos])
            if store is not None:
                store.put(
                    _table3_row_key(fingerprint, requests[i], fused=token),
                    {"row": row},
                )
    return rows


def table3_rows(
    session: ReleaseSession,
    alphas=(TABLE3_ALPHA,),
    epsilons=TABLE3_EPSILONS,
    delta: float = TABLE3_DELTA,
    n_trials: int | None = None,
    *,
    executor=None,
    workers: int | None = None,
    store=None,
    resume: bool = False,
    fused: bool | str = False,
) -> list[dict]:
    """Empirical accuracy rows from one shared release session.

    Every (mechanism, α, ε) point of the grid runs as a declarative
    :class:`~repro.api.request.ReleaseRequest` against the *same* cached
    snapshot (the marginal's true counts, mask and xv are computed once
    for the whole table); infeasible points are reported, not skipped.

    The feasible requests submit to :meth:`ReleaseSession.run_grid`, so
    ``executor``/``workers`` parallelize the grid with exact ledger
    accounting; with a ``store`` each computed row is cached under a
    content hash and ``resume=True`` replays completed rows without
    touching the data (cache hits debit nothing).

    ``fused`` (any truthy mode — the sweep engine's ``"family"`` mode
    included) evaluates each (mechanism, α) group's ε rows from one
    shared unit-noise draw (both metrics from the same matrices) instead
    of one release per row — statistically equivalent, different RNG
    streams, distinct cache keys; the default path is unchanged.  Table
    3 rows need both metrics per point, so the table always fuses at
    group granularity.
    """
    if n_trials is None:
        n_trials = session.config.n_trials
    from repro.engine.evaluate import mechanism_is_feasible
    from repro.experiments.config import MECHANISM_NAMES

    requests = ReleaseRequest.grid(
        WORKLOAD_1.attrs,
        MECHANISM_NAMES,
        alphas,
        epsilons,
        delta=delta,
        n_trials=n_trials,
        seed=session.config.seed,
        tag="table3",
    )
    fingerprint = session.snapshot_fingerprint
    stats = session.statistics(WORKLOAD_1)
    rows: list[dict | None] = [None] * len(requests)
    pending: list[int] = []
    for index, request in enumerate(requests):
        per_cell = stats.per_cell_params_of(request.params)
        if not mechanism_is_feasible(request.mechanism, per_cell):
            rows[index] = {
                "mechanism": request.mechanism,
                "alpha": request.alpha,
                "epsilon": request.epsilon,
                "feasible": False,
                "l1_ratio": float("nan"),
                "spearman": float("nan"),
            }
            continue
        if fused:
            continue  # fused grouping handles resume per member key
        if store is not None and resume:
            payload = store.get(_table3_row_key(fingerprint, request))
            if payload is not None and "row" in payload:
                rows[index] = payload["row"]
                continue
        pending.append(index)

    if fused:
        return _table3_rows_fused(
            session,
            requests,
            rows,
            fingerprint,
            delta,
            n_trials,
            store,
            resume,
        )

    results = session.run_grid(
        [requests[index] for index in pending],
        executor=executor,
        workers=workers,
    )
    for index, result in zip(pending, results):
        request = requests[index]
        row = {
            "mechanism": request.mechanism,
            "alpha": request.alpha,
            "epsilon": request.epsilon,
            "feasible": True,
            "l1_ratio": result.l1_ratio(),
            "spearman": result.spearman(),
        }
        rows[index] = row
        if store is not None:
            store.put(_table3_row_key(fingerprint, request), {"row": row})
    return rows


def table3_text(
    session: ReleaseSession,
    n_trials: int | None = None,
    *,
    executor=None,
    workers: int | None = None,
    store=None,
    resume: bool = False,
    fused: bool | str = False,
) -> str:
    """The session accuracy summary rendered as text."""
    rows = [
        [
            row["mechanism"],
            row["alpha"],
            row["epsilon"],
            "yes" if row["feasible"] else "no",
            row["l1_ratio"],
            row["spearman"],
        ]
        for row in table3_rows(
            session,
            n_trials=n_trials,
            executor=executor,
            workers=workers,
            store=store,
            resume=resume,
            fused=fused,
        )
    ]
    summary = session.dataset.summary()
    return format_table(
        headers=[
            "mechanism",
            "alpha",
            "eps",
            "feasible",
            "L1 ratio vs SDL",
            "Spearman vs SDL",
        ],
        rows=rows,
        title=(
            "Table 3 (companion): Workload-1 accuracy by mechanism on a "
            f"{int(summary['n_jobs'])}-job synthetic snapshot "
            f"({session.config.n_trials if n_trials is None else n_trials} trials)"
        ),
    )
