"""Tables 1 and 2 of the paper.

Table 1 is the qualitative definitions × requirements matrix (encoded in
:mod:`repro.core.definitions`).  Table 2 gives, per (α, δ), the minimum ε
that makes the Smooth Laplace algorithm feasible; we compute it from the
Algorithm 3 constraint and also report the paper's published values for
comparison (the published δ = .05 column is internally consistent with
δ ≈ .005; see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.core.definitions import table1_rows
from repro.core.params import min_epsilon
from repro.util import format_table

# The paper's published Table 2 entries: (delta, alpha) -> epsilon.
PAPER_TABLE2: dict[tuple[float, float], float] = {
    (0.05, 0.01): 0.105,
    (0.05, 0.10): 1.01,
    (0.05, 0.20): 1.932,
    (5e-4, 0.01): 0.15,
    (5e-4, 0.10): 1.45,
    (5e-4, 0.20): 2.13,
}

TABLE2_ALPHAS: tuple[float, ...] = (0.01, 0.10, 0.20)
TABLE2_DELTAS: tuple[float, ...] = (0.05, 5e-4)


def table1_text() -> str:
    """Table 1 rendered as text."""
    return format_table(
        headers=["Definition", "Individuals", "Emp. Size", "Emp. Shape"],
        rows=table1_rows(),
        title="Table 1: privacy definitions and requirements they satisfy "
        "(Yes* = under weak adversaries)",
    )


def table2_rows(
    alphas=TABLE2_ALPHAS, deltas=TABLE2_DELTAS
) -> list[dict[str, float | None]]:
    """Minimum-ε rows: ours from the Algorithm 3 constraint, plus paper's."""
    rows = []
    for delta in deltas:
        for alpha in alphas:
            rows.append(
                {
                    "delta": delta,
                    "alpha": alpha,
                    "min_epsilon": min_epsilon(alpha, delta),
                    "paper_epsilon": PAPER_TABLE2.get((delta, alpha)),
                }
            )
    return rows


def table2_text() -> str:
    """Table 2 rendered as text with the paper's values alongside."""
    rows = [
        [
            row["delta"],
            row["alpha"],
            row["min_epsilon"],
            row["paper_epsilon"] if row["paper_epsilon"] is not None else "-",
        ]
        for row in table2_rows()
    ]
    return format_table(
        headers=["delta", "alpha", "min eps (ours)", "min eps (paper)"],
        rows=rows,
        title="Table 2: minimum epsilon given alpha and delta "
        "(Smooth Laplace feasibility)",
    )
