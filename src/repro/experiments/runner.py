"""Experiment execution: cached workload statistics plus the trial loop.

``ExperimentContext`` generates the synthetic snapshot and fits the SDL
system once.  ``WorkloadStatistics`` caches everything that does not
change across noise trials (true counts, release mask, the per-cell xv
statistic, place strata, and the SDL answer), so a figure's grid of
(mechanism × α × ε × trials) only redraws noise — and that noise is one
vectorized ``(n_trials, n_cells)`` draw per grid point via the batched
mechanism engine, not a per-trial Python loop.

Error ratios and Spearman correlations follow Sec 10's definitions: the
ratio is mean private L1 over trials divided by SDL L1; Spearman compares
the private ordering to the SDL ordering; both are reported overall and
per place-population stratum, over the cells with positive true count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.composition import marginal_budget
from repro.core.params import EREEParams
from repro.core.release import DEFAULT_WORKER_ATTRS, make_mechanism
from repro.data.generator import generate
from repro.db.query import Marginal, per_establishment_counts
from repro.dp.truncation import TruncatedLaplace
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import Workload
from repro.metrics.error import l1_error, l1_error_batch
from repro.metrics.ranking import spearman_correlation_batch
from repro.metrics.strata import STRATUM_LABELS, cell_strata
from repro.sdl.noise_infusion import InputNoiseInfusion
from repro.util import as_generator, derive_seed

N_STRATA = len(STRATUM_LABELS)


@dataclass(frozen=True)
class WorkloadStatistics:
    """Trial-invariant statistics of one workload on one snapshot.

    Arrays are over the marginal's cells.  ``mask`` selects the cells
    used for evaluation (positive true count, hence published by both
    systems); ``xv`` is the smooth-sensitivity statistic; ``strata`` the
    place-population stratum per cell.
    """

    workload: Workload
    marginal: Marginal
    true: np.ndarray
    released: np.ndarray
    xv: np.ndarray
    strata: np.ndarray
    sdl_noisy: np.ndarray
    mode: str
    per_cell_params_of: object  # Callable[[EREEParams], EREEParams]

    @property
    def mask(self) -> np.ndarray:
        return (self.true > 0) & self.released

    def masked(self, values: np.ndarray) -> np.ndarray:
        return values[self.mask]

    def stratum_masks(self) -> list[np.ndarray]:
        """Evaluation mask restricted to each place-population stratum."""
        return [
            self.mask & (self.strata == stratum) for stratum in range(N_STRATA)
        ]


@dataclass(frozen=True)
class SeriesPoint:
    """One plotted point: a (mechanism, α, ε) cell of a figure."""

    mechanism: str
    alpha: float | None
    epsilon: float
    overall: float
    by_stratum: tuple[float, ...]
    feasible: bool = True
    theta: int | None = None


@dataclass(frozen=True)
class FigureSeries:
    """All points of one figure, plus labeling metadata."""

    name: str
    title: str
    metric: str  # "l1-ratio" or "spearman"
    points: tuple[SeriesPoint, ...]

    def grid(self, mechanism: str, alpha: float | None = None) -> list[SeriesPoint]:
        return [
            p
            for p in self.points
            if p.mechanism == mechanism
            and (alpha is None or p.alpha == alpha)
        ]


@dataclass
class ExperimentContext:
    """One synthetic snapshot with a fitted SDL system and cached stats."""

    config: ExperimentConfig
    _stats_cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self):
        self.dataset = generate(self.config.data)
        self.worker_full = self.dataset.worker_full()
        self.sdl = InputNoiseInfusion(
            distortion=self.config.sdl,
            seed=derive_seed(self.config.seed, "sdl"),
        ).fit(self.worker_full)

    def statistics(self, workload: Workload) -> WorkloadStatistics:
        """Compute (or fetch cached) trial-invariant workload statistics."""
        if workload.name in self._stats_cache:
            return self._stats_cache[workload.name]

        schema = self.worker_full.table.schema
        marginal = Marginal(schema, workload.attrs)

        population = self.worker_full
        for attribute, value in workload.filters:
            population = population.filter(
                population.table.equals_value(attribute, value)
            )

        true = marginal.counts(population.table).astype(np.float64)
        cell_index = marginal.cell_index(population.table)
        stats = per_establishment_counts(
            cell_index, population.establishment, marginal.n_cells
        )
        xv = stats.max_single

        # Release mask: the workplace part matches >= 1 establishment,
        # judged on the *unfiltered* population (existence is public).
        workplace_part = [
            a for a in workload.attrs if a not in DEFAULT_WORKER_ATTRS
        ]
        wp_marginal = Marginal(schema, workplace_part)
        wp_stats = per_establishment_counts(
            wp_marginal.cell_index(self.worker_full.table),
            self.worker_full.establishment,
            wp_marginal.n_cells,
        )
        released = (
            wp_stats.n_establishments[marginal.project_onto(workplace_part)] > 0
        )

        strata = cell_strata(marginal, self.dataset.geography.place_populations)
        sdl_noisy = self.sdl.answer_marginal(population, marginal).noisy

        mode = "weak" if workload.has_worker_attrs else "strong"

        def per_cell_params(params: EREEParams) -> EREEParams:
            return marginal_budget(
                params,
                schema,
                workload.attrs,
                DEFAULT_WORKER_ATTRS,
                mode,
                workload.budget_style,
            ).per_cell

        result = WorkloadStatistics(
            workload=workload,
            marginal=marginal,
            true=true,
            released=released,
            xv=xv,
            strata=strata,
            sdl_noisy=sdl_noisy,
            mode=mode,
            per_cell_params_of=per_cell_params,
        )
        self._stats_cache[workload.name] = result
        return result


def mechanism_is_feasible(
    name: str, params: EREEParams, require_bounded_mean: bool = True
) -> bool:
    """Whether the paper would plot this (mechanism, α, ε) combination.

    Smooth Gamma and Smooth Laplace have hard feasibility constraints;
    Log-Laplace is skipped where its expectation is unbounded (the paper
    does not plot those points, Lemma 8.2).
    """
    if name == "smooth-gamma":
        return params.allows_smooth_gamma()
    if name == "smooth-laplace":
        return params.allows_smooth_laplace()
    if name == "log-laplace" and require_bounded_mean:
        return params.log_laplace_scale() < 1.0
    return True


def _trial_chunks(n_trials: int, batch_size: int | None) -> list[int]:
    """Chunk sizes whose sum is ``n_trials`` (one chunk when unbounded)."""
    if batch_size is None or batch_size >= n_trials:
        return [n_trials]
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    full, rest = divmod(n_trials, batch_size)
    return [batch_size] * full + ([rest] if rest else [])


def _release_chunks(
    stats: WorkloadStatistics,
    mechanism_name: str,
    per_cell: EREEParams,
    n_trials: int,
    seed,
    batch_size: int | None,
):
    """Yield ``(chunk, n_cells)`` noise matrices from one shared stream.

    The chunk boundaries do not change the stream for the Laplace-based
    mechanisms (the matrix fills row-major from one generator), so any
    ``batch_size`` reproduces the single-draw statistics bit-for-bit.
    """
    mechanism = make_mechanism(mechanism_name, per_cell)
    rng = as_generator(seed)
    true = stats.masked(stats.true)
    xv = stats.masked(stats.xv)
    for chunk in _trial_chunks(n_trials, batch_size):
        if mechanism_name == "log-laplace":
            yield mechanism.release_counts_batch(true, chunk, rng)
        else:
            yield mechanism.release_counts_batch(true, xv, chunk, rng)


def release_trials(
    stats: WorkloadStatistics,
    mechanism_name: str,
    params: EREEParams,
    n_trials: int,
    seed,
    batch_size: int | None = None,
) -> np.ndarray | None:
    """``(n_trials, n_cells)`` noisy matrix over the evaluation cells.

    All trials come from a single vectorized RNG draw (the batched
    mechanism path).  ``batch_size`` caps how many trials share one draw
    — it bounds the per-draw transients (and lets the figure points
    stream-reduce chunk by chunk without materializing the matrix), but
    this function's *result* is always the full matrix.  Returns None
    when the per-cell parameters are infeasible for the mechanism (the
    figure shows a gap there, as in the paper).  Iterating the result
    yields one noisy vector per trial, like the historical list.
    """
    per_cell = stats.per_cell_params_of(params)
    if not mechanism_is_feasible(mechanism_name, per_cell):
        return None
    chunks = list(
        _release_chunks(stats, mechanism_name, per_cell, n_trials, seed, batch_size)
    )
    return chunks[0] if len(chunks) == 1 else np.concatenate(chunks, axis=0)


def release_trials_looped(
    stats: WorkloadStatistics,
    mechanism_name: str,
    params: EREEParams,
    n_trials: int,
    seed,
) -> list[np.ndarray] | None:
    """The historical per-trial Python loop (one RNG draw per trial).

    Kept as the reference implementation for the batched-engine
    equivalence tests and throughput benchmarks; production paths use
    :func:`release_trials`.
    """
    per_cell = stats.per_cell_params_of(params)
    if not mechanism_is_feasible(mechanism_name, per_cell):
        return None
    mechanism = make_mechanism(mechanism_name, per_cell)
    rng = as_generator(seed)
    true = stats.masked(stats.true)
    xv = stats.masked(stats.xv)
    trials = []
    for _ in range(n_trials):
        if mechanism_name == "log-laplace":
            trials.append(mechanism.release_counts(true, rng))
        else:
            trials.append(mechanism.release_counts(true, xv, rng))
    return trials


def _ratio(true, private_trials, sdl, cells) -> float:
    """Mean private L1 over trials / SDL L1, over the given cells.

    ``private_trials`` is a ``(n_trials, n_cells)`` matrix (or anything
    array-like with that shape); the trial axis reduces vectorized.
    """
    if not cells.any():
        return float("nan")
    trials = np.asarray(private_trials, dtype=np.float64)
    sdl_l1 = l1_error(true[cells], sdl[cells])
    private_l1 = float(l1_error_batch(true[cells], trials[:, cells]).mean())
    if sdl_l1 == 0.0:
        return math.inf if private_l1 > 0 else float("nan")
    return private_l1 / sdl_l1


def _streamed_point_values(
    chunk_iter, true, sdl, strata, metric: str, n_trials: int
) -> tuple[float, tuple[float, ...]]:
    """Reduce trial-chunk matrices to (overall, by-stratum) point values.

    Both metrics are means over trials, so each chunk folds into running
    sums and is discarded — the full ``(n_trials, n_cells)`` matrix never
    exists when the chunks are small.  The chunk rows arrive in trial
    order, so the statistics match the whole-matrix reduction exactly up
    to floating-point summation order (last-ULP reassociation).
    """
    cell_sets = [np.ones(len(sdl), dtype=bool)] + [
        strata == stratum for stratum in range(N_STRATA)
    ]
    sums = np.zeros(len(cell_sets))
    counts = np.zeros(len(cell_sets))
    for chunk in chunk_iter:
        for j, cells in enumerate(cell_sets):
            if metric == "l1-ratio":
                if cells.any():
                    sums[j] += l1_error_batch(true[cells], chunk[:, cells]).sum()
            else:
                if int(cells.sum()) >= 2:
                    values = spearman_correlation_batch(
                        chunk[:, cells], sdl[cells]
                    )
                    sums[j] += np.nansum(values)
                    counts[j] += np.count_nonzero(~np.isnan(values))
    results = []
    for j, cells in enumerate(cell_sets):
        if metric == "l1-ratio":
            if not cells.any():
                results.append(float("nan"))
                continue
            sdl_l1 = l1_error(true[cells], sdl[cells])
            private_l1 = float(sums[j]) / n_trials
            if sdl_l1 == 0.0:
                results.append(math.inf if private_l1 > 0 else float("nan"))
            else:
                results.append(private_l1 / sdl_l1)
        else:
            results.append(
                float(sums[j] / counts[j]) if counts[j] else float("nan")
            )
    return results[0], tuple(results[1:])


def _infeasible_point(mechanism_name: str, params: EREEParams) -> SeriesPoint:
    nan = float("nan")
    return SeriesPoint(
        mechanism=mechanism_name,
        alpha=params.alpha,
        epsilon=params.epsilon,
        overall=nan,
        by_stratum=(nan,) * N_STRATA,
        feasible=False,
    )


def error_ratio_point(
    stats: WorkloadStatistics,
    mechanism_name: str,
    params: EREEParams,
    n_trials: int,
    seed,
    batch_size: int | None = None,
) -> SeriesPoint:
    """One L1-error-ratio point (overall + per-stratum)."""
    per_cell = stats.per_cell_params_of(params)
    if not mechanism_is_feasible(mechanism_name, per_cell):
        return _infeasible_point(mechanism_name, params)
    mask = stats.mask
    true = stats.masked(stats.true)
    sdl = stats.masked(stats.sdl_noisy)
    strata = stats.strata[mask]
    overall, by_stratum = _streamed_point_values(
        _release_chunks(stats, mechanism_name, per_cell, n_trials, seed, batch_size),
        true,
        sdl,
        strata,
        "l1-ratio",
        n_trials,
    )
    return SeriesPoint(
        mechanism=mechanism_name,
        alpha=params.alpha,
        epsilon=params.epsilon,
        overall=overall,
        by_stratum=by_stratum,
    )


def _mean_spearman(private_trials, sdl, cells) -> float:
    """Mean over trials of row-wise Spearman ρ against the SDL ordering."""
    if not cells.any() or int(cells.sum()) < 2:
        return float("nan")
    trials = np.asarray(private_trials, dtype=np.float64)
    values = spearman_correlation_batch(trials[:, cells], sdl[cells])
    if np.all(np.isnan(values)):
        return float("nan")
    return float(np.nanmean(values))


def spearman_point(
    stats: WorkloadStatistics,
    mechanism_name: str,
    params: EREEParams,
    n_trials: int,
    seed,
    batch_size: int | None = None,
) -> SeriesPoint:
    """One Spearman-correlation point (overall + per-stratum)."""
    per_cell = stats.per_cell_params_of(params)
    if not mechanism_is_feasible(mechanism_name, per_cell):
        return _infeasible_point(mechanism_name, params)
    mask = stats.mask
    true = stats.masked(stats.true)
    sdl = stats.masked(stats.sdl_noisy)
    strata = stats.strata[mask]
    overall, by_stratum = _streamed_point_values(
        _release_chunks(stats, mechanism_name, per_cell, n_trials, seed, batch_size),
        true,
        sdl,
        strata,
        "spearman",
        n_trials,
    )
    return SeriesPoint(
        mechanism=mechanism_name,
        alpha=params.alpha,
        epsilon=params.epsilon,
        overall=overall,
        by_stratum=by_stratum,
    )


def truncated_laplace_point(
    context: ExperimentContext,
    stats: WorkloadStatistics,
    theta: int,
    epsilon: float,
    n_trials: int,
    seed,
    metric: str = "l1-ratio",
    batch_size: int | None = None,
) -> SeriesPoint:
    """One node-DP Truncated-Laplace point on a workload (Finding 6).

    The truncation projection is trial-invariant, so it runs exactly
    once; the whole ``(n_trials, n_cells)`` noise matrix is a single
    vectorized draw, or — when ``batch_size`` caps memory — a few chunked
    draws from the same stream, each masked and folded into the running
    statistics before the next chunk exists.
    """
    rng = as_generator(seed)
    mechanism = TruncatedLaplace(theta=theta, epsilon=epsilon)
    mask = stats.mask
    projection = mechanism.project(context.worker_full, stats.marginal)

    def chunk_iter():
        for chunk in _trial_chunks(n_trials, batch_size):
            result = mechanism.release_batch(
                context.worker_full, stats.marginal, chunk, rng,
                projection=projection,
            )
            yield result.noisy[:, mask]

    true = stats.masked(stats.true)
    sdl = stats.masked(stats.sdl_noisy)
    strata = stats.strata[mask]
    overall, by_stratum = _streamed_point_values(
        chunk_iter(), true, sdl, strata, metric, n_trials
    )
    return SeriesPoint(
        mechanism="truncated-laplace",
        alpha=None,
        epsilon=epsilon,
        overall=overall,
        by_stratum=by_stratum,
        theta=theta,
    )
