"""Experiment execution shim over the sweep engine's kernels.

The machinery that used to live here moved down into the engine layer:

- the point/result dataclasses (:class:`SeriesPoint`,
  :class:`FigureSeries`, :class:`WorkloadStatistics`) are in
  :mod:`repro.engine.points`;
- the evaluation kernels (:func:`release_trials`,
  :func:`error_ratio_point`, :func:`spearman_point`,
  :func:`truncated_laplace_point`, feasibility) are in
  :mod:`repro.engine.evaluate`.

That move broke the historical ``experiments.runner ↔ api.session``
import cycle: the session now imports the engine at module level
instead of importing this module lazily from inside
``evaluate_point``.  Everything is re-exported here unchanged, so
existing imports (tests, benchmarks, downstream code) keep working;
:class:`ExperimentContext` remains as the deprecated alias of the
session.
"""

from __future__ import annotations

from repro.api.session import ReleaseSession
from repro.engine.evaluate import (
    _release_chunks,
    _streamed_point_values,
    error_ratio_point,
    mechanism_is_feasible,
    release_trials,
    release_trials_looped,
    spearman_point,
    truncated_laplace_point,
)
from repro.engine.points import (
    N_STRATA,
    FigureSeries,
    SeriesPoint,
    WorkloadStatistics,
)

__all__ = [
    "N_STRATA",
    "ExperimentContext",
    "WorkloadStatistics",
    "SeriesPoint",
    "FigureSeries",
    "mechanism_is_feasible",
    "release_trials",
    "release_trials_looped",
    "error_ratio_point",
    "spearman_point",
    "truncated_laplace_point",
]


class ExperimentContext(ReleaseSession):
    """One synthetic snapshot with a fitted SDL system and cached stats.

    .. deprecated::
        Thin alias of :class:`repro.api.ReleaseSession` kept for
        compatibility with pre-facade callers; the session adds request
        execution and ledger accounting on top of the identical snapshot
        and statistics caches (same derived seeds, same arrays).
    """
