"""Experiment execution: cached workload statistics plus the trial loop.

``ExperimentContext`` generates the synthetic snapshot and fits the SDL
system once.  ``WorkloadStatistics`` caches everything that does not
change across noise trials (true counts, release mask, the per-cell xv
statistic, place strata, and the SDL answer), so a figure's grid of
(mechanism × α × ε × trials) only redraws noise.

Error ratios and Spearman correlations follow Sec 10's definitions: the
ratio is mean private L1 over trials divided by SDL L1; Spearman compares
the private ordering to the SDL ordering; both are reported overall and
per place-population stratum, over the cells with positive true count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.composition import marginal_budget
from repro.core.params import EREEParams
from repro.core.release import DEFAULT_WORKER_ATTRS, make_mechanism
from repro.data.generator import generate
from repro.db.query import Marginal, per_establishment_counts
from repro.dp.truncation import TruncatedLaplace
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import Workload
from repro.metrics.error import l1_error
from repro.metrics.ranking import spearman_correlation
from repro.metrics.strata import STRATUM_LABELS, cell_strata
from repro.sdl.noise_infusion import InputNoiseInfusion
from repro.util import as_generator, derive_seed

N_STRATA = len(STRATUM_LABELS)


@dataclass(frozen=True)
class WorkloadStatistics:
    """Trial-invariant statistics of one workload on one snapshot.

    Arrays are over the marginal's cells.  ``mask`` selects the cells
    used for evaluation (positive true count, hence published by both
    systems); ``xv`` is the smooth-sensitivity statistic; ``strata`` the
    place-population stratum per cell.
    """

    workload: Workload
    marginal: Marginal
    true: np.ndarray
    released: np.ndarray
    xv: np.ndarray
    strata: np.ndarray
    sdl_noisy: np.ndarray
    mode: str
    per_cell_params_of: object  # Callable[[EREEParams], EREEParams]

    @property
    def mask(self) -> np.ndarray:
        return (self.true > 0) & self.released

    def masked(self, values: np.ndarray) -> np.ndarray:
        return values[self.mask]

    def stratum_masks(self) -> list[np.ndarray]:
        """Evaluation mask restricted to each place-population stratum."""
        return [
            self.mask & (self.strata == stratum) for stratum in range(N_STRATA)
        ]


@dataclass(frozen=True)
class SeriesPoint:
    """One plotted point: a (mechanism, α, ε) cell of a figure."""

    mechanism: str
    alpha: float | None
    epsilon: float
    overall: float
    by_stratum: tuple[float, ...]
    feasible: bool = True
    theta: int | None = None


@dataclass(frozen=True)
class FigureSeries:
    """All points of one figure, plus labeling metadata."""

    name: str
    title: str
    metric: str  # "l1-ratio" or "spearman"
    points: tuple[SeriesPoint, ...]

    def grid(self, mechanism: str, alpha: float | None = None) -> list[SeriesPoint]:
        return [
            p
            for p in self.points
            if p.mechanism == mechanism
            and (alpha is None or p.alpha == alpha)
        ]


@dataclass
class ExperimentContext:
    """One synthetic snapshot with a fitted SDL system and cached stats."""

    config: ExperimentConfig
    _stats_cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self):
        self.dataset = generate(self.config.data)
        self.worker_full = self.dataset.worker_full()
        self.sdl = InputNoiseInfusion(
            distortion=self.config.sdl,
            seed=derive_seed(self.config.seed, "sdl"),
        ).fit(self.worker_full)

    def statistics(self, workload: Workload) -> WorkloadStatistics:
        """Compute (or fetch cached) trial-invariant workload statistics."""
        if workload.name in self._stats_cache:
            return self._stats_cache[workload.name]

        schema = self.worker_full.table.schema
        marginal = Marginal(schema, workload.attrs)

        population = self.worker_full
        for attribute, value in workload.filters:
            population = population.filter(
                population.table.equals_value(attribute, value)
            )

        true = marginal.counts(population.table).astype(np.float64)
        cell_index = marginal.cell_index(population.table)
        stats = per_establishment_counts(
            cell_index, population.establishment, marginal.n_cells
        )
        xv = stats.max_single

        # Release mask: the workplace part matches >= 1 establishment,
        # judged on the *unfiltered* population (existence is public).
        workplace_part = [
            a for a in workload.attrs if a not in DEFAULT_WORKER_ATTRS
        ]
        wp_marginal = Marginal(schema, workplace_part)
        wp_stats = per_establishment_counts(
            wp_marginal.cell_index(self.worker_full.table),
            self.worker_full.establishment,
            wp_marginal.n_cells,
        )
        released = (
            wp_stats.n_establishments[marginal.project_onto(workplace_part)] > 0
        )

        strata = cell_strata(marginal, self.dataset.geography.place_populations)
        sdl_noisy = self.sdl.answer_marginal(population, marginal).noisy

        mode = "weak" if workload.has_worker_attrs else "strong"

        def per_cell_params(params: EREEParams) -> EREEParams:
            return marginal_budget(
                params,
                schema,
                workload.attrs,
                DEFAULT_WORKER_ATTRS,
                mode,
                workload.budget_style,
            ).per_cell

        result = WorkloadStatistics(
            workload=workload,
            marginal=marginal,
            true=true,
            released=released,
            xv=xv,
            strata=strata,
            sdl_noisy=sdl_noisy,
            mode=mode,
            per_cell_params_of=per_cell_params,
        )
        self._stats_cache[workload.name] = result
        return result


def mechanism_is_feasible(
    name: str, params: EREEParams, require_bounded_mean: bool = True
) -> bool:
    """Whether the paper would plot this (mechanism, α, ε) combination.

    Smooth Gamma and Smooth Laplace have hard feasibility constraints;
    Log-Laplace is skipped where its expectation is unbounded (the paper
    does not plot those points, Lemma 8.2).
    """
    if name == "smooth-gamma":
        return params.allows_smooth_gamma()
    if name == "smooth-laplace":
        return params.allows_smooth_laplace()
    if name == "log-laplace" and require_bounded_mean:
        return params.log_laplace_scale() < 1.0
    return True


def release_trials(
    stats: WorkloadStatistics,
    mechanism_name: str,
    params: EREEParams,
    n_trials: int,
    seed,
) -> list[np.ndarray] | None:
    """Noisy vectors over the evaluation cells, one per trial.

    Returns None when the per-cell parameters are infeasible for the
    mechanism (the figure shows a gap there, as in the paper).
    """
    per_cell = stats.per_cell_params_of(params)
    if not mechanism_is_feasible(mechanism_name, per_cell):
        return None
    mechanism = make_mechanism(mechanism_name, per_cell)
    rng = as_generator(seed)
    true = stats.masked(stats.true)
    xv = stats.masked(stats.xv)
    trials = []
    for _ in range(n_trials):
        if mechanism_name == "log-laplace":
            trials.append(mechanism.release_counts(true, rng))
        else:
            trials.append(mechanism.release_counts(true, xv, rng))
    return trials


def _ratio(true, private_trials, sdl, cells) -> float:
    """Mean private L1 over trials / SDL L1, over the given cells."""
    if not cells.any():
        return float("nan")
    sdl_l1 = l1_error(true[cells], sdl[cells])
    private_l1 = float(
        np.mean([l1_error(true[cells], trial[cells]) for trial in private_trials])
    )
    if sdl_l1 == 0.0:
        return math.inf if private_l1 > 0 else float("nan")
    return private_l1 / sdl_l1


def error_ratio_point(
    stats: WorkloadStatistics,
    mechanism_name: str,
    params: EREEParams,
    n_trials: int,
    seed,
) -> SeriesPoint:
    """One L1-error-ratio point (overall + per-stratum)."""
    trials = release_trials(stats, mechanism_name, params, n_trials, seed)
    if trials is None:
        nan = float("nan")
        return SeriesPoint(
            mechanism=mechanism_name,
            alpha=params.alpha,
            epsilon=params.epsilon,
            overall=nan,
            by_stratum=(nan,) * N_STRATA,
            feasible=False,
        )
    mask = stats.mask
    true = stats.masked(stats.true)
    sdl = stats.masked(stats.sdl_noisy)
    strata = stats.strata[mask]
    overall = _ratio(true, trials, sdl, np.ones(len(true), dtype=bool))
    by_stratum = tuple(
        _ratio(true, trials, sdl, strata == stratum) for stratum in range(N_STRATA)
    )
    return SeriesPoint(
        mechanism=mechanism_name,
        alpha=params.alpha,
        epsilon=params.epsilon,
        overall=overall,
        by_stratum=by_stratum,
    )


def _mean_spearman(private_trials, sdl, cells) -> float:
    if not cells.any() or int(cells.sum()) < 2:
        return float("nan")
    values = [
        spearman_correlation(trial[cells], sdl[cells]) for trial in private_trials
    ]
    return float(np.nanmean(values))


def spearman_point(
    stats: WorkloadStatistics,
    mechanism_name: str,
    params: EREEParams,
    n_trials: int,
    seed,
) -> SeriesPoint:
    """One Spearman-correlation point (overall + per-stratum)."""
    trials = release_trials(stats, mechanism_name, params, n_trials, seed)
    if trials is None:
        nan = float("nan")
        return SeriesPoint(
            mechanism=mechanism_name,
            alpha=params.alpha,
            epsilon=params.epsilon,
            overall=nan,
            by_stratum=(nan,) * N_STRATA,
            feasible=False,
        )
    mask = stats.mask
    sdl = stats.masked(stats.sdl_noisy)
    strata = stats.strata[mask]
    overall = _mean_spearman(trials, sdl, np.ones(len(sdl), dtype=bool))
    by_stratum = tuple(
        _mean_spearman(trials, sdl, strata == stratum)
        for stratum in range(N_STRATA)
    )
    return SeriesPoint(
        mechanism=mechanism_name,
        alpha=params.alpha,
        epsilon=params.epsilon,
        overall=overall,
        by_stratum=by_stratum,
    )


def truncated_laplace_point(
    context: ExperimentContext,
    stats: WorkloadStatistics,
    theta: int,
    epsilon: float,
    n_trials: int,
    seed,
    metric: str = "l1-ratio",
) -> SeriesPoint:
    """One node-DP Truncated-Laplace point on a workload (Finding 6)."""
    rng = as_generator(seed)
    mechanism = TruncatedLaplace(theta=theta, epsilon=epsilon)
    mask = stats.mask
    trials = []
    for _ in range(n_trials):
        result = mechanism.release(context.worker_full, stats.marginal, rng)
        trials.append(result.noisy[mask])
    true = stats.masked(stats.true)
    sdl = stats.masked(stats.sdl_noisy)
    strata = stats.strata[mask]
    everything = np.ones(len(true), dtype=bool)
    if metric == "l1-ratio":
        overall = _ratio(true, trials, sdl, everything)
        by_stratum = tuple(
            _ratio(true, trials, sdl, strata == s) for s in range(N_STRATA)
        )
    else:
        overall = _mean_spearman(trials, sdl, everything)
        by_stratum = tuple(
            _mean_spearman(trials, sdl, strata == s) for s in range(N_STRATA)
        )
    return SeriesPoint(
        mechanism="truncated-laplace",
        alpha=None,
        epsilon=epsilon,
        overall=overall,
        by_stratum=by_stratum,
        theta=theta,
    )
