"""The paper's query workloads and ranking tasks (Sec 10).

- **Workload 1**: the marginal over all establishment characteristics —
  place × NAICS sector × ownership.  Strong privacy applies.
- **Workload 2**: *single* queries over the establishment attributes plus
  worker sex and education — each cell answered independently at the
  full ε (weak privacy; Figure 3).
- **Workload 3**: the full marginal over establishment attributes plus
  sex and education — the ε budget is split over the d = 8 worker cells
  under weak privacy (Figure 4).
- **Ranking 1**: order Workload-1 cells by total employment (Figure 2).
- **Ranking 2**: order the same cells by the count of female workers with
  a bachelor's degree or higher (Figure 5) — single-query releases of one
  worker-attribute slice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.composition import MARGINAL, SINGLE_QUERY

ESTABLISHMENT_ATTRS: tuple[str, ...] = ("place", "naics", "ownership")
WORKER_QUERY_ATTRS: tuple[str, ...] = ("sex", "education")


@dataclass(frozen=True)
class Workload:
    """A marginal-release workload.

    ``attrs`` defines the marginal; ``budget_style`` says whether the ε
    budget covers the whole marginal or each cell separately (the paper's
    single-query scenario); ``filters`` restricts the population before
    counting (used by Ranking 2's females-with-college-degree counts).
    """

    name: str
    attrs: tuple[str, ...]
    budget_style: str = MARGINAL
    filters: tuple[tuple[str, object], ...] = ()
    description: str = ""

    @property
    def has_worker_attrs(self) -> bool:
        worker = {"age", "sex", "race", "ethnicity", "education"}
        return any(a in worker for a in self.attrs) or any(
            a in worker for a, _ in self.filters
        )


@dataclass(frozen=True)
class Ranking:
    """A ranking task over a workload's released counts."""

    name: str
    workload: Workload
    description: str = ""


WORKLOAD_1 = Workload(
    name="workload-1",
    attrs=ESTABLISHMENT_ATTRS,
    budget_style=MARGINAL,
    description="Marginal over all establishment characteristics "
    "(place x industry x ownership); Figure 1.",
)

WORKLOAD_2 = Workload(
    name="workload-2",
    attrs=ESTABLISHMENT_ATTRS + WORKER_QUERY_ATTRS,
    budget_style=SINGLE_QUERY,
    description="Single queries over establishment attributes and worker "
    "sex and education; Figure 3.",
)

WORKLOAD_3 = Workload(
    name="workload-3",
    attrs=ESTABLISHMENT_ATTRS + WORKER_QUERY_ATTRS,
    budget_style=MARGINAL,
    description="Full marginal over establishment attributes and worker "
    "sex and education; Figure 4.",
)

RANKING_1 = Ranking(
    name="ranking-1",
    workload=WORKLOAD_1,
    description="Rank place x industry x ownership cells by total "
    "employment; Figure 2.",
)

_FEMALE_COLLEGE = Workload(
    name="females-college",
    attrs=ESTABLISHMENT_ATTRS,
    budget_style=SINGLE_QUERY,
    filters=(("sex", "F"), ("education", "BachelorsOrHigher")),
    description="Per-cell counts of female workers with a bachelor's "
    "degree or higher.",
)

RANKING_2 = Ranking(
    name="ranking-2",
    workload=_FEMALE_COLLEGE,
    description="Rank place x industry x ownership cells by female "
    "college-degree employment; Figure 5.",
)

# Workload registry: the sweep engine's PointSpecs carry workloads by
# name (names are hashable, picklable and content-addressable; the
# dataclasses need not cross process boundaries).
WORKLOADS: dict[str, Workload] = {
    workload.name: workload
    for workload in (WORKLOAD_1, WORKLOAD_2, WORKLOAD_3, _FEMALE_COLLEGE)
}
