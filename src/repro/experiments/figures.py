"""One generator per published figure (the data series behind each plot).

Each function sweeps the paper's (mechanism × α × ε) grid on the
appropriate workload through :meth:`repro.api.ReleaseSession.evaluate_point`
and returns a :class:`FigureSeries` whose points carry the overall value
and the four place-population-stratum values — exactly the panels of the
published figures.  Routing the grid through the session means every
point reuses the cached trial-invariant statistics and every feasible
point is debited on the session's privacy ledger (the figure's total
draw-down equals the Sec-4 composition cost of its grid).
"""

from __future__ import annotations

from repro.api.session import ReleaseSession
from repro.core.params import EREEParams
from repro.experiments.config import MECHANISM_NAMES, ExperimentConfig
from repro.experiments.runner import FigureSeries
from repro.experiments.workloads import (
    RANKING_1,
    RANKING_2,
    WORKLOAD_1,
    WORKLOAD_2,
    WORKLOAD_3,
)
from repro.util import derive_seed


def _grid_points(
    session: ReleaseSession,
    workload,
    metric: str,
    epsilons,
    alphas,
    delta: float,
    n_trials: int,
    tag: str,
    trials_batch: int | None = None,
):
    points = []
    for mechanism in MECHANISM_NAMES:
        for alpha in alphas:
            for epsilon in epsilons:
                params = EREEParams(alpha=alpha, epsilon=epsilon, delta=delta)
                seed = derive_seed(
                    session.config.seed,
                    f"{tag}:{mechanism}:{alpha}:{epsilon}",
                )
                points.append(
                    session.evaluate_point(
                        workload,
                        mechanism,
                        params,
                        metric=metric,
                        n_trials=n_trials,
                        seed=seed,
                        batch_size=trials_batch,
                    )
                )
    return points


def figure1(session: ReleaseSession, config: ExperimentConfig | None = None) -> FigureSeries:
    """Figure 1: L1 error ratio, Workload 1 (establishment attrs only)."""
    config = config or session.config
    points = _grid_points(
        session,
        WORKLOAD_1,
        "l1-ratio",
        config.epsilons_standard,
        config.alphas,
        config.delta,
        config.n_trials,
        "fig1",
        config.trials_batch,
    )
    return FigureSeries(
        name="figure-1",
        title="L1 Error Ratio - Place x Industry x Ownership "
        "(No Worker Attributes)",
        metric="l1-ratio",
        points=tuple(points),
    )


def figure2(session: ReleaseSession, config: ExperimentConfig | None = None) -> FigureSeries:
    """Figure 2: Spearman correlation, Ranking 1 (employment counts)."""
    config = config or session.config
    points = _grid_points(
        session,
        RANKING_1.workload,
        "spearman",
        config.epsilons_standard,
        config.alphas,
        config.delta,
        config.n_trials,
        "fig2",
        config.trials_batch,
    )
    return FigureSeries(
        name="figure-2",
        title="Ranking Correlation of Employment Counts - "
        "Place x Industry x Ownership",
        metric="spearman",
        points=tuple(points),
    )


def figure3(session: ReleaseSession, config: ExperimentConfig | None = None) -> FigureSeries:
    """Figure 3: L1 ratio for single (sex x education) queries (Workload 2)."""
    config = config or session.config
    points = _grid_points(
        session,
        WORKLOAD_2,
        "l1-ratio",
        config.epsilons_standard,
        config.alphas,
        config.delta,
        config.n_trials,
        "fig3",
        config.trials_batch,
    )
    return FigureSeries(
        name="figure-3",
        title="L1 Error Ratio - Average L1 for a Single (Sex x Education) "
        "Query on the Workplace Marginal",
        metric="l1-ratio",
        points=tuple(points),
    )


def figure4(session: ReleaseSession, config: ExperimentConfig | None = None) -> FigureSeries:
    """Figure 4: L1 ratio for the full worker-attribute marginal (Workload 3)."""
    config = config or session.config
    points = _grid_points(
        session,
        WORKLOAD_3,
        "l1-ratio",
        config.epsilons_extended,
        config.alphas,
        config.delta,
        config.n_trials,
        "fig4",
        config.trials_batch,
    )
    return FigureSeries(
        name="figure-4",
        title="L1 Error Ratio - Average L1 for All (Sex x Education) "
        "Queries on the Workplace Marginal",
        metric="l1-ratio",
        points=tuple(points),
    )


def figure5(session: ReleaseSession, config: ExperimentConfig | None = None) -> FigureSeries:
    """Figure 5: Spearman correlation, Ranking 2 (females with college)."""
    config = config or session.config
    points = _grid_points(
        session,
        RANKING_2.workload,
        "spearman",
        config.epsilons_standard,
        config.alphas,
        config.delta,
        config.n_trials,
        "fig5",
        config.trials_batch,
    )
    return FigureSeries(
        name="figure-5",
        title="Ranking Correlation of Employment Counts - Females with "
        "College Degrees",
        metric="spearman",
        points=tuple(points),
    )


def finding6(
    session: ReleaseSession,
    config: ExperimentConfig | None = None,
    metric: str = "l1-ratio",
) -> FigureSeries:
    """Finding 6: node-DP Truncated Laplace across θ and ε on Workload 1."""
    config = config or session.config
    points = []
    for theta in config.thetas:
        for epsilon in config.epsilons_standard:
            seed = derive_seed(session.config.seed, f"finding6:{theta}:{epsilon}")
            points.append(
                session.evaluate_point(
                    WORKLOAD_1,
                    "truncated-laplace",
                    metric=metric,
                    n_trials=config.n_trials,
                    seed=seed,
                    batch_size=config.trials_batch,
                    theta=theta,
                    epsilon=epsilon,
                )
            )
    return FigureSeries(
        name="finding-6",
        title="Truncated Laplace (node DP) on Workload 1, by theta",
        metric=metric,
        points=tuple(points),
    )
