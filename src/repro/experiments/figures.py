"""One generator per published figure (the data series behind each plot).

Each function builds the paper's (mechanism × α × ε) grid as a
:class:`~repro.engine.plan.SweepPlan` and submits it to the sweep engine
(:func:`repro.engine.sweep.run_plan`), which evaluates the points
through :meth:`repro.api.ReleaseSession.evaluate_point_outcome` over the
session's cached trial-invariant statistics.  The engine adds three
things the old per-point loop could not do:

- **parallelism** — pass ``executor=``/``workers=`` to fan the grid over
  a thread or process pool; every point carries its own derived seed, so
  the series is bit-identical to the serial run;
- **resumability** — pass ``store=`` (a
  :class:`~repro.engine.store.ResultStore`) to persist each point under
  its content hash; with ``resume=True`` a re-run recomputes only
  missing points;
- **exact accounting** — the spend records of all computed feasible
  points merge into the session's privacy ledger in plan order (the
  figure's total draw-down equals the Sec-4 composition cost of its
  grid, as before); cached points debit nothing.
"""

from __future__ import annotations

from repro.api.session import ReleaseSession
from repro.engine.plan import figure_plan
from repro.engine.points import FigureSeries
from repro.engine.sweep import run_plan
from repro.experiments.config import ExperimentConfig

__all__ = [
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "finding6",
    "run_figure",
]


def run_figure(
    session: ReleaseSession,
    name: str,
    config: ExperimentConfig | None = None,
    *,
    metric: str | None = None,
    executor=None,
    workers: int | None = None,
    store=None,
    resume: bool = False,
    fused: bool | str = False,
    claim: bool = False,
    claim_ttl_s: float | None = None,
) -> FigureSeries:
    """Plan and execute one figure's sweep through the engine.

    ``config`` overrides the grids/trial count (defaults to the
    session's); the snapshot fingerprint and seed base always come from
    the *session*, whose data the points are actually computed on.
    ``fused=True`` (or ``"group"``) shares one unit-noise draw per
    (mechanism, α) group; ``fused="family"`` shares one draw per
    mechanism's whole α×ε grid (statistically equivalent, different RNG
    streams, distinct result keys); the default reproduces the
    historical figures bit-for-bit.
    """
    config = config or session.config
    plan = figure_plan(
        name,
        config,
        fingerprint=session.snapshot_fingerprint,
        seed=session.config.seed,
        metric=metric,
    )
    outcome = run_plan(
        plan,
        session,
        executor=executor,
        workers=workers,
        store=store,
        resume=resume,
        fused=fused,
        claim=claim,
        claim_ttl_s=claim_ttl_s,
    )
    return outcome.series


def figure1(
    session: ReleaseSession,
    config: ExperimentConfig | None = None,
    **engine_options,
) -> FigureSeries:
    """Figure 1: L1 error ratio, Workload 1 (establishment attrs only)."""
    return run_figure(session, "figure-1", config, **engine_options)


def figure2(
    session: ReleaseSession,
    config: ExperimentConfig | None = None,
    **engine_options,
) -> FigureSeries:
    """Figure 2: Spearman correlation, Ranking 1 (employment counts)."""
    return run_figure(session, "figure-2", config, **engine_options)


def figure3(
    session: ReleaseSession,
    config: ExperimentConfig | None = None,
    **engine_options,
) -> FigureSeries:
    """Figure 3: L1 ratio for single (sex x education) queries (Workload 2)."""
    return run_figure(session, "figure-3", config, **engine_options)


def figure4(
    session: ReleaseSession,
    config: ExperimentConfig | None = None,
    **engine_options,
) -> FigureSeries:
    """Figure 4: L1 ratio for the full worker-attribute marginal (Workload 3)."""
    return run_figure(session, "figure-4", config, **engine_options)


def figure5(
    session: ReleaseSession,
    config: ExperimentConfig | None = None,
    **engine_options,
) -> FigureSeries:
    """Figure 5: Spearman correlation, Ranking 2 (females with college)."""
    return run_figure(session, "figure-5", config, **engine_options)


def finding6(
    session: ReleaseSession,
    config: ExperimentConfig | None = None,
    metric: str = "l1-ratio",
    **engine_options,
) -> FigureSeries:
    """Finding 6: node-DP Truncated Laplace across θ and ε on Workload 1."""
    return run_figure(session, "finding-6", config, metric=metric, **engine_options)
