"""Experiment harness regenerating every table and figure of Sec 10.

- :mod:`repro.experiments.config` — parameter grids matching the paper;
- :mod:`repro.experiments.workloads` — Workloads 1–3 and Rankings 1–2;
- :mod:`repro.experiments.runner` — cached workload statistics and the
  trial loop producing error-ratio and Spearman series;
- :mod:`repro.experiments.figures` — one function per figure (1–5), the
  Finding-6 Truncated-Laplace comparison, and the design ablations;
- :mod:`repro.experiments.tables` — Tables 1 and 2, plus the empirical
  session summary (Table 3);
- :mod:`repro.experiments.report` — ASCII rendering of the series.

The snapshot/caching machinery lives behind the
:class:`repro.api.ReleaseSession` facade; ``ExperimentContext`` is a
deprecated alias of it.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    finding6,
)
from repro.experiments.runner import ExperimentContext, WorkloadStatistics
from repro.experiments.tables import table1_text, table2_rows, table3_rows
from repro.experiments.workloads import (
    RANKING_1,
    RANKING_2,
    WORKLOAD_1,
    WORKLOAD_2,
    WORKLOAD_3,
    Ranking,
    Workload,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentContext",
    "WorkloadStatistics",
    "Workload",
    "Ranking",
    "WORKLOAD_1",
    "WORKLOAD_2",
    "WORKLOAD_3",
    "RANKING_1",
    "RANKING_2",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "finding6",
    "table1_text",
    "table2_rows",
    "table3_rows",
]
