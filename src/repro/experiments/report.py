"""Rendering figure series as the printed rows the paper's plots encode.

Each figure becomes one table per panel (overall + the four strata),
with one row per (mechanism, α) series and one column per ε — the same
series a reader traces in the published plots.
"""

from __future__ import annotations

import math

from repro.experiments.runner import FigureSeries, SeriesPoint
from repro.metrics.strata import STRATUM_LABELS
from repro.util import format_float, format_table

PANELS = ("overall",) + STRATUM_LABELS


def _point_value(point: SeriesPoint, panel_index: int) -> float:
    if panel_index == 0:
        return point.overall
    return point.by_stratum[panel_index - 1]


def _series_key(point: SeriesPoint) -> tuple:
    if point.theta is not None:
        return (point.mechanism, f"theta={point.theta}")
    return (point.mechanism, f"alpha={point.alpha}")


def render_panel(series: FigureSeries, panel_index: int) -> str:
    """One panel (overall or a stratum) as an ε-column table."""
    epsilons = sorted({p.epsilon for p in series.points})
    keys = []
    for point in series.points:
        key = _series_key(point)
        if key not in keys:
            keys.append(key)

    value_of = {}
    for point in series.points:
        value_of[(_series_key(point), point.epsilon)] = _point_value(
            point, panel_index
        )

    rows = []
    for key in keys:
        row = [key[0], key[1]]
        for epsilon in epsilons:
            value = value_of.get((key, epsilon), float("nan"))
            row.append("-" if isinstance(value, float) and math.isnan(value) else format_float(value))
        rows.append(row)
    headers = ["mechanism", "series"] + [f"eps={e:g}" for e in epsilons]
    title = f"{series.title} [{PANELS[panel_index]}] ({series.metric})"
    return format_table(headers=headers, rows=rows, title=title)


def render_figure(series: FigureSeries, panels: tuple[int, ...] = (0, 1, 2, 3, 4)) -> str:
    """All requested panels of a figure, separated by blank lines."""
    return "\n\n".join(render_panel(series, panel) for panel in panels)


def summarize_finding(series: FigureSeries, epsilon: float, alpha: float) -> dict:
    """The (overall) values of every mechanism at one grid point."""
    values = {}
    for point in series.points:
        if point.epsilon == epsilon and point.alpha == alpha:
            values[point.mechanism] = point.overall
    return values
