"""Shape-recovery attack on input noise infusion (Sec 5.2, attack 1).

Target: an establishment ``w`` isolated by its workplace cell ``v_W``.
The published marginal over ``V_I ∪ V_W`` then exposes, for every worker
cell ``c``, the value ``f_w · h(w, c)`` (provided the true count exceeds
the small-cell limit).  The unknown common factor ``f_w`` cancels in
ratios, so the attacker reads off the establishment's workforce *shape*

    h(w, c) / |w|  =  h*(w, c) / Σ_c' h*(w, c')

exactly — violating the employer shape requirement (Definition 4.3).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.attacks.targets import IsolatedEstablishment
from repro.db.histogram import establishment_histograms
from repro.db.join import WorkerFull
from repro.sdl.noise_infusion import InputNoiseInfusion


def resolve_histograms(
    worker_full: WorkerFull,
    sdl: InputNoiseInfusion,
    worker_attrs: Sequence[str],
    true_histograms=None,
    published_histograms=None,
):
    """Fill in the (true, fuzzed) per-establishment histogram matrices.

    The single place where attack entry points default their shared
    tabulations: pass precomputed matrices through unchanged, tabulate
    from the snapshot otherwise.
    """
    if true_histograms is None:
        true_histograms = establishment_histograms(worker_full, worker_attrs)
    if published_histograms is None:
        published_histograms = sdl.protected_histograms(
            worker_full, worker_attrs
        )
    return true_histograms, published_histograms


@dataclass(frozen=True)
class ShapeAttackResult:
    """Outcome of one shape-recovery attempt.

    ``recovered_shape`` and ``true_shape`` are distributions over the
    worker-attribute cells.  ``usable`` is False when small-cell
    replacement perturbed at least one nonzero cell (the attack's
    precondition fails); ``max_shape_error`` is the L∞ distance between
    recovered and true shapes.
    """

    target: IsolatedEstablishment
    recovered_shape: np.ndarray
    true_shape: np.ndarray
    usable: bool

    @property
    def max_shape_error(self) -> float:
        return float(np.abs(self.recovered_shape - self.true_shape).max())

    @property
    def exact(self) -> bool:
        return self.usable and self.max_shape_error < 1e-9


def shape_attack(
    worker_full: WorkerFull,
    sdl: InputNoiseInfusion,
    target: IsolatedEstablishment,
    worker_attrs: Sequence[str],
    true_histograms=None,
    published_histograms=None,
) -> ShapeAttackResult:
    """Recover ``target``'s workforce shape from its published SDL counts.

    The attacker observes the fuzzed histogram row of the isolated
    establishment (what the published ``V_I ∪ V_W`` marginal reveals for
    its cell) and normalizes it.

    ``true_histograms``/``published_histograms`` optionally carry the
    precomputed per-establishment histogram matrices; pass them when
    attacking many targets so the snapshot tabulates once per sweep
    instead of once per target (:func:`shape_attack_sweep` does this).
    """
    true_histograms, published_histograms = resolve_histograms(
        worker_full, sdl, worker_attrs, true_histograms, published_histograms
    )
    published = published_histograms[target.establishment].toarray().ravel()
    true = (
        true_histograms[target.establishment]
        .toarray()
        .ravel()
        .astype(np.float64)
    )

    # Precondition: every nonzero true cell is above the small-cell limit,
    # otherwise the published value was replaced and ratios no longer cancel.
    usable = bool(np.all((true == 0) | (true >= sdl.small_cells.limit)))

    published_total = published.sum()
    recovered = (
        published / published_total
        if published_total > 0
        else np.zeros_like(published)
    )
    true_total = true.sum()
    true_shape = true / true_total if true_total > 0 else np.zeros_like(true)
    return ShapeAttackResult(
        target=target,
        recovered_shape=recovered,
        true_shape=true_shape,
        usable=usable,
    )


def shape_attack_sweep(
    worker_full: WorkerFull,
    sdl: InputNoiseInfusion,
    targets: Sequence[IsolatedEstablishment],
    worker_attrs: Sequence[str],
    true_histograms=None,
    published_histograms=None,
) -> list[ShapeAttackResult]:
    """Run the shape attack against every target with shared tabulations.

    The true and fuzzed histogram matrices are computed once for the
    whole sweep; each target then only slices its own row, so attacking
    all isolated establishments costs two tabulations instead of 2·n.
    Pass precomputed matrices to share them with other sweeps (e.g. a
    size sweep on the same snapshot).
    """
    true_histograms, published_histograms = resolve_histograms(
        worker_full, sdl, worker_attrs, true_histograms, published_histograms
    )
    return [
        shape_attack(
            worker_full,
            sdl,
            target,
            worker_attrs,
            true_histograms=true_histograms,
            published_histograms=published_histograms,
        )
        for target in targets
    ]
