"""Finding attackable targets: establishments isolated in a workplace cell.

All three Sec 5.2 attacks require a workplace-attribute combination
``v_W`` matched by exactly one establishment.  The number of
establishments per cell is not published, but combinations that isolate
one establishment exist and an informed adversary can know them (paper,
footnote 6); this helper enumerates them from the confidential data, as
the attacker's background knowledge.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.db.join import WorkerFull
from repro.db.query import Marginal, per_establishment_counts


@dataclass(frozen=True)
class IsolatedEstablishment:
    """An establishment uniquely identified by a workplace cell."""

    establishment: int
    workplace_cell: int
    workplace_values: tuple
    size: int


def isolated_establishments(
    worker_full: WorkerFull,
    workplace_attrs: Sequence[str],
    min_size: int = 1,
) -> list[IsolatedEstablishment]:
    """All establishments alone in their ``workplace_attrs`` cell.

    ``min_size`` filters out tiny establishments (attacks on size/shape
    are most meaningful against workforces above the small-cell limit).
    """
    marginal = Marginal(worker_full.table.schema, workplace_attrs)
    cell_index = marginal.cell_index(worker_full.table)
    stats = per_establishment_counts(
        cell_index, worker_full.establishment, marginal.n_cells
    )
    lonely_cells = np.flatnonzero(stats.n_establishments == 1)

    sizes = worker_full.establishment_sizes()
    # Map each cell to one of its establishments in a single O(jobs) pass
    # (for a lonely cell that establishment is unique by definition).
    cell_establishment = np.full(marginal.n_cells, -1, dtype=np.int64)
    cell_establishment[cell_index] = worker_full.establishment
    results = []
    for cell in lonely_cells:
        establishment = int(cell_establishment[cell])
        size = int(sizes[establishment])
        if size >= min_size:
            results.append(
                IsolatedEstablishment(
                    establishment=establishment,
                    workplace_cell=int(cell),
                    workplace_values=marginal.cell_values(int(cell)),
                    size=size,
                )
            )
    return results
