"""Worker re-identification via preserved zeros (Sec 5.2, attack 3).

Target: an establishment ``w`` isolated by its workplace cell, where the
attacker knows exactly one employee has some attribute value ``x*`` (the
paper's example: the only employee with a college degree).  Because input
noise infusion publishes zero cells as exact zeros, the single positive
published cell among those with ``x*`` pinpoints the employee's remaining
attribute values — violating the individual requirement (Definition 4.1).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.attacks.targets import IsolatedEstablishment
from repro.db.histogram import establishment_histograms
from repro.db.join import WorkerFull
from repro.db.query import Marginal
from repro.sdl.noise_infusion import InputNoiseInfusion


@dataclass(frozen=True)
class ReidentificationResult:
    """Outcome of one re-identification attempt.

    ``candidate_profiles`` lists the decoded worker-attribute tuples the
    attacker cannot rule out; re-identification succeeds when exactly one
    remains and it matches the victim's true profile.
    """

    target: IsolatedEstablishment
    known_attribute: str
    known_value: object
    candidate_profiles: tuple[tuple, ...]
    true_profile: tuple

    @property
    def succeeded(self) -> bool:
        return (
            len(self.candidate_profiles) == 1
            and self.candidate_profiles[0] == self.true_profile
        )


def unique_value_workers(
    worker_full: WorkerFull,
    target: IsolatedEstablishment,
    attribute: str,
) -> list[object]:
    """Values of ``attribute`` held by exactly one worker at the target."""
    rows = np.flatnonzero(worker_full.establishment == target.establishment)
    codes = worker_full.table.column(attribute)[rows]
    schema_attribute = worker_full.table.schema[attribute]
    counts = np.bincount(codes, minlength=schema_attribute.size)
    return [schema_attribute.decode(int(c)) for c in np.flatnonzero(counts == 1)]


def reidentification_attack(
    worker_full: WorkerFull,
    sdl: InputNoiseInfusion,
    target: IsolatedEstablishment,
    worker_attrs: Sequence[str],
    known_attribute: str,
    known_value,
) -> ReidentificationResult:
    """Infer the remaining attributes of the unique ``known_value`` holder.

    The attacker scans the published worker-attribute cells of the
    isolated establishment and keeps the profiles consistent with a
    positive published count for ``known_attribute = known_value``.
    """
    if known_attribute not in worker_attrs:
        raise ValueError(
            f"{known_attribute!r} must be part of the published marginal "
            f"attributes {tuple(worker_attrs)}"
        )
    marginal = Marginal(worker_full.table.schema, worker_attrs)
    published = (
        sdl.protected_histograms(worker_full, worker_attrs)[target.establishment]
        .toarray()
        .ravel()
    )

    candidates = []
    position = list(worker_attrs).index(known_attribute)
    for cell in np.flatnonzero(published > 0):
        values = marginal.cell_values(int(cell))
        if values[position] == known_value:
            candidates.append(values)

    # The victim's true profile, for assessing attack success.
    rows = np.flatnonzero(worker_full.establishment == target.establishment)
    true_cells = marginal.cell_index(worker_full.table)[rows]
    attribute_codes = worker_full.table.column(known_attribute)[rows]
    known_code = worker_full.table.schema[known_attribute].code(known_value)
    victim_rows = rows[attribute_codes == known_code]
    if len(victim_rows) != 1:
        raise ValueError(
            f"attack precondition violated: {len(victim_rows)} workers at the "
            f"target hold {known_attribute}={known_value!r}, expected exactly 1"
        )
    victim_cell = int(true_cells[attribute_codes == known_code][0])
    true_profile = marginal.cell_values(victim_cell)

    return ReidentificationResult(
        target=target,
        known_attribute=known_attribute,
        known_value=known_value,
        candidate_profiles=tuple(candidates),
        true_profile=true_profile,
    )
