"""Size-recovery attack on input noise infusion (Sec 5.2, attack 2).

Target: an establishment ``w`` isolated by its workplace cell, where the
attacker additionally knows one cell's true count (say, 100 males aged
20–25 — e.g. an employee of a competitor who learned one line of the
org chart).  Dividing the published count by the known true count
reconstructs the secret distortion factor ``f_w``; dividing the published
total by ``f_w`` then reveals total employment exactly — violating the
employer size requirement (Definition 4.2).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.attacks.shape_attack import resolve_histograms
from repro.attacks.targets import IsolatedEstablishment
from repro.db.join import WorkerFull
from repro.sdl.noise_infusion import InputNoiseInfusion


@dataclass(frozen=True)
class SizeAttackResult:
    """Outcome of one size-recovery attempt."""

    target: IsolatedEstablishment
    known_cell: int
    recovered_factor: float
    true_factor: float
    recovered_size: float
    true_size: int
    usable: bool

    @property
    def factor_error(self) -> float:
        return abs(self.recovered_factor - self.true_factor)

    @property
    def size_error(self) -> float:
        return abs(self.recovered_size - self.true_size)

    @property
    def exact(self) -> bool:
        return self.usable and self.size_error < 1e-6


def size_attack(
    worker_full: WorkerFull,
    sdl: InputNoiseInfusion,
    target: IsolatedEstablishment,
    worker_attrs: Sequence[str],
    known_cell: int | None = None,
    true_histograms=None,
    published_histograms=None,
) -> SizeAttackResult:
    """Recover ``target``'s total employment given one known true cell.

    ``known_cell`` is the worker-attribute cell whose true count the
    attacker knows; by default the largest cell (the most plausible to be
    public, e.g. from a press mention).  The attack needs that cell's
    published value to be an actual fuzzed count (above the small-cell
    limit), and an exact total additionally needs no small-cell
    replacement among the other cells.

    ``true_histograms``/``published_histograms`` optionally carry the
    precomputed per-establishment histogram matrices, shared across a
    sweep (:func:`size_attack_sweep`).
    """
    true_histograms, published_histograms = resolve_histograms(
        worker_full, sdl, worker_attrs, true_histograms, published_histograms
    )
    true = (
        true_histograms[target.establishment]
        .toarray()
        .ravel()
        .astype(np.float64)
    )
    published = published_histograms[target.establishment].toarray().ravel()
    if known_cell is None:
        known_cell = int(true.argmax())
    if true[known_cell] <= 0:
        raise ValueError(f"cell {known_cell} is empty; attacker knowledge is vacuous")

    usable = bool(
        true[known_cell] >= sdl.small_cells.limit
        and np.all((true == 0) | (true >= sdl.small_cells.limit))
    )
    recovered_factor = float(published[known_cell] / true[known_cell])
    recovered_size = float(published.sum() / recovered_factor)
    return SizeAttackResult(
        target=target,
        known_cell=known_cell,
        recovered_factor=recovered_factor,
        true_factor=float(sdl.factors[target.establishment]),
        recovered_size=recovered_size,
        true_size=target.size,
        usable=usable,
    )


def size_attack_sweep(
    worker_full: WorkerFull,
    sdl: InputNoiseInfusion,
    targets: Sequence[IsolatedEstablishment],
    worker_attrs: Sequence[str],
    true_histograms=None,
    published_histograms=None,
) -> list[SizeAttackResult]:
    """Run the size attack against every target with shared tabulations.

    As in :func:`repro.attacks.shape_attack.shape_attack_sweep`, the two
    histogram matrices tabulate once for the whole sweep, and
    precomputed matrices may be passed in to share them across sweeps.
    """
    true_histograms, published_histograms = resolve_histograms(
        worker_full, sdl, worker_attrs, true_histograms, published_histograms
    )
    return [
        size_attack(
            worker_full,
            sdl,
            target,
            worker_attrs,
            true_histograms=true_histograms,
            published_histograms=published_histograms,
        )
        for target in targets
    ]
