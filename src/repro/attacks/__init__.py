"""Inference attacks against the current SDL system (Sec 5.2).

Input noise infusion reuses one distortion factor for all cells of an
establishment and preserves zero counts.  Three attacks follow, each
implemented as an executable function returning a structured result:

- :mod:`repro.attacks.shape_attack` — recover an isolated establishment's
  workforce *shape* exactly (violates Definition 4.3);
- :mod:`repro.attacks.size_attack` — with one known true cell, recover
  the distortion factor and the establishment's *total size* exactly
  (violates Definition 4.2);
- :mod:`repro.attacks.reidentification` — use preserved zeros to infer a
  unique worker's remaining attributes (violates Definition 4.1).

The same attacks run against the paper's private mechanisms fail (the
test suite and ``examples/sdl_vulnerabilities.py`` demonstrate both
directions).
"""

from repro.attacks.reidentification import (
    ReidentificationResult,
    reidentification_attack,
)
from repro.attacks.shape_attack import (
    ShapeAttackResult,
    shape_attack,
    shape_attack_sweep,
)
from repro.attacks.size_attack import (
    SizeAttackResult,
    size_attack,
    size_attack_sweep,
)
from repro.attacks.targets import isolated_establishments

__all__ = [
    "isolated_establishments",
    "ShapeAttackResult",
    "shape_attack",
    "shape_attack_sweep",
    "SizeAttackResult",
    "size_attack",
    "size_attack_sweep",
    "ReidentificationResult",
    "reidentification_attack",
]
