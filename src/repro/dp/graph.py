"""The bipartite employer-employee graph view (Sec 6).

The ER-EE data form a bipartite graph: employer and employee nodes,
edges are jobs.  Edge-differential privacy hides one job (sufficient for
the employee requirement, insufficient for establishments); node privacy
on the employer side hides a whole establishment (sufficient but, without
a degree bound, unusable — see :mod:`repro.dp.truncation`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.join import WorkerFull
from repro.db.query import Marginal
from repro.dp.primitives import LaplaceMechanism
from repro.dp.sensitivity import marginal_sensitivity_edges


@dataclass(frozen=True)
class BipartiteView:
    """Degree structure of the worker-establishment bipartite graph."""

    establishment_degrees: np.ndarray
    n_workers: int
    n_establishments: int

    @classmethod
    def from_worker_full(cls, worker_full: WorkerFull) -> "BipartiteView":
        return cls(
            establishment_degrees=worker_full.establishment_sizes(),
            n_workers=worker_full.n_jobs,
            n_establishments=worker_full.n_establishments,
        )

    @property
    def n_edges(self) -> int:
        return int(self.establishment_degrees.sum())

    def max_degree(self) -> int:
        if self.establishment_degrees.size == 0:
            return 0
        return int(self.establishment_degrees.max())

    def to_networkx(self, worker_full: WorkerFull):
        """Materialize a networkx bipartite graph (small data / inspection).

        Worker nodes are ``("w", i)`` and establishment nodes ``("e", j)``
        with ``bipartite`` attributes 0 and 1.
        """
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(
            (("w", i) for i in range(worker_full.n_jobs)), bipartite=0
        )
        graph.add_nodes_from(
            (("e", j) for j in range(worker_full.n_establishments)), bipartite=1
        )
        graph.add_edges_from(
            (("w", i), ("e", int(worker_full.establishment[i])))
            for i in range(worker_full.n_jobs)
        )
        return graph


def edge_dp_marginal(
    worker_full: WorkerFull, marginal: Marginal, epsilon: float, seed=None
) -> np.ndarray:
    """Release a marginal under ε-edge-differential privacy.

    Each job lands in exactly one cell, so the full marginal vector has L1
    sensitivity 1 and Laplace(1/ε) noise per cell suffices.  This bounds
    employee disclosure (Def 4.1) but lets an attacker learn establishment
    sizes to ±log(1/p)/ε — the paper's argument for why edge DP fails the
    establishment requirements.
    """
    mechanism = LaplaceMechanism(
        epsilon=epsilon, sensitivity=marginal_sensitivity_edges()
    )
    true = marginal.counts(worker_full.table)
    return mechanism.release(true, seed)
