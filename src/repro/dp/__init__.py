"""Standard differential-privacy substrate (Sec 2 and Sec 6).

Contains the classical machinery the paper builds on and compares
against: the Laplace and geometric mechanisms, global sensitivity of
marginal queries, the sequential/parallel composition accountant, the
bipartite employer-employee graph view with edge-differentially-private
release, and the node-differentially-private Truncated Laplace baseline
("Finding 6": high, ε-insensitive error from truncation bias).
"""

from repro.dp.composition import PrivacyAccountant, PrivacySpent
from repro.dp.graph import BipartiteView, edge_dp_marginal
from repro.dp.primitives import (
    GeometricMechanism,
    LaplaceMechanism,
    laplace_scale,
    laplace_tail_bound,
)
from repro.dp.sensitivity import marginal_sensitivity_edges, marginal_sensitivity_nodes
from repro.dp.truncation import (
    TruncatedLaplace,
    TruncationProjection,
    TruncationResult,
)

__all__ = [
    "LaplaceMechanism",
    "GeometricMechanism",
    "laplace_scale",
    "laplace_tail_bound",
    "marginal_sensitivity_edges",
    "marginal_sensitivity_nodes",
    "PrivacyAccountant",
    "PrivacySpent",
    "BipartiteView",
    "edge_dp_marginal",
    "TruncatedLaplace",
    "TruncationResult",
    "TruncationProjection",
]
