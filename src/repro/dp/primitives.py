"""Classical differentially private noise mechanisms.

The Laplace mechanism (Definition 2.4 of the paper) releases
``q(D) + Lap(Δq/ε)^d`` and satisfies ε-differential privacy; the
two-sided geometric mechanism is its integer-valued analogue.  Both are
used as building blocks and baselines; the paper's own mechanisms live in
:mod:`repro.core`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.util import as_generator, check_fraction, check_positive


def laplace_scale(epsilon: float, sensitivity: float) -> float:
    """Noise scale λ = Δq/ε for the Laplace mechanism."""
    check_positive("epsilon", epsilon)
    check_positive("sensitivity", sensitivity)
    return sensitivity / epsilon


def laplace_tail_bound(scale: float, probability: float) -> float:
    """Magnitude m with Pr[|Lap(scale)| > m] = probability.

    Used for the paper's Sec 6 argument: with scale 1/ε the noise exceeds
    ``log(1/p)/ε`` only with probability p, so edge-DP reveals a large
    establishment's size to within a few workers.
    """
    check_positive("scale", scale)
    check_fraction("probability", probability)
    return scale * math.log(1.0 / probability)


@dataclass(frozen=True)
class LaplaceMechanism:
    """ε-DP additive Laplace noise for a query with known L1 sensitivity."""

    epsilon: float
    sensitivity: float = 1.0

    def __post_init__(self):
        check_positive("epsilon", self.epsilon)
        check_positive("sensitivity", self.sensitivity)

    @property
    def scale(self) -> float:
        return laplace_scale(self.epsilon, self.sensitivity)

    def release(self, values: np.ndarray, seed=None) -> np.ndarray:
        """Noisy answers ``values + Lap(scale)`` (vectorized)."""
        rng = as_generator(seed)
        values = np.asarray(values, dtype=np.float64)
        return values + rng.laplace(0.0, self.scale, size=values.shape)

    def expected_l1_error(self) -> float:
        """E|Lap(scale)| = scale, per released cell."""
        return self.scale

    def density(self, noise: np.ndarray) -> np.ndarray:
        """Density of the noise at ``noise`` (used by inference tests)."""
        noise = np.asarray(noise, dtype=np.float64)
        return np.exp(-np.abs(noise) / self.scale) / (2.0 * self.scale)


@dataclass(frozen=True)
class GeometricMechanism:
    """ε-DP two-sided geometric noise (integer counts stay integers).

    Adds ``X - Y`` with X, Y iid Geometric(1 - exp(-ε/Δ)); equivalently the
    discrete Laplace distribution with ratio ``exp(-ε/Δ)``.
    """

    epsilon: float
    sensitivity: float = 1.0

    def __post_init__(self):
        check_positive("epsilon", self.epsilon)
        check_positive("sensitivity", self.sensitivity)

    @property
    def ratio(self) -> float:
        """The discrete-Laplace decay ratio exp(-ε/Δ)."""
        return math.exp(-self.epsilon / self.sensitivity)

    def release(self, values: np.ndarray, seed=None) -> np.ndarray:
        rng = as_generator(seed)
        values = np.asarray(values, dtype=np.int64)
        p = 1.0 - self.ratio
        up = rng.geometric(p, size=values.shape) - 1
        down = rng.geometric(p, size=values.shape) - 1
        return values + up - down

    def expected_l1_error(self) -> float:
        """E|noise| = 2r/(1 - r^2) for ratio r."""
        r = self.ratio
        return 2.0 * r / (1.0 - r * r)
