"""Global sensitivity of marginal queries under graph neighbor notions.

In the bipartite job graph (Sec 6), *edge* neighbors differ in one job and
*node* neighbors differ in one establishment with all its jobs.  A
marginal assigns each job to exactly one cell, so:

- edge neighbors change the count vector by 1 in one cell → L1
  sensitivity 1 for the whole marginal;
- node neighbors can move an unbounded number of jobs (no a-priori degree
  bound) → unbounded sensitivity; after projecting to degree < θ the
  sensitivity is θ.
"""

from __future__ import annotations

import math

from repro.util import check_positive


def marginal_sensitivity_edges() -> float:
    """L1 sensitivity of any marginal count vector under edge neighbors."""
    return 1.0


def marginal_sensitivity_nodes(degree_bound: float | None = None) -> float:
    """L1 sensitivity under node neighbors.

    Unbounded (``inf``) without a degree bound; ``degree_bound`` after a
    truncation/projection step that enforces establishment size < bound.
    """
    if degree_bound is None:
        return math.inf
    check_positive("degree_bound", degree_bound)
    return float(degree_bound)
