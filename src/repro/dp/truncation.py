"""Node-differentially-private Truncated Laplace baseline (Sec 6, Finding 6).

Node DP (neighbors differ in one establishment with all its jobs) has
unbounded marginal sensitivity, so the standard recourse is projection:
delete establishments until every remaining one has degree below θ, after
which the marginal has sensitivity θ and Laplace(θ/ε) noise applies.

The projection removes the large establishments that dominate skewed
employment counts, so the release carries a large, ε-independent bias —
the paper measures ≥10× the SDL error at ε = 4 with little improvement at
higher ε.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.registry import BASELINE, register_mechanism
from repro.db.join import WorkerFull
from repro.db.query import Marginal
from repro.dp.primitives import LaplaceMechanism
from repro.util import as_generator, check_positive


@dataclass(frozen=True)
class TruncationResult:
    """One Truncated-Laplace release with its bias diagnostics."""

    noisy: np.ndarray
    truncated_true: np.ndarray
    true: np.ndarray
    n_establishments_removed: int
    n_jobs_removed: int

    @property
    def truncation_bias(self) -> np.ndarray:
        """Per-cell employment removed by the projection (true - truncated)."""
        return self.true - self.truncated_true


@dataclass(frozen=True)
class TruncationProjection:
    """The deterministic, trial-invariant half of a Truncated-Laplace
    release: the degree-θ projection and its marginal tabulations.
    Compute once, reuse across noise draws."""

    true: np.ndarray
    truncated_true: np.ndarray
    n_establishments_removed: int
    n_jobs_removed: int


@register_mechanism(
    "truncated-laplace",
    kind=BASELINE,
    needs_xv=False,
    description="Node-DP baseline: degree-θ truncation projection plus "
    "Laplace(θ/ε) noise (Finding 6)",
)
@dataclass(frozen=True)
class TruncatedLaplace:
    """Node-DP marginal release via degree-θ truncation plus Laplace noise.

    Establishments with total employment ≥ θ are deleted (the truncation
    projection of [32] applied to the employer side); every cell then gets
    Laplace(θ/ε) noise.
    """

    theta: int
    epsilon: float

    def __post_init__(self):
        check_positive("theta", self.theta)
        check_positive("epsilon", self.epsilon)

    def project(
        self, worker_full: WorkerFull, marginal: Marginal
    ) -> TruncationProjection:
        """Run the (deterministic) degree-θ projection and tabulate the
        true and truncated marginals."""
        sizes = worker_full.establishment_sizes()
        keep_establishment = sizes < self.theta
        keep_job = keep_establishment[worker_full.establishment]

        true = marginal.counts(worker_full.table).astype(np.float64)
        kept = worker_full.filter(keep_job)
        truncated_true = marginal.counts(kept.table).astype(np.float64)
        return TruncationProjection(
            true=true,
            truncated_true=truncated_true,
            n_establishments_removed=int((~keep_establishment).sum()),
            n_jobs_removed=int(worker_full.n_jobs - kept.n_jobs),
        )

    def release(
        self, worker_full: WorkerFull, marginal: Marginal, seed=None
    ) -> TruncationResult:
        return self.release_batch(worker_full, marginal, n_trials=None, seed=seed)

    def release_batch(
        self,
        worker_full: WorkerFull,
        marginal: Marginal,
        n_trials: int | None = 1,
        seed=None,
        projection: TruncationProjection | None = None,
    ) -> TruncationResult:
        """Release ``n_trials`` independent noisy vectors in one draw.

        The truncation projection is deterministic, so it (and the
        marginal tabulations) run once — pass a precomputed
        ``projection`` to amortize it across several draws (e.g. chunked
        trials; the noise stream does not depend on how the projection
        was obtained).  ``noisy`` is ``(n_trials, n_cells)``, or the
        single ``(n_cells,)`` vector when ``n_trials`` is None (the
        :meth:`release` behavior, same bit stream).
        """
        rng = as_generator(seed)
        if projection is None:
            projection = self.project(worker_full, marginal)
        truncated_true = projection.truncated_true

        mechanism = LaplaceMechanism(epsilon=self.epsilon, sensitivity=self.theta)
        if n_trials is None:
            noisy = mechanism.release(truncated_true, rng)
        else:
            if n_trials < 1:
                raise ValueError(f"n_trials must be >= 1, got {n_trials}")
            noisy = truncated_true + rng.laplace(
                0.0, mechanism.scale, size=(n_trials, truncated_true.size)
            )
        return TruncationResult(
            noisy=noisy,
            truncated_true=truncated_true,
            true=projection.true,
            n_establishments_removed=projection.n_establishments_removed,
            n_jobs_removed=projection.n_jobs_removed,
        )
