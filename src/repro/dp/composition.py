"""Privacy-loss accounting: sequential and parallel composition.

Theorem 2.1 (sequential): releasing M1(D) and M2(D) on the same data
costs ε1 + ε2 (and δ1 + δ2 for approximate variants).  Parallel
composition: releases on disjoint record sets cost max(ε1, ε2).

The accountant tracks charges against a budget and raises once the budget
would be exhausted, mirroring the paper's "privacy budget" usage.  The
ER-EE definitions compose by the same rules (Thms 7.3–7.5), with the
disjointness condition refined in :mod:`repro.core.composition`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class PrivacyBudgetExceeded(RuntimeError):
    """Raised when a charge would push spent privacy loss over the budget."""


@dataclass(frozen=True)
class PrivacySpent:
    """Total privacy loss spent so far."""

    epsilon: float
    delta: float

    def __add__(self, other: "PrivacySpent") -> "PrivacySpent":
        return PrivacySpent(self.epsilon + other.epsilon, self.delta + other.delta)

    def maximum(self, other: "PrivacySpent") -> "PrivacySpent":
        """Element-wise max, the parallel-composition combination rule."""
        return PrivacySpent(
            max(self.epsilon, other.epsilon), max(self.delta, other.delta)
        )


@dataclass
class PrivacyAccountant:
    """Tracks sequential charges against an (ε, δ) budget.

    ``charge`` records one release on the full dataset.  ``charge_parallel``
    records a family of releases on *disjoint* record sets and costs only
    the maximum of the family; the caller asserts disjointness (the
    dataset-aware checks live in :mod:`repro.core.composition`).
    """

    epsilon_budget: float
    delta_budget: float = 0.0
    _charges: list[PrivacySpent] = field(default_factory=list)

    def spent(self) -> PrivacySpent:
        total = PrivacySpent(0.0, 0.0)
        for charge in self._charges:
            total = total + charge
        return total

    def remaining(self) -> PrivacySpent:
        spent = self.spent()
        return PrivacySpent(
            self.epsilon_budget - spent.epsilon, self.delta_budget - spent.delta
        )

    def _admit(self, charge: PrivacySpent) -> PrivacySpent:
        spent = self.spent() + charge
        tolerance = 1e-12
        if (
            spent.epsilon > self.epsilon_budget + tolerance
            or spent.delta > self.delta_budget + tolerance
        ):
            raise PrivacyBudgetExceeded(
                f"charge {charge} would exceed budget "
                f"(ε={self.epsilon_budget}, δ={self.delta_budget}); "
                f"already spent {self.spent()}"
            )
        self._charges.append(charge)
        return charge

    def charge(self, epsilon: float, delta: float = 0.0) -> PrivacySpent:
        """Sequential charge for one release on the full dataset."""
        return self._admit(PrivacySpent(epsilon, delta))

    def charge_parallel(self, charges) -> PrivacySpent:
        """Charge for releases on disjoint record sets: max over the family."""
        combined = PrivacySpent(0.0, 0.0)
        for epsilon, delta in charges:
            combined = combined.maximum(PrivacySpent(epsilon, delta))
        return self._admit(combined)
