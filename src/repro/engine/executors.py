"""Pluggable sweep executors: the engine's adapter over ``repro.runtime``.

An executor maps a *task function* over a list of items and returns the
results **in item order**, whatever order the work actually ran in.
Task functions are module-level callables of ``(session, item)`` — they
must be picklable by reference so the process executor can ship them to
workers.  Placement itself — thread pools, round-robin process shards,
crash recovery, worker-count policy — lives in :mod:`repro.runtime`;
this module contributes only what is sweep-specific:

- the ``(session, item)`` calling convention and the
  :class:`Executor` protocol the engine and CLI resolve against;
- :func:`_shard_session` — how a worker process rebuilds (and caches)
  its :class:`~repro.api.session.ReleaseSession`, opening the parent's
  persisted snapshot from a :class:`~repro.scenarios.SnapshotStore`
  when one exists instead of regenerating the economy;
- the guard against process-parallelising a session built over an
  explicitly provided dataset (workers rebuild from config, which would
  silently swap in a synthetic snapshot).

Three implementations share the protocol:

- :class:`SerialExecutor` — the reference implementation: a
  :class:`~repro.runtime.SerialDriver` loop over the parent session.
  Every other executor must be bit-identical to it (each item's
  randomness is self-seeded, so execution order and placement cannot
  change results).
- :class:`ThreadExecutor` — a :class:`~repro.runtime.ThreadDriver`
  sharing the parent session.  The session's statistic caches are
  lock-guarded and the NumPy kernels release the GIL for large draws,
  so threads help on wide grids with zero per-worker setup cost.
- :class:`ProcessExecutor` — a :class:`~repro.runtime.ProcessDriver`:
  true parallelism with bounded crash recovery (a worker killed
  mid-sweep gets its shard resubmitted, bit-identically, instead of
  aborting the run — ``executor.driver.stats`` records what happened).
  Ledger debits never happen in workers — task functions return spend
  records and the parent merges them, so privacy accounting stays
  exact under parallelism.
"""

from __future__ import annotations

import os  # noqa: F401  (tests monkeypatch executors.os.cpu_count)
from collections.abc import Callable, Sequence
from typing import Protocol, runtime_checkable

from repro.runtime.drivers import (
    ProcessDriver,
    SerialDriver,
    ThreadDriver,
    run_sharded,
)
from repro.runtime.policy import MAX_WORKERS_ENV, default_workers
from repro.runtime.taskset import ContextSpec, TaskSet

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "EXECUTOR_NAMES",
    "resolve_executor",
    "default_workers",
    "run_sharded",
    "MAX_WORKERS_ENV",
]


@runtime_checkable
class Executor(Protocol):
    """The executor protocol: ordered map of a task over items."""

    name: str
    workers: int

    def map(self, fn: Callable, session, items: Sequence) -> list:
        """Apply ``fn(session, item)`` to every item; results in order."""
        ...


def _session_taskset(fn: Callable, session, items: Sequence) -> TaskSet:
    """Describe an in-process sweep map: the parent session *is* the context."""
    return TaskSet(
        fn=fn, items=tuple(items), context=ContextSpec.of_value(session)
    )


class SerialExecutor:
    """Run every item in the calling thread against the parent session."""

    name = "serial"
    workers = 1

    def map(self, fn: Callable, session, items: Sequence) -> list:
        return SerialDriver().run(_session_taskset(fn, session, items))

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ThreadExecutor:
    """A thread pool over the parent session (shared caches, no pickling)."""

    name = "thread"

    def __init__(self, workers: int = 2):
        self.driver = ThreadDriver(workers)
        self.workers = self.driver.workers

    def map(self, fn: Callable, session, items: Sequence) -> list:
        return self.driver.run(_session_taskset(fn, session, items))

    def __repr__(self) -> str:
        return f"ThreadExecutor(workers={self.workers})"


def _shard_session(config, worker_attrs, store_spec):
    """Build (or reuse) this worker process's session for ``config``.

    One session per (config, worker_attrs, snapshot source) per process:
    a worker that receives several shards of the same sweep regenerates
    nothing.  With ``store_spec`` (the parent session's
    :class:`~repro.scenarios.SnapshotStore` described by
    :meth:`~repro.scenarios.SnapshotStore.spec` — a plain picklable
    dict naming the backend, so local roots reattach and remote
    backends reconnect) the worker *opens* the parent's persisted
    snapshot as a read-only memory map instead of regenerating it — the
    parent saved it before the pool spun up, so workers share physical
    pages and pay only the SDL fit.  Either way the session is
    bit-identical to the parent's (same fingerprint ⇒ same bytes), and
    its ledger stays untouched — spend records flow back to the parent
    for merging.
    """
    global _WORKER_SESSION
    key = (repr(config), tuple(worker_attrs), repr(store_spec))
    cached = _WORKER_SESSION
    if cached is not None and cached[0] == key:
        return cached[1]
    from repro.api.session import ReleaseSession

    store = None
    if store_spec is not None:
        from repro.scenarios.store import SnapshotStore

        if isinstance(store_spec, dict):
            store = SnapshotStore.from_spec(store_spec)
        else:  # a bare root path (older callers)
            store = SnapshotStore(store_spec)
    session = ReleaseSession(
        config, worker_attrs=worker_attrs, snapshot_store=store
    )
    _WORKER_SESSION = (key, session)
    return session


_WORKER_SESSION: tuple | None = None


def _context_passthrough(context=None):
    """Identity ``make_context`` for callers shipping the context itself."""
    return context


class ProcessExecutor:
    """A process pool; workers rebuild the session from its config once.

    ``start_method`` picks the :mod:`multiprocessing` context (``None``
    uses the platform default — ``fork`` on Linux, which inherits the
    imported modules and makes worker start cheap).  Items are sharded
    round-robin so every worker gets an even slice of the grid in one
    submission, amortizing the snapshot rebuild across its whole shard.

    The underlying :class:`~repro.runtime.ProcessDriver` survives
    worker crashes: a shard whose worker died (OOM, segfault,
    ``kill -9``) is resubmitted — bounded by ``max_shard_retries`` —
    and the retried points are bit-identical because every item is
    self-seeded.  ``self.driver.stats`` records attempts and retried
    task indices after each :meth:`map`.
    """

    name = "process"

    def __init__(
        self,
        workers: int = 2,
        start_method: str | None = None,
        *,
        max_shard_retries: int = 1,
    ):
        self.driver = ProcessDriver(
            workers=workers,
            start_method=start_method,
            max_shard_retries=max_shard_retries,
        )
        self.workers = self.driver.workers
        self.start_method = start_method

    def map(self, fn: Callable, session, items: Sequence) -> list:
        if getattr(session, "dataset_provided", False):
            raise ValueError(
                "ProcessExecutor cannot run a session built over an "
                "explicitly provided dataset: workers rebuild the "
                "session from its config, which would regenerate a "
                "different (synthetic) snapshot and silently change "
                "results; use ThreadExecutor or SerialExecutor instead"
            )
        items = list(items)
        if len(items) <= 1 or self.workers == 1:
            # Inline runs reuse the parent session: rebuilding one in
            # the calling process would pay the snapshot cost for
            # nothing.
            return SerialExecutor().map(fn, session, items)
        # Where workers should open the snapshot from.  A session built
        # over a SnapshotStore has already persisted its snapshot (the
        # store saves on first generation), so workers map the stored
        # bytes instead of regenerating the economy per process.  The
        # store ships as its picklable backend spec — a remote-backed
        # store reconnects in the worker and shares the same local
        # cache directory.
        store = getattr(session, "snapshot_store", None)
        store_spec = None if store is None else store.spec()
        taskset = TaskSet(
            fn=fn,
            items=tuple(items),
            context=ContextSpec(
                make=_shard_session,
                args=(session.config, session.worker_attrs, store_spec),
            ),
        )
        return self.driver.run(taskset)

    def __repr__(self) -> str:
        return f"ProcessExecutor(workers={self.workers})"


EXECUTOR_NAMES = ("serial", "thread", "process")

_POOL_FACTORIES = {
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def resolve_executor(executor=None, workers: int | None = None):
    """Normalize (executor, workers) knobs into an executor — or None.

    ``None`` means "no parallelism requested": callers with a historical
    serial path (e.g. :meth:`~repro.api.ReleaseSession.run_grid`) keep
    it, and the sweep engine substitutes :class:`SerialExecutor`.
    Accepts an executor instance (returned as-is), one of
    ``EXECUTOR_NAMES`` (a pool name without a worker count gets
    :func:`~repro.runtime.default_workers`), or just a worker count
    (> 1 selects processes — the only executor with true CPU
    parallelism).
    """
    if executor is None:
        if workers is None or workers <= 1:
            return None
        return ProcessExecutor(workers=workers)
    if isinstance(executor, str):
        if executor == "serial":
            return SerialExecutor()
        factory = _POOL_FACTORIES.get(executor)
        if factory is None:
            raise ValueError(
                f"unknown executor {executor!r}; choose from {EXECUTOR_NAMES}"
            )
        return factory(workers if workers and workers > 0 else default_workers())
    if not hasattr(executor, "map"):
        raise TypeError(
            f"executor must be an Executor, name or None, got {executor!r}"
        )
    return executor
