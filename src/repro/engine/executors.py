"""Pluggable sweep executors: serial, thread pool, and process pool.

An executor maps a *task function* over a list of items and returns the
results **in item order**, whatever order the work actually ran in.
Task functions are module-level callables of ``(session, item)`` — they
must be picklable by reference so the process executor can ship them to
workers.  Three implementations share the protocol:

- :class:`SerialExecutor` — the reference implementation: a plain loop
  over the parent session.  Every other executor must be bit-identical
  to it (each item's randomness is self-seeded, so execution order and
  placement cannot change results).
- :class:`ThreadExecutor` — a thread pool sharing the parent session.
  The session's statistic caches are lock-guarded and the NumPy kernels
  release the GIL for large draws, so threads help on wide grids with
  zero per-worker setup cost.
- :class:`ProcessExecutor` — true parallelism: items are sharded
  round-robin across worker processes, each of which builds its session
  **once** — opening the parent's memory-mapped snapshot from the
  :class:`~repro.scenarios.SnapshotStore` when the parent session has
  one, regenerating from config otherwise (both fully seeded, so the
  worker snapshot is bit-identical either way) — streams its shard
  through the task function, and ships the results back.  Ledger
  debits never happen in workers — task functions return spend records
  and the parent merges them, so privacy accounting stays exact under
  parallelism.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from functools import partial
from typing import Protocol, runtime_checkable

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "EXECUTOR_NAMES",
    "resolve_executor",
    "default_workers",
    "run_sharded",
]

# Caps default_workers() regardless of the machine's core count, so CI
# (and any shared box) can bound process fan-out without touching code.
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"


@runtime_checkable
class Executor(Protocol):
    """The executor protocol: ordered map of a task over items."""

    name: str
    workers: int

    def map(self, fn: Callable, session, items: Sequence) -> list:
        """Apply ``fn(session, item)`` to every item; results in order."""
        ...


class SerialExecutor:
    """Run every item in the calling thread against the parent session."""

    name = "serial"
    workers = 1

    def map(self, fn: Callable, session, items: Sequence) -> list:
        return [fn(session, item) for item in items]

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ThreadExecutor:
    """A thread pool over the parent session (shared caches, no pickling)."""

    name = "thread"

    def __init__(self, workers: int = 2):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def map(self, fn: Callable, session, items: Sequence) -> list:
        items = list(items)
        if len(items) <= 1 or self.workers == 1:
            return [fn(session, item) for item in items]
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(partial(fn, session), items))

    def __repr__(self) -> str:
        return f"ThreadExecutor(workers={self.workers})"


def _shard_session(config, worker_attrs, store_spec):
    """Build (or reuse) this worker process's session for ``config``.

    One session per (config, worker_attrs, snapshot source) per process:
    a worker that receives several shards of the same sweep regenerates
    nothing.  With ``store_spec`` (the parent session's
    :class:`~repro.scenarios.SnapshotStore` described by
    :meth:`~repro.scenarios.SnapshotStore.spec` — a plain picklable
    dict naming the backend, so local roots reattach and remote
    backends reconnect) the worker *opens* the parent's persisted
    snapshot as a read-only memory map instead of regenerating it — the
    parent saved it before the pool spun up, so workers share physical
    pages and pay only the SDL fit.  Either way the session is
    bit-identical to the parent's (same fingerprint ⇒ same bytes), and
    its ledger stays untouched — spend records flow back to the parent
    for merging.
    """
    global _WORKER_SESSION
    key = (repr(config), tuple(worker_attrs), repr(store_spec))
    cached = _WORKER_SESSION
    if cached is not None and cached[0] == key:
        return cached[1]
    from repro.api.session import ReleaseSession

    store = None
    if store_spec is not None:
        from repro.scenarios.store import SnapshotStore

        if isinstance(store_spec, dict):
            store = SnapshotStore.from_spec(store_spec)
        else:  # a bare root path (older callers)
            store = SnapshotStore(store_spec)
    session = ReleaseSession(
        config, worker_attrs=worker_attrs, snapshot_store=store
    )
    _WORKER_SESSION = (key, session)
    return session


_WORKER_SESSION: tuple | None = None


def _run_shard(make_context, context_args, fn, indexed_items):
    """Worker entry point: evaluate one shard against a rebuilt context.

    ``make_context(*context_args)`` builds (or fetches this process's
    cached) task context — a :class:`~repro.api.session.ReleaseSession`
    for sweeps, a plain picklable build context for sharded snapshot
    generation — and the shard streams through ``fn(context, item)``.
    """
    context = make_context(*context_args)
    return [(index, fn(context, item)) for index, item in indexed_items]


def _context_passthrough(context):
    """Identity ``make_context`` for callers shipping the context itself."""
    return context


def run_sharded(
    fn: Callable,
    items: Sequence,
    *,
    workers: int,
    make_context: Callable = _context_passthrough,
    context_args: tuple = (),
    start_method: str | None = None,
) -> list:
    """Ordered ``fn(context, item)`` map over a process pool.

    The process-parallel core shared by :class:`ProcessExecutor` (whose
    context is a per-process rebuilt session) and the sharded snapshot
    builder (whose context is the picklable generation plan).  Items are
    sharded round-robin so each worker receives one submission —
    amortizing whatever ``make_context`` costs across its whole shard —
    and results come back in item order.  With one item or one worker
    the map runs inline in the calling process, context built the same
    way, so callers get a single code path.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    items = list(items)
    if not items:
        return []
    if len(items) == 1 or workers == 1:
        context = make_context(*context_args)
        return [fn(context, item) for item in items]
    import multiprocessing

    mp_context = multiprocessing.get_context(start_method)
    n_workers = min(workers, len(items))
    indexed = list(enumerate(items))
    shards = [indexed[offset::n_workers] for offset in range(n_workers)]
    results: list = [None] * len(items)
    with ProcessPoolExecutor(
        max_workers=n_workers, mp_context=mp_context
    ) as pool:
        futures = [
            pool.submit(_run_shard, make_context, context_args, fn, shard)
            for shard in shards
        ]
        for future in futures:
            for index, result in future.result():
                results[index] = result
    return results


class ProcessExecutor:
    """A process pool; workers rebuild the session from its config once.

    ``start_method`` picks the :mod:`multiprocessing` context (``None``
    uses the platform default — ``fork`` on Linux, which inherits the
    imported modules and makes worker start cheap).  Items are sharded
    round-robin so every worker gets an even slice of the grid in one
    submission, amortizing the snapshot rebuild across its whole shard.
    """

    name = "process"

    def __init__(self, workers: int = 2, start_method: str | None = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.start_method = start_method

    def map(self, fn: Callable, session, items: Sequence) -> list:
        if getattr(session, "dataset_provided", False):
            raise ValueError(
                "ProcessExecutor cannot run a session built over an "
                "explicitly provided dataset: workers rebuild the "
                "session from its config, which would regenerate a "
                "different (synthetic) snapshot and silently change "
                "results; use ThreadExecutor or SerialExecutor instead"
            )
        items = list(items)
        if len(items) <= 1 or self.workers == 1:
            return SerialExecutor().map(fn, session, items)
        # Where workers should open the snapshot from.  A session built
        # over a SnapshotStore has already persisted its snapshot (the
        # store saves on first generation), so workers map the stored
        # bytes instead of regenerating the economy per process.  The
        # store ships as its picklable backend spec — a remote-backed
        # store reconnects in the worker and shares the same local
        # cache directory.
        store = getattr(session, "snapshot_store", None)
        store_spec = None if store is None else store.spec()
        return run_sharded(
            fn,
            items,
            workers=self.workers,
            make_context=_shard_session,
            context_args=(session.config, session.worker_attrs, store_spec),
            start_method=self.start_method,
        )

    def __repr__(self) -> str:
        return f"ProcessExecutor(workers={self.workers})"


EXECUTOR_NAMES = ("serial", "thread", "process")

_POOL_FACTORIES = {
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def default_workers() -> int:
    """A sensible worker count for this machine.

    Scales with ``os.cpu_count()`` — a 64-core sweep box gets 64
    workers, not a hard-coded 4 — with a floor of 2 so ``--executor
    process`` without a count always yields real parallelism.  The
    ``REPRO_MAX_WORKERS`` environment variable caps the result (CI
    runners and shared machines bound fan-out without code changes);
    a cap of 1 forces serial-in-process execution.
    """
    workers = max(2, os.cpu_count() or 2)
    override = os.environ.get(MAX_WORKERS_ENV, "").strip()
    if override:
        try:
            cap = int(override)
        except ValueError:
            raise ValueError(
                f"{MAX_WORKERS_ENV} must be an integer, got {override!r}"
            ) from None
        workers = min(workers, max(1, cap))
    return workers


def resolve_executor(executor=None, workers: int | None = None):
    """Normalize (executor, workers) knobs into an executor — or None.

    ``None`` means "no parallelism requested": callers with a historical
    serial path (e.g. :meth:`~repro.api.ReleaseSession.run_grid`) keep
    it, and the sweep engine substitutes :class:`SerialExecutor`.
    Accepts an executor instance (returned as-is), one of
    ``EXECUTOR_NAMES`` (a pool name without a worker count gets
    :func:`default_workers`), or just a worker count (> 1 selects
    processes — the only executor with true CPU parallelism).
    """
    if executor is None:
        if workers is None or workers <= 1:
            return None
        return ProcessExecutor(workers=workers)
    if isinstance(executor, str):
        if executor == "serial":
            return SerialExecutor()
        factory = _POOL_FACTORIES.get(executor)
        if factory is None:
            raise ValueError(
                f"unknown executor {executor!r}; choose from {EXECUTOR_NAMES}"
            )
        return factory(workers if workers and workers > 0 else default_workers())
    if not hasattr(executor, "map"):
        raise TypeError(
            f"executor must be an Executor, name or None, got {executor!r}"
        )
    return executor
