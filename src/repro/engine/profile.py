"""Per-stage wall-clock profiling for sweep runs (``repro sweep --profile``).

The sweep kernels spend their time in three places: **draw** (producing
noise-matrix chunks — RNG plus the mechanism transform), **reduce**
(folding chunks into the point statistics) and **store** (persisting
computed points).  This module attributes wall clock to those stages
with near-zero cost when profiling is off: kernels consult one module
flag and skip every timer.

Activation is process-wide (:func:`profiled` sets a module global), which
matches how the sweep engine runs — one plan at a time per process.  The
serial and thread executors therefore capture kernel stages directly.  A
process pool's workers run in other interpreters where the parent's
module global is invisible, so the sweep engine wraps each shipped task
in its own :func:`profiled` scope and sends the captured
:class:`StageProfile` back with the outcome; the parent folds those into
its own profile via :func:`merge_worker`, which also keeps a per-worker
(per-PID) breakdown for the ``per_worker`` section of ``sweep --json``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = [
    "StageProfile",
    "profiled",
    "active",
    "stage",
    "timed_iter",
    "merge_worker",
]

_STAGES = ("draw", "reduce", "store")

_ACTIVE: "StageProfile | None" = None


class StageProfile:
    """Accumulated seconds per stage plus the run's total wall clock."""

    __slots__ = ("draw", "reduce", "store", "total", "workers")

    def __init__(self) -> None:
        self.draw = 0.0
        self.reduce = 0.0
        self.store = 0.0
        self.total = 0.0
        # pid -> accumulated per-worker stage dict (set by merge_worker
        # when a profiled run fans tasks out to a process pool).
        self.workers: dict[int, dict] = {}

    def add(self, name: str, seconds: float) -> None:
        setattr(self, name, getattr(self, name) + seconds)

    def merge_worker(self, pid: int, profile_dict: dict) -> None:
        """Fold one worker task's captured profile into this run.

        Stage seconds land in this profile's totals (so draw/reduce no
        longer read zero under a process pool) and accumulate per PID
        for the per-worker breakdown.  Worker seconds overlap in wall
        time, so under a pool ``draw + reduce + store`` may legitimately
        exceed ``total`` — ``other`` clamps at zero.
        """
        for name in _STAGES:
            self.add(name, float(profile_dict.get(f"{name}_s", 0.0)))
        worker = self.workers.setdefault(
            pid,
            {
                "tasks": 0,
                "draw_s": 0.0,
                "reduce_s": 0.0,
                "store_s": 0.0,
                "total_s": 0.0,
            },
        )
        worker["tasks"] += 1
        for key in ("draw_s", "reduce_s", "store_s", "total_s"):
            worker[key] += float(profile_dict.get(key, 0.0))

    @property
    def other(self) -> float:
        """Wall clock not attributed to any instrumented stage."""
        return max(0.0, self.total - self.draw - self.reduce - self.store)

    def as_dict(self) -> dict:
        payload = {
            "draw_s": self.draw,
            "reduce_s": self.reduce,
            "store_s": self.store,
            "other_s": self.other,
            "total_s": self.total,
        }
        if self.workers:
            payload["per_worker"] = [
                {"worker": n, "pid": pid, **stats}
                for n, (pid, stats) in enumerate(sorted(self.workers.items()))
            ]
        return payload


def active() -> bool:
    """Whether a profiled run is in progress in this process."""
    return _ACTIVE is not None


def merge_worker(pid: int, profile_dict: dict) -> None:
    """Fold a worker task's returned profile into the active run (if any)."""
    if _ACTIVE is not None:
        _ACTIVE.merge_worker(pid, profile_dict)


@contextmanager
def profiled():
    """Activate stage collection for the enclosed sweep run."""
    global _ACTIVE
    previous, profile = _ACTIVE, StageProfile()
    _ACTIVE = profile
    start = time.perf_counter()
    try:
        yield profile
    finally:
        profile.total = time.perf_counter() - start
        _ACTIVE = previous


@contextmanager
def stage(name: str):
    """Attribute the enclosed block's wall clock to ``name`` (if active)."""
    if _ACTIVE is None:
        yield
        return
    if name not in _STAGES:
        raise ValueError(f"stage must be one of {_STAGES}, got {name!r}")
    start = time.perf_counter()
    try:
        yield
    finally:
        _ACTIVE.add(name, time.perf_counter() - start)


def timed_iter(iterator, name: str = "draw"):
    """Wrap an iterator, attributing time spent *producing* items.

    The reducers pull chunks lazily, so the generator's own work (RNG
    draws, mechanism transforms) happens inside ``next()`` — this wrapper
    meters exactly that, leaving the consuming loop body to the
    ``reduce`` stage.
    """
    iterator = iter(iterator)
    while True:
        start = time.perf_counter()
        try:
            item = next(iterator)
        except StopIteration:
            if _ACTIVE is not None:
                _ACTIVE.add(name, time.perf_counter() - start)
            return
        if _ACTIVE is not None:
            _ACTIVE.add(name, time.perf_counter() - start)
        yield item
