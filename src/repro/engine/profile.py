"""Per-stage wall-clock profiling for sweep runs (``repro sweep --profile``).

The sweep kernels spend their time in three places: **draw** (producing
noise-matrix chunks — RNG plus the mechanism transform), **reduce**
(folding chunks into the point statistics) and **store** (persisting
computed points).  This module attributes wall clock to those stages
with near-zero cost when profiling is off: kernels consult one module
flag and skip every timer.

Activation is process-wide (:func:`profiled` sets a module global), which
matches how the sweep engine runs — one plan at a time per process.  The
serial and thread executors therefore capture kernel stages; a process
pool's workers run in other interpreters, so only the parent-side
``store`` stage is captured there and the draw/reduce split reads zero.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["StageProfile", "profiled", "active", "stage", "timed_iter"]

_STAGES = ("draw", "reduce", "store")

_ACTIVE: "StageProfile | None" = None


class StageProfile:
    """Accumulated seconds per stage plus the run's total wall clock."""

    __slots__ = ("draw", "reduce", "store", "total")

    def __init__(self) -> None:
        self.draw = 0.0
        self.reduce = 0.0
        self.store = 0.0
        self.total = 0.0

    def add(self, name: str, seconds: float) -> None:
        setattr(self, name, getattr(self, name) + seconds)

    @property
    def other(self) -> float:
        """Wall clock not attributed to any instrumented stage."""
        return max(0.0, self.total - self.draw - self.reduce - self.store)

    def as_dict(self) -> dict:
        return {
            "draw_s": self.draw,
            "reduce_s": self.reduce,
            "store_s": self.store,
            "other_s": self.other,
            "total_s": self.total,
        }


def active() -> bool:
    """Whether a profiled run is in progress in this process."""
    return _ACTIVE is not None


@contextmanager
def profiled():
    """Activate stage collection for the enclosed sweep run."""
    global _ACTIVE
    previous, profile = _ACTIVE, StageProfile()
    _ACTIVE = profile
    start = time.perf_counter()
    try:
        yield profile
    finally:
        profile.total = time.perf_counter() - start
        _ACTIVE = previous


@contextmanager
def stage(name: str):
    """Attribute the enclosed block's wall clock to ``name`` (if active)."""
    if _ACTIVE is None:
        yield
        return
    if name not in _STAGES:
        raise ValueError(f"stage must be one of {_STAGES}, got {name!r}")
    start = time.perf_counter()
    try:
        yield
    finally:
        _ACTIVE.add(name, time.perf_counter() - start)


def timed_iter(iterator, name: str = "draw"):
    """Wrap an iterator, attributing time spent *producing* items.

    The reducers pull chunks lazily, so the generator's own work (RNG
    draws, mechanism transforms) happens inside ``next()`` — this wrapper
    meters exactly that, leaving the consuming loop body to the
    ``reduce`` stage.
    """
    iterator = iter(iterator)
    while True:
        start = time.perf_counter()
        try:
            item = next(iterator)
        except StopIteration:
            if _ACTIVE is not None:
                _ACTIVE.add(name, time.perf_counter() - start)
            return
        if _ACTIVE is not None:
            _ACTIVE.add(name, time.perf_counter() - start)
        yield item
