"""Figure-point evaluation kernels over cached workload statistics.

These functions are the computational core of every figure and table
sweep: given one workload's trial-invariant
:class:`~repro.engine.points.WorkloadStatistics`, they draw the
``(n_trials, n_cells)`` noise matrix for one (mechanism, α, ε) grid
point through the batched mechanism engine and stream-reduce it to the
paper's Sec-10 metrics (L1 error ratio or Spearman correlation, overall
and per place-population stratum).

They moved here from :mod:`repro.experiments.runner` so the release
session can call them through a module-level import — the runner used to
sit *above* the session (it defines the deprecated ``ExperimentContext``
alias) while also being imported lazily from inside
:meth:`~repro.api.ReleaseSession.evaluate_point`, a cycle this module
breaks: it depends only on the registry, the mechanism kernels and
:mod:`repro.engine.points`, never on the session.

Error ratios and Spearman correlations follow Sec 10's definitions: the
ratio is mean private L1 over trials divided by SDL L1; Spearman compares
the private ordering to the SDL ordering; both are reported overall and
per place-population stratum, over the cells with positive true count.

Two reduction strategies coexist:

- The **per-point** kernels (:func:`error_ratio_point`,
  :func:`spearman_point`, :func:`truncated_laplace_point`) draw one noise
  matrix per grid point and fold it chunk by chunk through
  :func:`_streamed_point_values` — one |error| pass per chunk, scattered
  into the overall + per-stratum sums through precomputed ascending index
  sets, bit-identical to the historical per-stratum slicing.
- The **fused** kernel (:func:`fused_grid_points`) exploits the
  Theorem 8.4 release form ``q(x) + S(x)/a · Z``: the unit noise ``Z``
  does not depend on ε, so one unit matrix per (workload, mechanism, α)
  group serves every ε point of the group via a scale multiply (linear
  mechanisms) or one transform pass (Log-Laplace).  The fused stream is
  statistically identical but not bit-identical to the per-point
  streams, so it only runs behind ``run_plan(fused=True)``.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.api.registry import create_mechanism, mechanism_spec
from repro.core.params import EREEParams
from repro.core.release import _trial_chunks
from repro.core.smooth_sensitivity import sample_gamma4_fast
from repro.dp.truncation import TruncatedLaplace
from repro.engine import profile
from repro.engine.points import N_STRATA, SeriesPoint, WorkloadStatistics
from repro.metrics.error import l1_error
from repro.metrics.ranking import (
    spearman_correlation_batch,
    spearman_distinct_batch,
)
from repro.util import as_generator

if TYPE_CHECKING:  # annotation only; the session imports this module
    from repro.api.session import ReleaseSession

__all__ = [
    "mechanism_is_feasible",
    "release_trials",
    "release_trials_looped",
    "error_ratio_point",
    "spearman_point",
    "truncated_laplace_point",
    "sample_unit_noise",
    "fused_grid_points",
    "fused_family_points",
]


def mechanism_is_feasible(
    name: str, params: EREEParams, require_bounded_mean: bool = True
) -> bool:
    """Whether the paper would plot this (mechanism, α, ε) combination.

    Feasibility predicates live on the registry specs: Smooth Gamma and
    Smooth Laplace have hard constraints; Log-Laplace is skipped where
    its expectation is unbounded (the paper does not plot those points,
    Lemma 8.2) unless ``require_bounded_mean=False``.
    """
    if name == "log-laplace" and not require_bounded_mean:
        return True
    return mechanism_spec(name).is_feasible(params)


def _release_chunks(
    stats: WorkloadStatistics,
    mechanism_name: str,
    per_cell: EREEParams,
    n_trials: int,
    seed,
    batch_size: int | None,
):
    """Yield ``(chunk, n_cells)`` noise matrices from one shared stream.

    The chunk boundaries do not change the stream for the Laplace-based
    mechanisms (the matrix fills row-major from one generator), so any
    ``batch_size`` reproduces the single-draw statistics bit-for-bit.
    """
    needs_xv = mechanism_spec(mechanism_name).needs_xv
    mechanism = create_mechanism(mechanism_name, per_cell)
    rng = as_generator(seed)
    true = stats.eval_true
    xv = stats.eval_xv
    for chunk in _trial_chunks(n_trials, batch_size):
        if needs_xv:
            yield mechanism.release_counts_batch(true, xv, chunk, rng)
        else:
            yield mechanism.release_counts_batch(true, chunk, rng)


def release_trials(
    stats: WorkloadStatistics,
    mechanism_name: str,
    params: EREEParams,
    n_trials: int,
    seed,
    batch_size: int | None = None,
) -> np.ndarray | None:
    """``(n_trials, n_cells)`` noisy matrix over the evaluation cells.

    All trials come from a single vectorized RNG draw (the batched
    mechanism path).  ``batch_size`` caps how many trials share one draw
    — it bounds the per-draw transients (and lets the figure points
    stream-reduce chunk by chunk without materializing the matrix), but
    this function's *result* is always the full matrix.  Returns None
    when the per-cell parameters are infeasible for the mechanism (the
    figure shows a gap there, as in the paper).  Iterating the result
    yields one noisy vector per trial, like the historical list.
    """
    per_cell = stats.per_cell_params_of(params)
    if not mechanism_is_feasible(mechanism_name, per_cell):
        return None
    chunks = list(
        _release_chunks(stats, mechanism_name, per_cell, n_trials, seed, batch_size)
    )
    return chunks[0] if len(chunks) == 1 else np.concatenate(chunks, axis=0)


def release_trials_looped(
    stats: WorkloadStatistics,
    mechanism_name: str,
    params: EREEParams,
    n_trials: int,
    seed,
) -> list[np.ndarray] | None:
    """The historical per-trial Python loop (one RNG draw per trial).

    Kept as the reference implementation for the batched-engine
    equivalence tests and throughput benchmarks; production paths use
    :func:`release_trials`.
    """
    per_cell = stats.per_cell_params_of(params)
    if not mechanism_is_feasible(mechanism_name, per_cell):
        return None
    needs_xv = mechanism_spec(mechanism_name).needs_xv
    mechanism = create_mechanism(mechanism_name, per_cell)
    rng = as_generator(seed)
    true = stats.eval_true
    xv = stats.eval_xv
    trials = []
    for _ in range(n_trials):
        if needs_xv:
            trials.append(mechanism.release_counts(true, xv, rng))
        else:
            trials.append(mechanism.release_counts(true, rng))
    return trials


def _default_index_sets(strata: np.ndarray) -> tuple[np.ndarray, ...]:
    """Overall + per-stratum ascending cell-index sets (fallback when the
    caller has no :attr:`WorkloadStatistics.stratum_cells` cache)."""
    return (
        np.arange(strata.size),
        *(np.flatnonzero(strata == stratum) for stratum in range(N_STRATA)),
    )


def _l1_ratio_results(
    sums: np.ndarray,
    n_trials: int,
    true: np.ndarray,
    sdl: np.ndarray,
    index_sets,
) -> list[float]:
    """Sec-10 error ratios from accumulated per-set |error| totals."""
    results = []
    for j, idx in enumerate(index_sets):
        if idx.size == 0:
            results.append(float("nan"))
            continue
        sdl_l1 = l1_error(true[idx], sdl[idx])
        private_l1 = float(sums[j]) / n_trials
        if sdl_l1 == 0.0:
            results.append(math.inf if private_l1 > 0 else float("nan"))
        else:
            results.append(private_l1 / sdl_l1)
    return results


def _streamed_point_values(
    chunk_iter,
    true,
    sdl,
    strata,
    metric: str,
    n_trials: int,
    index_sets: Sequence[np.ndarray] | None = None,
) -> tuple[float, tuple[float, ...]]:
    """Reduce trial-chunk matrices to (overall, by-stratum) point values.

    Both metrics are means over trials, so each chunk folds into running
    sums and is discarded — the full ``(n_trials, n_cells)`` matrix never
    exists when the chunks are small.  The chunk rows arrive in trial
    order, so the statistics match the whole-matrix reduction exactly up
    to floating-point summation order (last-ULP reassociation).

    The L1 reduction is one pass per chunk: ``|chunk - true|`` is
    computed once and gathered into the overall + per-stratum sums
    through the ascending ``index_sets`` (by default the
    :attr:`WorkloadStatistics.stratum_cells` cache).  The gather always
    copies — even for the full-size overall set — because a
    ``m[:, indices]`` gather is Fortran-ordered exactly like the
    historical ``m[:, boolean_mask]`` slices, and the axis-1 float
    summation order depends on that layout; reducing the C-ordered
    ``abs_err`` directly would shift the overall value by last-ULP
    reassociation.  Values are therefore bit-identical to the slicing
    reducer while the subtraction runs once instead of once per set.
    """
    if index_sets is None:
        index_sets = _default_index_sets(strata)
    sums = np.zeros(len(index_sets))
    counts = np.zeros(len(index_sets))
    if profile.active():
        chunk_iter = profile.timed_iter(chunk_iter)
    for chunk in chunk_iter:
        with profile.stage("reduce"):
            if metric == "l1-ratio":
                abs_err = np.abs(chunk - true)
                for j, idx in enumerate(index_sets):
                    if idx.size:
                        sums[j] += abs_err[:, idx].sum(axis=1).sum()
            else:
                for j, idx in enumerate(index_sets):
                    if idx.size >= 2:
                        values = spearman_correlation_batch(
                            chunk[:, idx], sdl[idx]
                        )
                        sums[j] += np.nansum(values)
                        counts[j] += np.count_nonzero(~np.isnan(values))
    if metric == "l1-ratio":
        results = _l1_ratio_results(sums, n_trials, true, sdl, index_sets)
    else:
        results = [
            float(sums[j] / counts[j]) if counts[j] else float("nan")
            for j in range(len(index_sets))
        ]
    return results[0], tuple(results[1:])


def _infeasible_point(mechanism_name: str, params: EREEParams) -> SeriesPoint:
    nan = float("nan")
    return SeriesPoint(
        mechanism=mechanism_name,
        alpha=params.alpha,
        epsilon=params.epsilon,
        overall=nan,
        by_stratum=(nan,) * N_STRATA,
        feasible=False,
    )


def error_ratio_point(
    stats: WorkloadStatistics,
    mechanism_name: str,
    params: EREEParams,
    n_trials: int,
    seed,
    batch_size: int | None = None,
) -> SeriesPoint:
    """One L1-error-ratio point (overall + per-stratum)."""
    per_cell = stats.per_cell_params_of(params)
    if not mechanism_is_feasible(mechanism_name, per_cell):
        return _infeasible_point(mechanism_name, params)
    overall, by_stratum = _streamed_point_values(
        _release_chunks(stats, mechanism_name, per_cell, n_trials, seed, batch_size),
        stats.eval_true,
        stats.eval_sdl,
        stats.eval_strata,
        "l1-ratio",
        n_trials,
        index_sets=stats.stratum_cells,
    )
    return SeriesPoint(
        mechanism=mechanism_name,
        alpha=params.alpha,
        epsilon=params.epsilon,
        overall=overall,
        by_stratum=by_stratum,
    )


def spearman_point(
    stats: WorkloadStatistics,
    mechanism_name: str,
    params: EREEParams,
    n_trials: int,
    seed,
    batch_size: int | None = None,
) -> SeriesPoint:
    """One Spearman-correlation point (overall + per-stratum)."""
    per_cell = stats.per_cell_params_of(params)
    if not mechanism_is_feasible(mechanism_name, per_cell):
        return _infeasible_point(mechanism_name, params)
    overall, by_stratum = _streamed_point_values(
        _release_chunks(stats, mechanism_name, per_cell, n_trials, seed, batch_size),
        stats.eval_true,
        stats.eval_sdl,
        stats.eval_strata,
        "spearman",
        n_trials,
        index_sets=stats.stratum_cells,
    )
    return SeriesPoint(
        mechanism=mechanism_name,
        alpha=params.alpha,
        epsilon=params.epsilon,
        overall=overall,
        by_stratum=by_stratum,
    )


def truncated_laplace_point(
    context: "ReleaseSession",
    stats: WorkloadStatistics,
    theta: int,
    epsilon: float,
    n_trials: int,
    seed,
    metric: str = "l1-ratio",
    batch_size: int | None = None,
) -> SeriesPoint:
    """One node-DP Truncated-Laplace point on a workload (Finding 6).

    The truncation projection is trial-invariant, so it runs exactly
    once; the whole ``(n_trials, n_cells)`` noise matrix is a single
    vectorized draw, or — when ``batch_size`` caps memory — a few chunked
    draws from the same stream, each masked and folded into the running
    statistics before the next chunk exists.
    """
    rng = as_generator(seed)
    mechanism = TruncatedLaplace(theta=theta, epsilon=epsilon)
    mask = stats.mask
    projection = mechanism.project(context.worker_full, stats.marginal)

    def chunk_iter():
        for chunk in _trial_chunks(n_trials, batch_size):
            result = mechanism.release_batch(
                context.worker_full, stats.marginal, chunk, rng,
                projection=projection,
            )
            yield result.noisy[:, mask]

    overall, by_stratum = _streamed_point_values(
        chunk_iter(),
        stats.eval_true,
        stats.eval_sdl,
        stats.eval_strata,
        metric,
        n_trials,
        index_sets=stats.stratum_cells,
    )
    return SeriesPoint(
        mechanism="truncated-laplace",
        alpha=None,
        epsilon=epsilon,
        overall=overall,
        by_stratum=by_stratum,
        theta=theta,
    )


# -- fused evaluation ------------------------------------------------------


def sample_unit_noise(kind: str, shape, seed=None) -> np.ndarray:
    """One unscaled matrix from a mechanism family's unit distribution.

    ``kind`` is a registry ``unit_noise`` tag: ``"gamma4"`` draws the
    Smooth Gamma h(z) ∝ 1/(1+z⁴) noise (through the oversampled
    single-round sampler — same distribution as the default sampler,
    different bit stream), ``"laplace"`` draws Laplace(1).
    """
    rng = as_generator(seed)
    if kind == "gamma4":
        return sample_gamma4_fast(shape, rng)
    if kind == "laplace":
        return rng.laplace(0.0, 1.0, size=shape)
    raise ValueError(f"unknown unit-noise family {kind!r}")


def fused_grid_points(
    stats: WorkloadStatistics,
    mechanism_name: str,
    *,
    alpha: float,
    delta: float,
    epsilons: Sequence[float],
    n_trials: int,
    seed,
    batch_size: int | None = None,
    metrics: Sequence[str] = ("l1-ratio",),
) -> dict[str, list[SeriesPoint]]:
    """Every ε point of one (workload, mechanism, α) group from one draw.

    Theorem 8.4 releases are ``q(x) + S(x)/a · Z`` with the unit noise
    ``Z`` independent of ε — the smooth sensitivity ``max(xv·α, 1)``
    depends only on α — so a grid's ε axis can share one unit matrix:

    - **Linear mechanisms** (``linear_unit_scale``, the two smooth
      mechanisms) reporting only the L1 ratio never materialize the
      noisy matrices at all: ``E-sum per cell`` is ``noise_scale(xv) ·
      Σ|Z|`` exactly, so the reduction accumulates the unit |Z| column
      sums once and each ε point is a scale multiply plus a
      ``bincount`` scatter into the strata.
    - Otherwise each ε applies its transform to the shared unit chunk
      (Log-Laplace's exp, or a Spearman metric that needs the noisy
      values) and folds through the same one-pass reduction.

    The fused stream draws different random bits than the per-point
    kernels (one group stream instead of one stream per ε), so results
    are statistically — not bit — identical to the unfused path; the
    sweep engine stores them under fused-specific keys.
    """
    spec = mechanism_spec(mechanism_name)
    unit_kind = spec.unit_noise
    if unit_kind is None:
        raise ValueError(
            f"{mechanism_name!r} declares no unit-noise family; "
            "fused evaluation needs a registry unit_noise tag"
        )
    metrics = tuple(metrics)
    for metric in metrics:
        if metric not in ("l1-ratio", "spearman"):
            raise ValueError(
                f"metric must be 'l1-ratio' or 'spearman', got {metric!r}"
            )

    true = stats.eval_true
    sdl = stats.eval_sdl
    strata = stats.eval_strata
    index_sets = stats.stratum_cells
    xv = stats.eval_xv
    n_cells = true.size
    n_sets = len(index_sets)

    per_eps: list[tuple[EREEParams, object]] = []
    for epsilon in epsilons:
        params = EREEParams(alpha, epsilon, delta)
        per_cell = stats.per_cell_params_of(params)
        mechanism = (
            create_mechanism(mechanism_name, per_cell)
            if mechanism_is_feasible(mechanism_name, per_cell)
            else None
        )
        per_eps.append((params, mechanism))

    rng = as_generator(seed)
    results: dict[str, list[SeriesPoint]] = {metric: [] for metric in metrics}

    def _point(params: EREEParams, values: list[float]) -> SeriesPoint:
        return SeriesPoint(
            mechanism=mechanism_name,
            alpha=params.alpha,
            epsilon=params.epsilon,
            overall=values[0],
            by_stratum=tuple(values[1:]),
        )

    if metrics == ("l1-ratio",) and spec.linear_unit_scale:
        # Linear shortcut: E-sum of |error| per cell over the chunk is
        # noise_scale(xv) · Σ|Z|, so only the unit |Z| column sums need
        # accumulating — no per-ε work inside the chunk loop at all.
        unit_colsum = np.zeros(n_cells)
        for chunk in _trial_chunks(n_trials, batch_size):
            with profile.stage("draw"):
                unit = sample_unit_noise(unit_kind, (chunk, n_cells), rng)
            with profile.stage("reduce"):
                unit_colsum += np.abs(unit).sum(axis=0)
        for params, mechanism in per_eps:
            if mechanism is None:
                results["l1-ratio"].append(
                    _infeasible_point(mechanism_name, params)
                )
                continue
            per_cell_err = mechanism.noise_scale(xv) * unit_colsum
            sums = np.empty(n_sets)
            sums[0] = per_cell_err.sum()
            sums[1:] = np.bincount(
                strata, weights=per_cell_err, minlength=N_STRATA
            )
            results["l1-ratio"].append(
                _point(
                    params,
                    _l1_ratio_results(sums, n_trials, true, sdl, index_sets),
                )
            )
        return results

    sums = np.zeros((len(per_eps), len(metrics), n_sets))
    counts = np.zeros((len(per_eps), len(metrics), n_sets))
    for chunk in _trial_chunks(n_trials, batch_size):
        with profile.stage("draw"):
            unit = sample_unit_noise(unit_kind, (chunk, n_cells), rng)
        for e, (params, mechanism) in enumerate(per_eps):
            if mechanism is None:
                continue
            with profile.stage("draw"):
                if spec.needs_xv:
                    noisy = mechanism.release_counts_from_unit(true, xv, unit)
                else:
                    noisy = mechanism.release_counts_from_unit(true, unit)
            with profile.stage("reduce"):
                for m, metric in enumerate(metrics):
                    if metric == "l1-ratio":
                        cell_tot = np.abs(noisy - true).sum(axis=0)
                        sums[e, m, 0] += cell_tot.sum()
                        sums[e, m, 1:] += np.bincount(
                            strata, weights=cell_tot, minlength=N_STRATA
                        )
                    else:
                        for j, idx in enumerate(index_sets):
                            if idx.size >= 2:
                                sub = (
                                    noisy
                                    if idx.size == n_cells
                                    else noisy[:, idx]
                                )
                                values = spearman_correlation_batch(
                                    sub, sdl[idx]
                                )
                                sums[e, m, j] += np.nansum(values)
                                counts[e, m, j] += np.count_nonzero(
                                    ~np.isnan(values)
                                )

    for e, (params, mechanism) in enumerate(per_eps):
        for m, metric in enumerate(metrics):
            if mechanism is None:
                results[metric].append(_infeasible_point(mechanism_name, params))
                continue
            if metric == "l1-ratio":
                values = _l1_ratio_results(
                    sums[e, m], n_trials, true, sdl, index_sets
                )
            else:
                values = [
                    float(sums[e, m, j] / counts[e, m, j])
                    if counts[e, m, j]
                    else float("nan")
                    for j in range(n_sets)
                ]
            results[metric].append(_point(params, values))
    return results


def fused_family_points(
    stats: WorkloadStatistics,
    mechanism_name: str,
    *,
    members: Sequence[tuple[float, float]],
    delta: float,
    n_trials: int,
    seed,
    batch_size: int | None = None,
    metrics: Sequence[str] = ("l1-ratio",),
    evaluate: Sequence[bool] | None = None,
) -> dict[str, list[SeriesPoint | None]]:
    """Every (α, ε) point of one mechanism's whole grid from one draw.

    The α×ε extension of :func:`fused_grid_points`: Theorem 8.4's unit
    noise ``Z`` is independent of α *and* ε — α enters only through the
    smooth-sensitivity envelope ``max(xv·α, 1)`` — so a single unit
    matrix serves the full family of ``members`` (α, ε) pairs.

    - **Linear mechanisms** reporting only the L1 ratio reduce the whole
      family analytically in one O(trials·cells) pass: the unit |Z|
      column sums accumulate once and every member is an envelope-scale
      multiply plus a ``bincount`` scatter, the envelope coming from the
      per-α cache on ``stats`` shared by all mechanisms of the sweep.
    - Otherwise each member applies its transform to the shared unit
      chunk; Spearman members reduce through the tie-free fast ranking
      kernel against the cached SDL rank statistics, falling back to the
      exact tie-averaging kernel for any chunk whose rows collide.

    ``evaluate`` masks which members to reduce (a resumed family
    recomputes only its missing members).  The unit draw never depends
    on the mask — full chunks are drawn regardless — so a subset
    evaluation reproduces the full run's member values bit-for-bit.
    Masked-out members come back as ``None`` placeholders.
    """
    spec = mechanism_spec(mechanism_name)
    unit_kind = spec.unit_noise
    if unit_kind is None:
        raise ValueError(
            f"{mechanism_name!r} declares no unit-noise family; "
            "family evaluation needs a registry unit_noise tag"
        )
    metrics = tuple(metrics)
    for metric in metrics:
        if metric not in ("l1-ratio", "spearman"):
            raise ValueError(
                f"metric must be 'l1-ratio' or 'spearman', got {metric!r}"
            )
    members = [(float(alpha), float(epsilon)) for alpha, epsilon in members]
    if evaluate is None:
        evaluate = [True] * len(members)
    elif len(evaluate) != len(members):
        raise ValueError(
            f"evaluate mask length {len(evaluate)} != {len(members)} members"
        )

    true = stats.eval_true
    sdl = stats.eval_sdl
    strata = stats.eval_strata
    index_sets = stats.stratum_cells
    xv = stats.eval_xv
    n_cells = true.size
    n_sets = len(index_sets)

    # Per-member setup: feasibility, the mechanism, and — for linear
    # mechanisms — the unit-noise scale envelope(α)/a(ε).  The envelope
    # is the per-α cached vector, so m members over k distinct α values
    # compute it k times, not m.
    per_member: list[tuple[EREEParams, object, np.ndarray | None]] = []
    for alpha, epsilon in members:
        params = EREEParams(alpha, epsilon, delta)
        per_cell = stats.per_cell_params_of(params)
        mechanism = (
            create_mechanism(mechanism_name, per_cell)
            if mechanism_is_feasible(mechanism_name, per_cell)
            else None
        )
        scale = None
        if mechanism is not None and spec.linear_unit_scale:
            scale = stats.envelope(per_cell.alpha) / mechanism.distribution.a
        per_member.append((params, mechanism, scale))

    rng = as_generator(seed)
    results: dict[str, list[SeriesPoint | None]] = {
        metric: [] for metric in metrics
    }

    def _point(params: EREEParams, values: list[float]) -> SeriesPoint:
        return SeriesPoint(
            mechanism=mechanism_name,
            alpha=params.alpha,
            epsilon=params.epsilon,
            overall=values[0],
            by_stratum=tuple(values[1:]),
        )

    if metrics == ("l1-ratio",) and spec.linear_unit_scale:
        # Whole-family analytic reduction: one pass over the unit draw
        # accumulates Σ|Z| per cell; every member — any α, any ε — then
        # reduces in O(cells) from the shared column sums.
        unit_colsum = np.zeros(n_cells)
        for chunk in _trial_chunks(n_trials, batch_size):
            with profile.stage("draw"):
                unit = sample_unit_noise(unit_kind, (chunk, n_cells), rng)
            with profile.stage("reduce"):
                unit_colsum += np.abs(unit).sum(axis=0)
        for do_eval, (params, mechanism, scale) in zip(evaluate, per_member):
            if not do_eval:
                results["l1-ratio"].append(None)
                continue
            if mechanism is None:
                results["l1-ratio"].append(
                    _infeasible_point(mechanism_name, params)
                )
                continue
            per_cell_err = scale * unit_colsum
            sums = np.empty(n_sets)
            sums[0] = per_cell_err.sum()
            sums[1:] = np.bincount(
                strata, weights=per_cell_err, minlength=N_STRATA
            )
            results["l1-ratio"].append(
                _point(
                    params,
                    _l1_ratio_results(sums, n_trials, true, sdl, index_sets),
                )
            )
        return results

    rank_stats = stats.sdl_rank_stats if "spearman" in metrics else None
    sums = np.zeros((len(per_member), len(metrics), n_sets))
    counts = np.zeros((len(per_member), len(metrics), n_sets))
    for chunk in _trial_chunks(n_trials, batch_size):
        with profile.stage("draw"):
            unit = sample_unit_noise(unit_kind, (chunk, n_cells), rng)
        for e, (do_eval, (params, mechanism, scale)) in enumerate(
            zip(evaluate, per_member)
        ):
            if not do_eval or mechanism is None:
                continue
            with profile.stage("draw"):
                if scale is not None:
                    noisy = true + scale * unit
                elif spec.needs_xv:
                    noisy = mechanism.release_counts_from_unit(true, xv, unit)
                else:
                    noisy = mechanism.release_counts_from_unit(true, unit)
            with profile.stage("reduce"):
                for m, metric in enumerate(metrics):
                    if metric == "l1-ratio":
                        cell_tot = np.abs(noisy - true).sum(axis=0)
                        sums[e, m, 0] += cell_tot.sum()
                        sums[e, m, 1:] += np.bincount(
                            strata, weights=cell_tot, minlength=N_STRATA
                        )
                        continue
                    _reduce_spearman_family(
                        noisy,
                        sdl,
                        index_sets,
                        rank_stats,
                        sums[e, m],
                        counts[e, m],
                    )

    for do_eval, (e, (params, mechanism, scale)) in zip(
        evaluate, enumerate(per_member)
    ):
        for m, metric in enumerate(metrics):
            if not do_eval:
                results[metric].append(None)
                continue
            if mechanism is None:
                results[metric].append(_infeasible_point(mechanism_name, params))
                continue
            if metric == "l1-ratio":
                values = _l1_ratio_results(
                    sums[e, m], n_trials, true, sdl, index_sets
                )
            else:
                values = [
                    float(sums[e, m, j] / counts[e, m, j])
                    if counts[e, m, j]
                    else float("nan")
                    for j in range(n_sets)
                ]
            results[metric].append(_point(params, values))
    return results


def _reduce_spearman_family(
    noisy: np.ndarray,
    sdl: np.ndarray,
    index_sets,
    rank_stats,
    sums: np.ndarray,
    counts: np.ndarray,
) -> None:
    """Fold one member-chunk's Spearman statistics into running sums.

    The overall set runs the tie-free fast kernel *with* tie detection;
    a clean pass proves every stratum subset tie-free too (a subset of a
    tie-free row cannot collide), so the strata skip the check.  Any
    collision drops the whole member-chunk to the exact tie-averaging
    kernel — same statistics, just slower — so correctness never rests
    on the almost-sure continuity argument.
    """
    n_cells = noisy.shape[1]
    centered_y, sd_y = rank_stats[0]
    rho = (
        spearman_distinct_batch(noisy, centered_y, sd_y)
        if n_cells >= 2
        else None
    )
    if rho is None:
        for j, idx in enumerate(index_sets):
            if idx.size >= 2:
                sub = noisy if idx.size == n_cells else noisy[:, idx]
                values = spearman_correlation_batch(sub, sdl[idx])
                sums[j] += np.nansum(values)
                counts[j] += np.count_nonzero(~np.isnan(values))
        return
    sums[0] += np.nansum(rho)
    counts[0] += np.count_nonzero(~np.isnan(rho))
    for j, idx in enumerate(index_sets[1:], start=1):
        if idx.size < 2:
            continue
        centered_y, sd_y = rank_stats[j]
        values = spearman_distinct_batch(
            noisy[:, idx], centered_y, sd_y, check_ties=False
        )
        sums[j] += np.nansum(values)
        counts[j] += np.count_nonzero(~np.isnan(values))
