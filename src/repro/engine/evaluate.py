"""Figure-point evaluation kernels over cached workload statistics.

These functions are the computational core of every figure and table
sweep: given one workload's trial-invariant
:class:`~repro.engine.points.WorkloadStatistics`, they draw the
``(n_trials, n_cells)`` noise matrix for one (mechanism, α, ε) grid
point through the batched mechanism engine and stream-reduce it to the
paper's Sec-10 metrics (L1 error ratio or Spearman correlation, overall
and per place-population stratum).

They moved here from :mod:`repro.experiments.runner` so the release
session can call them through a module-level import — the runner used to
sit *above* the session (it defines the deprecated ``ExperimentContext``
alias) while also being imported lazily from inside
:meth:`~repro.api.ReleaseSession.evaluate_point`, a cycle this module
breaks: it depends only on the registry, the mechanism kernels and
:mod:`repro.engine.points`, never on the session.

Error ratios and Spearman correlations follow Sec 10's definitions: the
ratio is mean private L1 over trials divided by SDL L1; Spearman compares
the private ordering to the SDL ordering; both are reported overall and
per place-population stratum, over the cells with positive true count.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from repro.api.registry import create_mechanism, mechanism_spec
from repro.core.params import EREEParams
from repro.core.release import _trial_chunks
from repro.dp.truncation import TruncatedLaplace
from repro.engine.points import N_STRATA, SeriesPoint, WorkloadStatistics
from repro.metrics.error import l1_error, l1_error_batch
from repro.metrics.ranking import spearman_correlation_batch
from repro.util import as_generator

if TYPE_CHECKING:  # annotation only; the session imports this module
    from repro.api.session import ReleaseSession

__all__ = [
    "mechanism_is_feasible",
    "release_trials",
    "release_trials_looped",
    "error_ratio_point",
    "spearman_point",
    "truncated_laplace_point",
]


def mechanism_is_feasible(
    name: str, params: EREEParams, require_bounded_mean: bool = True
) -> bool:
    """Whether the paper would plot this (mechanism, α, ε) combination.

    Feasibility predicates live on the registry specs: Smooth Gamma and
    Smooth Laplace have hard constraints; Log-Laplace is skipped where
    its expectation is unbounded (the paper does not plot those points,
    Lemma 8.2) unless ``require_bounded_mean=False``.
    """
    if name == "log-laplace" and not require_bounded_mean:
        return True
    return mechanism_spec(name).is_feasible(params)


def _release_chunks(
    stats: WorkloadStatistics,
    mechanism_name: str,
    per_cell: EREEParams,
    n_trials: int,
    seed,
    batch_size: int | None,
):
    """Yield ``(chunk, n_cells)`` noise matrices from one shared stream.

    The chunk boundaries do not change the stream for the Laplace-based
    mechanisms (the matrix fills row-major from one generator), so any
    ``batch_size`` reproduces the single-draw statistics bit-for-bit.
    """
    needs_xv = mechanism_spec(mechanism_name).needs_xv
    mechanism = create_mechanism(mechanism_name, per_cell)
    rng = as_generator(seed)
    true = stats.masked(stats.true)
    xv = stats.masked(stats.xv)
    for chunk in _trial_chunks(n_trials, batch_size):
        if needs_xv:
            yield mechanism.release_counts_batch(true, xv, chunk, rng)
        else:
            yield mechanism.release_counts_batch(true, chunk, rng)


def release_trials(
    stats: WorkloadStatistics,
    mechanism_name: str,
    params: EREEParams,
    n_trials: int,
    seed,
    batch_size: int | None = None,
) -> np.ndarray | None:
    """``(n_trials, n_cells)`` noisy matrix over the evaluation cells.

    All trials come from a single vectorized RNG draw (the batched
    mechanism path).  ``batch_size`` caps how many trials share one draw
    — it bounds the per-draw transients (and lets the figure points
    stream-reduce chunk by chunk without materializing the matrix), but
    this function's *result* is always the full matrix.  Returns None
    when the per-cell parameters are infeasible for the mechanism (the
    figure shows a gap there, as in the paper).  Iterating the result
    yields one noisy vector per trial, like the historical list.
    """
    per_cell = stats.per_cell_params_of(params)
    if not mechanism_is_feasible(mechanism_name, per_cell):
        return None
    chunks = list(
        _release_chunks(stats, mechanism_name, per_cell, n_trials, seed, batch_size)
    )
    return chunks[0] if len(chunks) == 1 else np.concatenate(chunks, axis=0)


def release_trials_looped(
    stats: WorkloadStatistics,
    mechanism_name: str,
    params: EREEParams,
    n_trials: int,
    seed,
) -> list[np.ndarray] | None:
    """The historical per-trial Python loop (one RNG draw per trial).

    Kept as the reference implementation for the batched-engine
    equivalence tests and throughput benchmarks; production paths use
    :func:`release_trials`.
    """
    per_cell = stats.per_cell_params_of(params)
    if not mechanism_is_feasible(mechanism_name, per_cell):
        return None
    needs_xv = mechanism_spec(mechanism_name).needs_xv
    mechanism = create_mechanism(mechanism_name, per_cell)
    rng = as_generator(seed)
    true = stats.masked(stats.true)
    xv = stats.masked(stats.xv)
    trials = []
    for _ in range(n_trials):
        if needs_xv:
            trials.append(mechanism.release_counts(true, xv, rng))
        else:
            trials.append(mechanism.release_counts(true, rng))
    return trials


def _ratio(true, private_trials, sdl, cells) -> float:
    """Mean private L1 over trials / SDL L1, over the given cells.

    ``private_trials`` is a ``(n_trials, n_cells)`` matrix (or anything
    array-like with that shape); the trial axis reduces vectorized.
    """
    if not cells.any():
        return float("nan")
    trials = np.asarray(private_trials, dtype=np.float64)
    sdl_l1 = l1_error(true[cells], sdl[cells])
    private_l1 = float(l1_error_batch(true[cells], trials[:, cells]).mean())
    if sdl_l1 == 0.0:
        return math.inf if private_l1 > 0 else float("nan")
    return private_l1 / sdl_l1


def _streamed_point_values(
    chunk_iter, true, sdl, strata, metric: str, n_trials: int
) -> tuple[float, tuple[float, ...]]:
    """Reduce trial-chunk matrices to (overall, by-stratum) point values.

    Both metrics are means over trials, so each chunk folds into running
    sums and is discarded — the full ``(n_trials, n_cells)`` matrix never
    exists when the chunks are small.  The chunk rows arrive in trial
    order, so the statistics match the whole-matrix reduction exactly up
    to floating-point summation order (last-ULP reassociation).
    """
    cell_sets = [np.ones(len(sdl), dtype=bool)] + [
        strata == stratum for stratum in range(N_STRATA)
    ]
    sums = np.zeros(len(cell_sets))
    counts = np.zeros(len(cell_sets))
    for chunk in chunk_iter:
        for j, cells in enumerate(cell_sets):
            if metric == "l1-ratio":
                if cells.any():
                    sums[j] += l1_error_batch(true[cells], chunk[:, cells]).sum()
            else:
                if int(cells.sum()) >= 2:
                    values = spearman_correlation_batch(
                        chunk[:, cells], sdl[cells]
                    )
                    sums[j] += np.nansum(values)
                    counts[j] += np.count_nonzero(~np.isnan(values))
    results = []
    for j, cells in enumerate(cell_sets):
        if metric == "l1-ratio":
            if not cells.any():
                results.append(float("nan"))
                continue
            sdl_l1 = l1_error(true[cells], sdl[cells])
            private_l1 = float(sums[j]) / n_trials
            if sdl_l1 == 0.0:
                results.append(math.inf if private_l1 > 0 else float("nan"))
            else:
                results.append(private_l1 / sdl_l1)
        else:
            results.append(
                float(sums[j] / counts[j]) if counts[j] else float("nan")
            )
    return results[0], tuple(results[1:])


def _infeasible_point(mechanism_name: str, params: EREEParams) -> SeriesPoint:
    nan = float("nan")
    return SeriesPoint(
        mechanism=mechanism_name,
        alpha=params.alpha,
        epsilon=params.epsilon,
        overall=nan,
        by_stratum=(nan,) * N_STRATA,
        feasible=False,
    )


def error_ratio_point(
    stats: WorkloadStatistics,
    mechanism_name: str,
    params: EREEParams,
    n_trials: int,
    seed,
    batch_size: int | None = None,
) -> SeriesPoint:
    """One L1-error-ratio point (overall + per-stratum)."""
    per_cell = stats.per_cell_params_of(params)
    if not mechanism_is_feasible(mechanism_name, per_cell):
        return _infeasible_point(mechanism_name, params)
    mask = stats.mask
    true = stats.masked(stats.true)
    sdl = stats.masked(stats.sdl_noisy)
    strata = stats.strata[mask]
    overall, by_stratum = _streamed_point_values(
        _release_chunks(stats, mechanism_name, per_cell, n_trials, seed, batch_size),
        true,
        sdl,
        strata,
        "l1-ratio",
        n_trials,
    )
    return SeriesPoint(
        mechanism=mechanism_name,
        alpha=params.alpha,
        epsilon=params.epsilon,
        overall=overall,
        by_stratum=by_stratum,
    )


def _mean_spearman(private_trials, sdl, cells) -> float:
    """Mean over trials of row-wise Spearman ρ against the SDL ordering."""
    if not cells.any() or int(cells.sum()) < 2:
        return float("nan")
    trials = np.asarray(private_trials, dtype=np.float64)
    values = spearman_correlation_batch(trials[:, cells], sdl[cells])
    if np.all(np.isnan(values)):
        return float("nan")
    return float(np.nanmean(values))


def spearman_point(
    stats: WorkloadStatistics,
    mechanism_name: str,
    params: EREEParams,
    n_trials: int,
    seed,
    batch_size: int | None = None,
) -> SeriesPoint:
    """One Spearman-correlation point (overall + per-stratum)."""
    per_cell = stats.per_cell_params_of(params)
    if not mechanism_is_feasible(mechanism_name, per_cell):
        return _infeasible_point(mechanism_name, params)
    mask = stats.mask
    true = stats.masked(stats.true)
    sdl = stats.masked(stats.sdl_noisy)
    strata = stats.strata[mask]
    overall, by_stratum = _streamed_point_values(
        _release_chunks(stats, mechanism_name, per_cell, n_trials, seed, batch_size),
        true,
        sdl,
        strata,
        "spearman",
        n_trials,
    )
    return SeriesPoint(
        mechanism=mechanism_name,
        alpha=params.alpha,
        epsilon=params.epsilon,
        overall=overall,
        by_stratum=by_stratum,
    )


def truncated_laplace_point(
    context: "ReleaseSession",
    stats: WorkloadStatistics,
    theta: int,
    epsilon: float,
    n_trials: int,
    seed,
    metric: str = "l1-ratio",
    batch_size: int | None = None,
) -> SeriesPoint:
    """One node-DP Truncated-Laplace point on a workload (Finding 6).

    The truncation projection is trial-invariant, so it runs exactly
    once; the whole ``(n_trials, n_cells)`` noise matrix is a single
    vectorized draw, or — when ``batch_size`` caps memory — a few chunked
    draws from the same stream, each masked and folded into the running
    statistics before the next chunk exists.
    """
    rng = as_generator(seed)
    mechanism = TruncatedLaplace(theta=theta, epsilon=epsilon)
    mask = stats.mask
    projection = mechanism.project(context.worker_full, stats.marginal)

    def chunk_iter():
        for chunk in _trial_chunks(n_trials, batch_size):
            result = mechanism.release_batch(
                context.worker_full, stats.marginal, chunk, rng,
                projection=projection,
            )
            yield result.noisy[:, mask]

    true = stats.masked(stats.true)
    sdl = stats.masked(stats.sdl_noisy)
    strata = stats.strata[mask]
    overall, by_stratum = _streamed_point_values(
        chunk_iter(), true, sdl, strata, metric, n_trials
    )
    return SeriesPoint(
        mechanism="truncated-laplace",
        alpha=None,
        epsilon=epsilon,
        overall=overall,
        by_stratum=by_stratum,
        theta=theta,
    )
