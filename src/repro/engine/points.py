"""Neutral point/result dataclasses shared across the layer boundaries.

These types used to be split between :mod:`repro.api.session`
(``WorkloadStatistics``) and :mod:`repro.experiments.runner`
(``SeriesPoint``/``FigureSeries``), which forced the session to import
the runner lazily inside :meth:`~repro.api.ReleaseSession.evaluate_point`
— an import cycle in disguise.  They now live here, below both layers:
the session, the evaluation kernels (:mod:`repro.engine.evaluate`), the
sweep engine and the experiment harness all import *down* into this
module and never at each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING

import numpy as np

from repro.metrics.strata import STRATUM_LABELS

if TYPE_CHECKING:  # annotation-only: neither layer is imported at runtime
    from repro.db.query import Marginal
    from repro.experiments.workloads import Workload

N_STRATA = len(STRATUM_LABELS)


@dataclass(frozen=True)
class WorkloadStatistics:
    """Trial-invariant statistics of one workload on one snapshot.

    Arrays are over the marginal's cells.  ``mask`` selects the cells
    used for evaluation (positive true count, hence published by both
    systems); ``xv`` is the smooth-sensitivity statistic; ``strata`` the
    place-population stratum per cell.
    """

    workload: "Workload"
    marginal: "Marginal"
    true: np.ndarray
    released: np.ndarray
    xv: np.ndarray
    strata: np.ndarray
    sdl_noisy: np.ndarray
    mode: str
    per_cell_params_of: object  # Callable[[EREEParams], EREEParams]
    budget_of: object = None  # Callable[[EREEParams], MarginalBudget]

    @cached_property
    def mask(self) -> np.ndarray:
        # cached_property writes straight into __dict__, so it works on a
        # frozen dataclass; every statistic below derives from this mask
        # and is likewise computed once per (workload, snapshot), not
        # once per sweep point.
        return (self.true > 0) & self.released

    def masked(self, values: np.ndarray) -> np.ndarray:
        return values[self.mask]

    @cached_property
    def eval_true(self) -> np.ndarray:
        """True counts over the evaluation cells."""
        return self.true[self.mask]

    @cached_property
    def eval_sdl(self) -> np.ndarray:
        """SDL baseline answers over the evaluation cells."""
        return self.sdl_noisy[self.mask]

    @cached_property
    def eval_xv(self) -> np.ndarray:
        """Smooth-sensitivity statistic xv over the evaluation cells."""
        return self.xv[self.mask]

    @cached_property
    def eval_strata(self) -> np.ndarray:
        """Place-population stratum per evaluation cell."""
        return self.strata[self.mask]

    @cached_property
    def stratum_cells(self) -> tuple[np.ndarray, ...]:
        """Index sets over the evaluation cells: overall + one per stratum.

        Precomputed once so the streaming reducers stop rebuilding
        N_STRATA + 1 boolean masks for every point of every sweep; the
        indices ascend, so gathering with them preserves cell order (and
        hence float summation order) exactly.
        """
        strata = self.eval_strata
        return (
            np.arange(strata.size),
            *(np.flatnonzero(strata == s) for s in range(N_STRATA)),
        )

    def envelope(self, alpha: float) -> np.ndarray:
        """Cached per-α smooth-sensitivity envelope ``max(xv·α, 1)``.

        The envelope depends on the workload's xv statistic and α only —
        never on the mechanism or ε — so one read-only vector per
        (workload, α) serves *every* mechanism of a sweep: each
        mechanism's noise scale is this envelope divided by its own
        admissibility scalar ``a(ε)``.  Computed through the shared
        :func:`~repro.core.smooth_sensitivity.smooth_envelope` kernel,
        identical to what the per-point release path evaluates.
        """
        from repro.core.smooth_sensitivity import smooth_envelope

        cache = self.__dict__.setdefault("_envelope_cache", {})
        envelope = cache.get(alpha)
        if envelope is None:
            envelope = smooth_envelope(self.eval_xv, alpha)
            envelope.setflags(write=False)
            cache[alpha] = envelope
        return envelope

    @cached_property
    def sdl_rank_stats(self) -> tuple[tuple[np.ndarray, float], ...]:
        """Per index set: ``(centered SDL ranks, rank sd)``, computed once.

        Aligned with :attr:`stratum_cells` (overall first, then one entry
        per stratum).  Spearman points compare every noisy ordering
        against the *same* SDL ordering, so ranking the baseline is
        trial- and mechanism-invariant — the fused-family reducer reads
        these instead of re-ranking the SDL answers per (mechanism, α,
        ε, chunk).
        """
        from repro.metrics.ranking import centered_rank_stats

        sdl = self.eval_sdl
        stats = []
        for idx in self.stratum_cells:
            if idx.size < 2:
                stats.append((np.empty(0, dtype=np.float64), 0.0))
                continue
            centered, sd = centered_rank_stats(sdl[idx])
            centered.setflags(write=False)
            stats.append((centered, sd))
        return tuple(stats)

    def stratum_masks(self) -> list[np.ndarray]:
        """Evaluation mask restricted to each place-population stratum."""
        return [
            self.mask & (self.strata == stratum) for stratum in range(N_STRATA)
        ]


@dataclass(frozen=True)
class SeriesPoint:
    """One plotted point: a (mechanism, α, ε) cell of a figure."""

    mechanism: str
    alpha: float | None
    epsilon: float
    overall: float
    by_stratum: tuple[float, ...]
    feasible: bool = True
    theta: int | None = None


@dataclass(frozen=True)
class FigureSeries:
    """All points of one figure, plus labeling metadata."""

    name: str
    title: str
    metric: str  # "l1-ratio" or "spearman"
    points: tuple[SeriesPoint, ...]

    def grid(self, mechanism: str, alpha: float | None = None) -> list[SeriesPoint]:
        return [
            p
            for p in self.points
            if p.mechanism == mechanism
            and (alpha is None or p.alpha == alpha)
        ]


def points_identical(a: SeriesPoint, b: SeriesPoint) -> bool:
    """Bit-level equality of two points, treating NaN as equal to NaN.

    Dataclass ``==`` fails on infeasible points (their values are NaN and
    ``nan != nan``); the executor-equivalence tests and the result store
    use this instead.
    """
    if (a.mechanism, a.theta, a.feasible) != (b.mechanism, b.theta, b.feasible):
        return False
    values_a = [a.alpha, a.epsilon, a.overall, *a.by_stratum]
    values_b = [b.alpha, b.epsilon, b.overall, *b.by_stratum]
    if len(values_a) != len(values_b):
        return False
    for x, y in zip(values_a, values_b):
        if x is None or y is None:
            if x is not y:
                return False
        elif not (x == y or (np.isnan(x) and np.isnan(y))):
            return False
    return True
