"""Sweep planning: flatten figure/table/grid requests into point specs.

A :class:`SweepPlan` is the declarative form of one Monte Carlo sweep —
a list of :class:`PointSpec`\\ s, each naming one (workload, mechanism,
α, ε[, θ], metric, trials) grid point plus the seed that drives its
noise stream.  Two properties make plans the unit of parallel and
resumable execution:

- **Order independence** — every point carries its own seed, derived via
  :func:`repro.util.derive_seed` from the base seed and the point's grid
  coordinates (the exact convention the figure generators have always
  used), so results are bit-identical no matter which executor runs the
  points or in what order.
- **Content addressing** — :meth:`PointSpec.key` hashes the snapshot
  fingerprint together with everything that determines the point's
  value, so a :class:`~repro.engine.store.ResultStore` can recognize an
  already-computed point across processes and invocations.  Execution
  knobs that cannot change the value (``batch_size``, worker count) are
  deliberately excluded from the hash.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import asdict, dataclass

from repro.core.release import DEFAULT_WORKER_ATTRS
from repro.engine.store import content_key
from repro.util import derive_seed

TRUNCATED_LAPLACE = "truncated-laplace"

METRICS = ("l1-ratio", "spearman")

# One row per published figure: (workload name, metric, epsilon grid,
# seed-derivation tag, title).  The tags and titles must stay identical
# to the historical repro.experiments.figures values — the tag feeds the
# per-point seed derivation, so changing it would silently change every
# regenerated figure.
FIGURE_DEFS: dict[str, tuple[str, str, str, str, str]] = {
    "figure-1": (
        "workload-1",
        "l1-ratio",
        "standard",
        "fig1",
        "L1 Error Ratio - Place x Industry x Ownership "
        "(No Worker Attributes)",
    ),
    "figure-2": (
        "workload-1",
        "spearman",
        "standard",
        "fig2",
        "Ranking Correlation of Employment Counts - "
        "Place x Industry x Ownership",
    ),
    "figure-3": (
        "workload-2",
        "l1-ratio",
        "standard",
        "fig3",
        "L1 Error Ratio - Average L1 for a Single (Sex x Education) "
        "Query on the Workplace Marginal",
    ),
    "figure-4": (
        "workload-3",
        "l1-ratio",
        "extended",
        "fig4",
        "L1 Error Ratio - Average L1 for All (Sex x Education) "
        "Queries on the Workplace Marginal",
    ),
    "figure-5": (
        "females-college",
        "spearman",
        "standard",
        "fig5",
        "Ranking Correlation of Employment Counts - Females with "
        "College Degrees",
    ),
}

FINDING6_TITLE = "Truncated Laplace (node DP) on Workload 1, by theta"

FIGURE_NAMES: tuple[str, ...] = tuple(FIGURE_DEFS) + ("finding-6",)


def snapshot_fingerprint(
    config,
    worker_attrs: Sequence[str] = DEFAULT_WORKER_ATTRS,
    *,
    dataset_token: str | None = None,
) -> str:
    """A stable hex digest of everything that shapes the session snapshot.

    Two sessions with equal fingerprints hold bit-identical datasets,
    SDL baselines and workload statistics (generation and the SDL fit
    are fully seeded), so their sweep results are interchangeable — this
    is the cache-key prefix that scopes every stored point to its
    snapshot.  ``config`` is an :class:`~repro.experiments.config.ExperimentConfig`
    (duck-typed: only ``data``, ``sdl`` and ``seed`` are read).

    Sessions wrapping an explicitly *provided* dataset (not generated
    from ``config.data``) must pass a ``dataset_token`` content hash —
    :attr:`repro.api.ReleaseSession.snapshot_fingerprint` does — so
    their cached points never collide with config-generated ones.
    """
    payload = {
        "data": asdict(config.data),
        "sdl": asdict(config.sdl),
        "seed": config.seed,
        "worker_attrs": list(worker_attrs),
    }
    if dataset_token is not None:
        payload["dataset_token"] = dataset_token
    return content_key(payload, length=16)


@dataclass(frozen=True)
class PointSpec:
    """One grid point of a sweep, fully determined and content-hashable.

    ``mechanism == "truncated-laplace"`` points carry ``theta`` and no
    ``alpha`` (node DP has no α); calibrated points carry (α, ε, δ).
    ``batch_size`` bounds the per-draw noise transient but cannot change
    the point's value, so it is excluded from the content hash.
    """

    workload: str
    mechanism: str
    metric: str
    epsilon: float
    alpha: float | None = None
    delta: float = 0.0
    theta: int | None = None
    n_trials: int = 1
    seed: int | None = None
    batch_size: int | None = None

    def __post_init__(self):
        if self.metric not in METRICS:
            raise ValueError(
                f"metric must be one of {METRICS}, got {self.metric!r}"
            )
        if self.mechanism == TRUNCATED_LAPLACE:
            if self.theta is None:
                raise ValueError("truncated-laplace points need theta")
        elif self.alpha is None:
            raise ValueError(
                f"calibrated point ({self.mechanism}) needs alpha"
            )
        if self.n_trials < 1:
            raise ValueError(f"n_trials must be >= 1, got {self.n_trials}")

    def content(self, fingerprint: str) -> dict:
        """The canonical value-determining payload (feeds :meth:`key`)."""
        return {
            "fingerprint": fingerprint,
            "workload": self.workload,
            "mechanism": self.mechanism,
            "metric": self.metric,
            "alpha": self.alpha,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "theta": self.theta,
            "n_trials": self.n_trials,
            "seed": self.seed,
        }

    def key(self, fingerprint: str) -> str:
        """Content-address of this point under the given snapshot."""
        return content_key(self.content(fingerprint))

    @property
    def label(self) -> str:
        """A short human-readable coordinate string (logs and reports)."""
        knob = (
            f"theta={self.theta}"
            if self.mechanism == TRUNCATED_LAPLACE
            else f"alpha={self.alpha}"
        )
        return f"{self.workload}:{self.mechanism}:{knob}:eps={self.epsilon}"


@dataclass(frozen=True)
class SweepPlan:
    """A named, fingerprinted list of point specs ready for execution."""

    name: str
    metric: str
    fingerprint: str
    points: tuple[PointSpec, ...]
    title: str = ""

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[PointSpec]:
        return iter(self.points)

    def keys(self) -> list[str]:
        """Content-addresses of all points, in plan order."""
        return [spec.key(self.fingerprint) for spec in self.points]


@dataclass(frozen=True)
class FusedGroup:
    """One (workload, mechanism, metric, α) bucket of a plan's ε points.

    The fused evaluation path (``run_plan(fused=True)``) draws **one**
    unit-noise matrix per group — Theorem 8.4 releases are
    ``q(x) + S(x)/a · Z`` with ``Z`` independent of ε — and serves every
    member ε from it.  A member's value therefore depends on the whole
    group, not just its own spec: ``group_seed`` derives from the first
    member's seed *and* the group's ε tuple, and :meth:`member_key`
    mixes both into the member's content address, so fused results can
    never collide with (or be replayed as) unfused per-point results nor
    with a fused run over a different ε grid.

    ``indices`` are positions into the owning plan's ``points``, in plan
    order; ``epsilons`` aligns with them.
    """

    workload: str
    mechanism: str
    metric: str
    alpha: float
    delta: float
    n_trials: int
    batch_size: int | None
    indices: tuple[int, ...]
    epsilons: tuple[float, ...]
    group_seed: int | None

    @property
    def label(self) -> str:
        return (
            f"{self.workload}:{self.mechanism}:alpha={self.alpha}:"
            f"eps={list(self.epsilons)}"
        )

    def _fused_token(self) -> dict:
        return {
            "group_seed": self.group_seed,
            "epsilons": list(self.epsilons),
        }

    def member_key(self, spec: PointSpec, fingerprint: str) -> str:
        """Content-address of one member point under fused evaluation."""
        payload = spec.content(fingerprint)
        payload["fused"] = self._fused_token()
        return content_key(payload)

    def member_content(self, spec: PointSpec, fingerprint: str) -> dict:
        payload = spec.content(fingerprint)
        payload["fused"] = self._fused_token()
        return payload


@dataclass(frozen=True)
class FusedFamily:
    """One (workload, mechanism, metric) bucket of a plan's α×ε points.

    The family evaluation path (``run_plan(fused="family")``) extends
    the :class:`FusedGroup` idea across the α axis: Theorem 8.4 releases
    are ``q(x) + S(x,α)/a(ε) · Z`` with the unit noise ``Z`` independent
    of *both* α and ε — α lives only in the smooth-sensitivity envelope
    ``max(xv·α, 1)`` — so **one** unit draw serves the whole α×ε
    sub-grid of a mechanism.  A member's value depends on the family
    draw, hence on the family composition: ``family_seed`` derives from
    the first member's seed and the full (α, ε) member list, and
    :meth:`member_key` embeds both into the member's content address.
    Family results therefore never collide with the default per-point
    keys nor with the ε-only ``fused`` member keys.

    The unit draw depends only on ``(family_seed, n_trials, n_cells)``
    — not on which members are reduced from it — so a resumed family
    can recompute exactly its missing members and reproduce the original
    run's values bit-for-bit.

    ``indices`` are positions into the owning plan's ``points``, in plan
    order; ``alphas`` and ``epsilons`` align with them.
    """

    workload: str
    mechanism: str
    metric: str
    delta: float
    n_trials: int
    batch_size: int | None
    indices: tuple[int, ...]
    alphas: tuple[float, ...]
    epsilons: tuple[float, ...]
    family_seed: int | None

    @property
    def members(self) -> tuple[tuple[float, float], ...]:
        """The (α, ε) coordinate of every member, aligned with ``indices``."""
        return tuple(zip(self.alphas, self.epsilons))

    @property
    def label(self) -> str:
        return (
            f"{self.workload}:{self.mechanism}:family["
            f"{len(self.indices)} members]"
        )

    def _family_token(self) -> dict:
        return {
            "family_seed": self.family_seed,
            "members": [[a, e] for a, e in self.members],
        }

    def member_key(self, spec: PointSpec, fingerprint: str) -> str:
        """Content-address of one member point under family evaluation."""
        return content_key(self.member_content(spec, fingerprint))

    def member_content(self, spec: PointSpec, fingerprint: str) -> dict:
        payload = spec.content(fingerprint)
        payload["family"] = self._family_token()
        return payload


def _mechanism_unit_noise(name: str) -> str | None:
    """The registry's unit-noise family tag, or None for unknown names.

    Imported lazily: the registry sits in the api layer, which imports
    this engine package at session-module load.
    """
    from repro.api.registry import mechanism_spec

    try:
        spec = mechanism_spec(name)
    except (KeyError, ValueError):
        return None
    return getattr(spec, "unit_noise", None)


def fused_groups(plan: SweepPlan) -> tuple[list[FusedGroup], list[int]]:
    """Bucket a plan's fusable points into per-α groups.

    Returns ``(groups, leftover)``: every plan index lands in exactly one
    group's ``indices`` or in ``leftover`` (truncated-laplace points and
    mechanisms without a unit-noise family evaluate per point even under
    ``fused=True``).  Grouping is deterministic — buckets appear in
    first-member plan order and members keep plan order within a bucket
    — so group seeds and member keys are stable across runs.
    """
    buckets: dict[tuple, list[int]] = {}
    leftover: list[int] = []
    for index, spec in enumerate(plan.points):
        if (
            spec.mechanism == TRUNCATED_LAPLACE
            or _mechanism_unit_noise(spec.mechanism) is None
        ):
            leftover.append(index)
            continue
        bucket = (
            spec.workload,
            spec.mechanism,
            spec.metric,
            spec.n_trials,
            spec.batch_size,
            spec.alpha,
            spec.delta,
        )
        buckets.setdefault(bucket, []).append(index)

    groups = []
    for bucket, indices in buckets.items():
        workload, mechanism, metric, n_trials, batch_size, alpha, delta = bucket
        epsilons = tuple(plan.points[i].epsilon for i in indices)
        first_seed = plan.points[indices[0]].seed
        group_seed = (
            None
            if first_seed is None
            else derive_seed(
                first_seed,
                "fused:{}:{}:{}".format(
                    mechanism, alpha, ",".join(repr(e) for e in epsilons)
                ),
            )
        )
        groups.append(
            FusedGroup(
                workload=workload,
                mechanism=mechanism,
                metric=metric,
                alpha=alpha,
                delta=delta,
                n_trials=n_trials,
                batch_size=batch_size,
                indices=tuple(indices),
                epsilons=epsilons,
                group_seed=group_seed,
            )
        )
    return groups, leftover


def fused_families(plan: SweepPlan) -> tuple[list[FusedFamily], list[int]]:
    """Bucket a plan's fusable points into whole α×ε families.

    The family analogue of :func:`fused_groups`: the bucket key drops α
    (and ε), so every (α, ε) point of one (workload, mechanism, metric,
    trials, batch, δ) combination shares a single unit draw.  Returns
    ``(families, leftover)`` with the same determinism guarantees —
    buckets in first-member plan order, members in plan order within a
    bucket — so family seeds and member keys are stable across runs.
    """
    buckets: dict[tuple, list[int]] = {}
    leftover: list[int] = []
    for index, spec in enumerate(plan.points):
        if (
            spec.mechanism == TRUNCATED_LAPLACE
            or _mechanism_unit_noise(spec.mechanism) is None
        ):
            leftover.append(index)
            continue
        bucket = (
            spec.workload,
            spec.mechanism,
            spec.metric,
            spec.n_trials,
            spec.batch_size,
            spec.delta,
        )
        buckets.setdefault(bucket, []).append(index)

    families = []
    for bucket, indices in buckets.items():
        workload, mechanism, metric, n_trials, batch_size, delta = bucket
        alphas = tuple(plan.points[i].alpha for i in indices)
        epsilons = tuple(plan.points[i].epsilon for i in indices)
        first_seed = plan.points[indices[0]].seed
        family_seed = (
            None
            if first_seed is None
            else derive_seed(
                first_seed,
                "family:{}:{}".format(
                    mechanism,
                    ",".join(
                        f"{a!r}@{e!r}" for a, e in zip(alphas, epsilons)
                    ),
                ),
            )
        )
        families.append(
            FusedFamily(
                workload=workload,
                mechanism=mechanism,
                metric=metric,
                delta=delta,
                n_trials=n_trials,
                batch_size=batch_size,
                indices=tuple(indices),
                alphas=alphas,
                epsilons=epsilons,
                family_seed=family_seed,
            )
        )
    return families, leftover


def grid_specs(
    workload: str,
    metric: str,
    mechanisms: Sequence[str],
    alphas: Sequence[float],
    epsilons: Sequence[float],
    *,
    delta: float = 0.0,
    n_trials: int = 1,
    seed: int | None = None,
    tag: str = "grid",
    batch_size: int | None = None,
) -> list[PointSpec]:
    """Flatten a (mechanism × α × ε) product into point specs.

    Per-point seeds follow the figure-generator convention
    (``derive_seed(seed, f"{tag}:{mechanism}:{alpha}:{epsilon}")``), so a
    grid plan over the same tag reproduces the historical figures
    bit-for-bit.
    """
    specs = []
    for mechanism in mechanisms:
        for alpha in alphas:
            for epsilon in epsilons:
                point_seed = (
                    None
                    if seed is None
                    else derive_seed(seed, f"{tag}:{mechanism}:{alpha}:{epsilon}")
                )
                specs.append(
                    PointSpec(
                        workload=workload,
                        mechanism=mechanism,
                        metric=metric,
                        alpha=alpha,
                        epsilon=epsilon,
                        delta=delta,
                        n_trials=n_trials,
                        seed=point_seed,
                        batch_size=batch_size,
                    )
                )
    return specs


def grid_plan(
    workload: str,
    metric: str,
    mechanisms: Sequence[str],
    alphas: Sequence[float],
    epsilons: Sequence[float],
    *,
    fingerprint: str,
    delta: float = 0.0,
    n_trials: int = 1,
    seed: int | None = None,
    tag: str = "grid",
    batch_size: int | None = None,
    name: str | None = None,
    title: str = "",
) -> SweepPlan:
    """A :class:`SweepPlan` for an ad-hoc (mechanism × α × ε) grid."""
    specs = grid_specs(
        workload,
        metric,
        mechanisms,
        alphas,
        epsilons,
        delta=delta,
        n_trials=n_trials,
        seed=seed,
        tag=tag,
        batch_size=batch_size,
    )
    return SweepPlan(
        name=name or tag,
        metric=metric,
        fingerprint=fingerprint,
        points=tuple(specs),
        title=title or f"Sweep {tag}: {workload} ({metric})",
    )


def figure_plan(
    name: str,
    config,
    *,
    fingerprint: str | None = None,
    seed: int | None = None,
    metric: str | None = None,
) -> SweepPlan:
    """The sweep plan behind one published figure (or Finding 6).

    ``config`` supplies the grids and trial count (an
    :class:`~repro.experiments.config.ExperimentConfig`); ``seed``
    overrides the seed base (the figure generators pass the *session's*
    seed, which can differ from a grid-override config); ``metric``
    applies to ``finding-6`` only, which the paper reports under either
    metric.
    """
    seed_base = config.seed if seed is None else seed
    if fingerprint is None:
        fingerprint = snapshot_fingerprint(config)

    if name == "finding-6":
        chosen = metric or "l1-ratio"
        specs = [
            PointSpec(
                workload="workload-1",
                mechanism=TRUNCATED_LAPLACE,
                metric=chosen,
                epsilon=epsilon,
                theta=theta,
                n_trials=config.n_trials,
                seed=derive_seed(seed_base, f"finding6:{theta}:{epsilon}"),
                batch_size=config.trials_batch,
            )
            for theta in config.thetas
            for epsilon in config.epsilons_standard
        ]
        return SweepPlan(
            name=name,
            metric=chosen,
            fingerprint=fingerprint,
            points=tuple(specs),
            title=FINDING6_TITLE,
        )

    try:
        workload, fig_metric, eps_grid, tag, title = FIGURE_DEFS[name]
    except KeyError:
        raise ValueError(
            f"unknown figure {name!r}; choose from {sorted(FIGURE_NAMES)}"
        ) from None
    # Imported here, not at module scope: repro.experiments imports the
    # session layer, which imports this engine package.
    from repro.experiments.config import MECHANISM_NAMES

    epsilons = (
        config.epsilons_extended
        if eps_grid == "extended"
        else config.epsilons_standard
    )
    specs = grid_specs(
        workload,
        fig_metric,
        MECHANISM_NAMES,
        config.alphas,
        epsilons,
        delta=config.delta,
        n_trials=config.n_trials,
        seed=seed_base,
        tag=tag,
        batch_size=config.trials_batch,
    )
    return SweepPlan(
        name=name,
        metric=fig_metric,
        fingerprint=fingerprint,
        points=tuple(specs),
        title=title,
    )
