"""Sweep orchestration: plans in, points out — parallel and resumable.

:func:`run_plan` is the engine's front door.  Given a
:class:`~repro.engine.plan.SweepPlan` and a session it:

1. consults the :class:`~repro.engine.store.ResultStore` (when resuming)
   and keeps every already-computed point — a resumed figure recomputes
   only what is missing;
2. fans the missing points through an
   :class:`~repro.engine.executors.Executor` (serial by default; thread
   or process pools for parallel sweeps) via the non-debiting
   :meth:`~repro.api.ReleaseSession.evaluate_point_outcome`, so workers
   never touch a ledger;
3. records each **computed** point's spend on the parent session's
   ledger and then persists the point to the store, walking plan order
   — accounting is exact and deterministic no matter which executor ran
   the points, and a raise-mode overdraft aborts before the offending
   point is ever cached.  Cache hits debit nothing: re-serving a stored
   release consumes no new privacy budget (the noise was drawn, and
   paid for, when the point was first computed and stored).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.api.ledger import LedgerEntry
from repro.core.params import EREEParams
from repro.engine.executors import SerialExecutor, resolve_executor
from repro.engine.plan import TRUNCATED_LAPLACE, PointSpec, SweepPlan
from repro.engine.points import FigureSeries, SeriesPoint
from repro.engine.store import ResultStore

__all__ = [
    "SweepOutcome",
    "run_plan",
    "evaluate_point_spec",
    "resolve_workload",
    "figure_series",
]


def resolve_workload(name: str):
    """Look a workload up by registry name (see ``WORKLOADS``)."""
    # Imported lazily: repro.experiments sits above the engine (its
    # package __init__ pulls in the session layer, which imports us).
    from repro.experiments.workloads import WORKLOADS

    try:
        return WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None


def evaluate_point_spec(session, spec: PointSpec):
    """Task function: one spec → ``(SeriesPoint, LedgerEntry | None)``.

    Module-level (hence picklable by reference) so every executor — in
    particular process pools — can run it.  The spend record is built
    but **not** debited; the parent merges it.
    """
    workload = resolve_workload(spec.workload)
    if spec.mechanism == TRUNCATED_LAPLACE:
        return session.evaluate_point_outcome(
            workload,
            spec.mechanism,
            metric=spec.metric,
            n_trials=spec.n_trials,
            seed=spec.seed,
            batch_size=spec.batch_size,
            theta=spec.theta,
            epsilon=spec.epsilon,
        )
    params = EREEParams(spec.alpha, spec.epsilon, spec.delta)
    return session.evaluate_point_outcome(
        workload,
        spec.mechanism,
        params,
        metric=spec.metric,
        n_trials=spec.n_trials,
        seed=spec.seed,
        batch_size=spec.batch_size,
    )


# -- store (de)serialization ----------------------------------------------


def encode_point(point: SeriesPoint) -> dict:
    payload = asdict(point)
    payload["by_stratum"] = list(point.by_stratum)
    return payload


def decode_point(payload: dict) -> SeriesPoint:
    return SeriesPoint(
        mechanism=payload["mechanism"],
        alpha=payload["alpha"],
        epsilon=payload["epsilon"],
        overall=payload["overall"],
        by_stratum=tuple(payload["by_stratum"]),
        feasible=payload.get("feasible", True),
        theta=payload.get("theta"),
    )


def encode_spend(spend: LedgerEntry | None) -> dict | None:
    # One canonical spend wire format: the ledger's own JSON hooks
    # (shared with the release service's durable spend journal).
    return None if spend is None else spend.to_dict()


def decode_spend(payload: dict | None) -> LedgerEntry | None:
    return None if payload is None else LedgerEntry.from_dict(payload)


# -- orchestration --------------------------------------------------------


@dataclass
class SweepOutcome:
    """One executed (or resumed) sweep plan.

    ``points`` is in plan order regardless of execution order or cache
    mixture; ``spends`` holds the ledger entries of the points computed
    *this run* (cache hits spend nothing), also in plan order.
    """

    plan: SweepPlan
    points: list[SeriesPoint]
    computed: int = 0
    cache_hits: int = 0
    spends: list[LedgerEntry] = field(default_factory=list)

    @property
    def series(self) -> FigureSeries:
        """The outcome as a renderable figure series."""
        return figure_series(self.plan, self.points)


def figure_series(plan: SweepPlan, points) -> FigureSeries:
    return FigureSeries(
        name=plan.name,
        title=plan.title or plan.name,
        metric=plan.metric,
        points=tuple(points),
    )


def run_plan(
    plan: SweepPlan,
    session,
    *,
    executor=None,
    workers: int | None = None,
    store: ResultStore | None = None,
    resume: bool = False,
    merge_spend: bool = True,
) -> SweepOutcome:
    """Execute a sweep plan: resume from the store, fan out the rest.

    ``executor``/``workers`` resolve through
    :func:`~repro.engine.executors.resolve_executor` (serial when
    neither is given).  With a ``store``, newly computed points are
    always persisted; they are *read back* only when ``resume=True``, so
    a default run stays a full recomputation while writing the cache a
    later ``--resume`` run will hit.  ``merge_spend=False`` skips the
    ledger merge for callers doing their own accounting.
    """
    executor = resolve_executor(executor, workers) or SerialExecutor()
    n_points = len(plan.points)
    points: list[SeriesPoint | None] = [None] * n_points
    spends: dict[int, LedgerEntry] = {}
    missing = list(range(n_points))

    if store is not None and resume:
        missing = []
        for index, spec in enumerate(plan.points):
            payload = store.get(spec.key(plan.fingerprint))
            if payload is not None and "point" in payload:
                points[index] = decode_point(payload["point"])
            else:
                missing.append(index)
    cache_hits = n_points - len(missing)

    if missing:
        outcomes = executor.map(
            evaluate_point_spec, session, [plan.points[i] for i in missing]
        )
        # `missing` ascends and executor results come back in item
        # order, so this loop walks the plan order — each point's spend
        # records on the ledger *before* the point persists to the
        # store.  A raise-mode overdraft therefore aborts with every
        # stored point paid for: nothing a later resume would replay
        # free of charge was ever cached.
        for index, (point, spend) in zip(missing, outcomes):
            points[index] = point
            if spend is not None:
                spends[index] = spend
                if merge_spend:
                    session.ledger.record(spend)
            if store is not None:
                spec = plan.points[index]
                store.put(
                    spec.key(plan.fingerprint),
                    {
                        "spec": spec.content(plan.fingerprint),
                        "point": encode_point(point),
                        "spend": encode_spend(spend),
                    },
                )

    ordered_spends = [spends[i] for i in sorted(spends)]
    return SweepOutcome(
        plan=plan,
        points=list(points),
        computed=len(missing),
        cache_hits=cache_hits,
        spends=ordered_spends,
    )
