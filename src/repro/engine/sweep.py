"""Sweep orchestration: plans in, points out — parallel and resumable.

:func:`run_plan` is the engine's front door.  Given a
:class:`~repro.engine.plan.SweepPlan` and a session it:

1. consults the :class:`~repro.engine.store.ResultStore` (when resuming)
   and keeps every already-computed point — a resumed figure recomputes
   only what is missing;
2. fans the missing points through an
   :class:`~repro.engine.executors.Executor` (serial by default; thread
   or process pools for parallel sweeps) via the non-debiting
   :meth:`~repro.api.ReleaseSession.evaluate_point_outcome`, so workers
   never touch a ledger;
3. records each **computed** point's spend on the parent session's
   ledger and then persists the point to the store, walking plan order
   — accounting is exact and deterministic no matter which executor ran
   the points, and a raise-mode overdraft aborts before the offending
   point is ever cached.  Cache hits debit nothing: re-serving a stored
   release consumes no new privacy budget (the noise was drawn, and
   paid for, when the point was first computed and stored).
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass, field
from functools import partial

from repro.api.ledger import LedgerEntry
from repro.core.params import EREEParams
from repro.engine import profile as stage_profile
from repro.engine.executors import SerialExecutor, resolve_executor
from repro.engine.plan import (
    TRUNCATED_LAPLACE,
    FusedFamily,
    FusedGroup,
    PointSpec,
    SweepPlan,
    fused_families,
    fused_groups,
)
from repro.engine.points import FigureSeries, SeriesPoint
from repro.engine.store import ResultStore

__all__ = [
    "SweepOutcome",
    "run_plan",
    "evaluate_point_spec",
    "evaluate_fused_group",
    "evaluate_fused_family",
    "resolve_workload",
    "figure_series",
]


def resolve_workload(name: str):
    """Look a workload up by registry name (see ``WORKLOADS``)."""
    # Imported lazily: repro.experiments sits above the engine (its
    # package __init__ pulls in the session layer, which imports us).
    from repro.experiments.workloads import WORKLOADS

    try:
        return WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None


def evaluate_point_spec(session, spec: PointSpec):
    """Task function: one spec → ``(SeriesPoint, LedgerEntry | None)``.

    Module-level (hence picklable by reference) so every executor — in
    particular process pools — can run it.  The spend record is built
    but **not** debited; the parent merges it.
    """
    workload = resolve_workload(spec.workload)
    if spec.mechanism == TRUNCATED_LAPLACE:
        return session.evaluate_point_outcome(
            workload,
            spec.mechanism,
            metric=spec.metric,
            n_trials=spec.n_trials,
            seed=spec.seed,
            batch_size=spec.batch_size,
            theta=spec.theta,
            epsilon=spec.epsilon,
        )
    params = EREEParams(spec.alpha, spec.epsilon, spec.delta)
    return session.evaluate_point_outcome(
        workload,
        spec.mechanism,
        params,
        metric=spec.metric,
        n_trials=spec.n_trials,
        seed=spec.seed,
        batch_size=spec.batch_size,
    )


def evaluate_fused_group(session, group: FusedGroup):
    """Task function: one fused group → aligned (points, spends) lists.

    Module-level (picklable by reference) like
    :func:`evaluate_point_spec`; one unit-noise draw serves every ε of
    the group.  Spends come back detached — the parent merges them.
    """
    workload = resolve_workload(group.workload)
    values, spends = session.evaluate_fused_outcome(
        workload,
        group.mechanism,
        alpha=group.alpha,
        delta=group.delta,
        epsilons=list(group.epsilons),
        metrics=(group.metric,),
        n_trials=group.n_trials,
        seed=group.group_seed,
        batch_size=group.batch_size,
    )
    return values[group.metric], spends


def evaluate_fused_family(session, item):
    """Task function: ``(family, evaluate mask)`` → (points, spends).

    Module-level (picklable by reference); one unit draw serves the
    family's whole α×ε grid.  The mask marks which members to reduce —
    a resumed family recomputes only its missing members, bit-identical
    to the full-family run because the unit draw never depends on the
    mask.  Masked-out slots come back ``None``.
    """
    family, evaluate = item
    workload = resolve_workload(family.workload)
    values, spends = session.evaluate_family_outcome(
        workload,
        family.mechanism,
        members=family.members,
        delta=family.delta,
        metrics=(family.metric,),
        n_trials=family.n_trials,
        seed=family.family_seed,
        batch_size=family.batch_size,
        evaluate=evaluate,
    )
    return values[family.metric], spends


def _profiled_task(fn, session, item):
    """Run one executor task under its own profiler scope.

    Process-pool workers cannot see the parent's module-global profiler,
    so a profiled sweep ships each task wrapped in this: the worker
    captures its own draw/reduce split and returns it (tagged with the
    worker PID) alongside the outcome for the parent to merge.
    """
    with stage_profile.profiled() as prof:
        result = fn(session, item)
    return result, (os.getpid(), prof.as_dict())


def _executor_map(executor, fn, session, items):
    """``executor.map`` that keeps stage attribution across process pools.

    Serial and thread executors run tasks in this process, where the
    active profiler already sees the kernels, so they map straight
    through (the per-task wrapper would also race on the module global
    under threads).  A process pool under an active profiler gets the
    wrapped task; the returned per-task profiles fold into the parent's
    stage totals and per-worker breakdown.
    """
    if not (
        stage_profile.active()
        and getattr(executor, "name", None) == "process"
        and getattr(executor, "workers", 1) > 1
    ):
        return executor.map(fn, session, items)
    outcomes = executor.map(partial(_profiled_task, fn), session, items)
    results = []
    for result, (pid, worker_profile) in outcomes:
        stage_profile.merge_worker(pid, worker_profile)
        results.append(result)
    return results


# -- store (de)serialization ----------------------------------------------


def encode_point(point: SeriesPoint) -> dict:
    payload = asdict(point)
    payload["by_stratum"] = list(point.by_stratum)
    return payload


def decode_point(payload: dict) -> SeriesPoint:
    return SeriesPoint(
        mechanism=payload["mechanism"],
        alpha=payload["alpha"],
        epsilon=payload["epsilon"],
        overall=payload["overall"],
        by_stratum=tuple(payload["by_stratum"]),
        feasible=payload.get("feasible", True),
        theta=payload.get("theta"),
    )


def encode_spend(spend: LedgerEntry | None) -> dict | None:
    # One canonical spend wire format: the ledger's own JSON hooks
    # (shared with the release service's durable spend journal).
    return None if spend is None else spend.to_dict()


def decode_spend(payload: dict | None) -> LedgerEntry | None:
    return None if payload is None else LedgerEntry.from_dict(payload)


# -- orchestration --------------------------------------------------------


@dataclass
class SweepOutcome:
    """One executed (or resumed) sweep plan.

    ``points`` is in plan order regardless of execution order or cache
    mixture; ``spends`` holds the ledger entries of the points computed
    *this run* (cache hits spend nothing), also in plan order.
    """

    plan: SweepPlan
    points: list[SeriesPoint]
    computed: int = 0
    cache_hits: int = 0
    spends: list[LedgerEntry] = field(default_factory=list)
    # Per-stage wall-clock breakdown (draw/reduce/store/other/total
    # seconds) when the run was profiled; None otherwise.
    profile: dict | None = None

    @property
    def series(self) -> FigureSeries:
        """The outcome as a renderable figure series."""
        return figure_series(self.plan, self.points)


def figure_series(plan: SweepPlan, points) -> FigureSeries:
    return FigureSeries(
        name=plan.name,
        title=plan.title or plan.name,
        metric=plan.metric,
        points=tuple(points),
    )


def _normalize_fused(fused) -> str | None:
    """Map the ``fused`` knob onto an evaluation mode.

    ``False``/``None`` → per-point; ``True``/``"group"`` → per-(mechanism,
    α) ε groups (the PR-8 path); ``"family"`` → whole α×ε families.
    """
    if fused is None or fused is False:
        return None
    if fused is True or fused == "group":
        return "group"
    if fused == "family":
        return "family"
    raise ValueError(
        f"fused must be False, True, 'group' or 'family', got {fused!r}"
    )


def run_plan(
    plan: SweepPlan,
    session,
    *,
    executor=None,
    workers: int | None = None,
    store: ResultStore | None = None,
    resume: bool = False,
    merge_spend: bool = True,
    fused: bool | str = False,
    profile: bool = False,
    claim: bool = False,
    claim_owner: str | None = None,
    claim_ttl_s: float | None = None,
    claim_poll_s: float = 0.2,
) -> SweepOutcome:
    """Execute a sweep plan: resume from the store, fan out the rest.

    ``executor``/``workers`` resolve through
    :func:`~repro.engine.executors.resolve_executor` (serial when
    neither is given).  With a ``store``, newly computed points are
    always persisted; they are *read back* only when ``resume=True``, so
    a default run stays a full recomputation while writing the cache a
    later ``--resume`` run will hit.  ``merge_spend=False`` skips the
    ledger merge for callers doing their own accounting.

    ``claim=True`` turns the drain cooperative: before computing a
    missing point this run *claims* it on the store's
    :class:`~repro.runtime.ClaimBoard` (an atomic lease file beside the
    payloads), so N concurrent drains of the same plan against one
    shared store partition the grid instead of each computing all of
    it.  Points another drain claimed are deferred: this run polls the
    store (every ``claim_poll_s`` seconds) and adopts their results as
    cache hits when they land; a claim whose owner crashed expires
    after ``claim_ttl_s`` (default
    :data:`~repro.runtime.DEFAULT_LEASE_TTL_S`) and is taken over.
    Claims are an optimization, never a correctness mechanism — if two
    drains ever compute the same point (expiry race, unreachable
    backend failing open) both write bit-identical bytes and last
    writer wins, exactly the claimless behavior.  Requires a ``store``
    and implies ``resume`` (a cooperative drain must honor what the
    shared store already holds); the per-point values are bit-identical
    to a claimless run of the same plan.

    ``fused=True`` (or ``"group"``) evaluates the plan through
    per-(mechanism, α) :class:`~repro.engine.plan.FusedGroup`\\ s — one
    unit-noise draw per group instead of one per point.
    ``fused="family"`` goes further: one draw per whole
    :class:`~repro.engine.plan.FusedFamily` α×ε grid of a mechanism,
    with linear mechanisms reducing the entire family analytically.
    Both fused modes draw different random bits than the default path
    (statistically, not bit, identical) and store results under their
    own member keys — ``fused``-token keys for groups, ``family``-token
    keys for families — so the three paths never serve each other's
    cached points.  The default ``fused=False`` path is bit-identical to
    what it always produced.

    ``profile=True`` wraps the run in the stage profiler
    (:mod:`repro.engine.profile`); the outcome's ``profile`` field then
    carries the draw/reduce/store wall-clock breakdown — including, for
    process-pool runs, the per-worker stage split shipped back with each
    task.
    """
    if claim:
        if store is None:
            raise ValueError("claim=True requires a result store")
        if _normalize_fused(fused) is not None:
            raise ValueError(
                "claim coordination runs on the per-point path; "
                "combine --claim with fused=False"
            )
        resume = True  # a cooperative drain must honor the shared store
    claim_spec = (
        None
        if not claim
        else {"owner": claim_owner, "ttl_s": claim_ttl_s, "poll_s": claim_poll_s}
    )
    if profile:
        with stage_profile.profiled() as prof:
            outcome = _run_plan(
                plan,
                session,
                executor=executor,
                workers=workers,
                store=store,
                resume=resume,
                merge_spend=merge_spend,
                fused=fused,
                claim_spec=claim_spec,
            )
        outcome.profile = prof.as_dict()
        return outcome
    return _run_plan(
        plan,
        session,
        executor=executor,
        workers=workers,
        store=store,
        resume=resume,
        merge_spend=merge_spend,
        fused=fused,
        claim_spec=claim_spec,
    )


def _store_point(store, key: str, content: dict, point, spend) -> None:
    with stage_profile.stage("store"):
        store.put(
            key,
            {
                "spec": content,
                "point": encode_point(point),
                "spend": encode_spend(spend),
            },
        )


def _run_plan(
    plan: SweepPlan,
    session,
    *,
    executor,
    workers: int | None,
    store: ResultStore | None,
    resume: bool,
    merge_spend: bool,
    fused: bool | str,
    claim_spec: dict | None = None,
) -> SweepOutcome:
    executor = resolve_executor(executor, workers) or SerialExecutor()
    fused_mode = _normalize_fused(fused)
    if fused_mode == "family":
        return _run_family(
            plan,
            session,
            executor=executor,
            store=store,
            resume=resume,
            merge_spend=merge_spend,
        )
    if fused_mode == "group":
        return _run_fused(
            plan,
            session,
            executor=executor,
            store=store,
            resume=resume,
            merge_spend=merge_spend,
        )
    n_points = len(plan.points)
    points: list[SeriesPoint | None] = [None] * n_points
    spends: dict[int, LedgerEntry] = {}
    missing = list(range(n_points))

    if store is not None and resume:
        missing = []
        for index, spec in enumerate(plan.points):
            payload = store.get(spec.key(plan.fingerprint))
            if payload is not None and "point" in payload:
                points[index] = decode_point(payload["point"])
            else:
                missing.append(index)
    cache_hits = n_points - len(missing)

    if missing and claim_spec is not None:
        computed = _drain_claimed(
            plan,
            session,
            executor=executor,
            store=store,
            missing=missing,
            points=points,
            spends=spends,
            merge_spend=merge_spend,
            claim_spec=claim_spec,
        )
        ordered_spends = [spends[i] for i in sorted(spends)]
        return SweepOutcome(
            plan=plan,
            points=list(points),
            computed=len(computed),
            cache_hits=n_points - len(computed),
            spends=ordered_spends,
        )

    if missing:
        outcomes = _executor_map(
            executor, evaluate_point_spec, session,
            [plan.points[i] for i in missing],
        )
        # `missing` ascends and executor results come back in item
        # order, so this loop walks the plan order — each point's spend
        # records on the ledger *before* the point persists to the
        # store.  A raise-mode overdraft therefore aborts with every
        # stored point paid for: nothing a later resume would replay
        # free of charge was ever cached.
        for index, (point, spend) in zip(missing, outcomes):
            points[index] = point
            if spend is not None:
                spends[index] = spend
                if merge_spend:
                    session.ledger.record(spend)
            if store is not None:
                spec = plan.points[index]
                _store_point(
                    store,
                    spec.key(plan.fingerprint),
                    spec.content(plan.fingerprint),
                    point,
                    spend,
                )

    ordered_spends = [spends[i] for i in sorted(spends)]
    return SweepOutcome(
        plan=plan,
        points=list(points),
        computed=len(missing),
        cache_hits=cache_hits,
        spends=ordered_spends,
    )


def _drain_claimed(
    plan: SweepPlan,
    session,
    *,
    executor,
    store: ResultStore,
    missing: list[int],
    points: list,
    spends: dict,
    merge_spend: bool,
    claim_spec: dict,
) -> set[int]:
    """Cooperatively drain ``missing``: claim, compute, adopt, take over.

    Each round: (1) poll the store for deferred points another drain
    finished (adopted as cache hits — they debit nothing here; their
    spend was recorded by whoever computed them); (2) claim whatever is
    still unowned and compute the claimed batch through the executor,
    recording spend and persisting **per round** — a drain must publish
    its results before waiting on anyone else's, or two drains holding
    disjoint claims would deadlock politely forever; (3) release each
    claim only *after* its point persisted, so no gap exists in which a
    point is neither claimed nor stored.  A round that claims nothing
    sleeps ``poll_s`` and rescans; a crashed owner's lease expires
    (``ttl_s``) and :meth:`~repro.runtime.ClaimBoard.try_claim` takes
    it over, so every stall is bounded.  Returns the indices computed
    *by this drain*.
    """
    board = store.claim_board(
        owner=claim_spec.get("owner"), ttl_s=claim_spec.get("ttl_s")
    )
    poll_s = claim_spec.get("poll_s") or 0.2
    pending = set(missing)
    computed: set[int] = set()

    def key_of(index: int) -> str:
        return plan.points[index].key(plan.fingerprint)

    try:
        while pending:
            # 1. Adopt results another drain published since last scan.
            #    `contains` first: polling with `get` alone would count
            #    a miss against the store every round.
            for index in sorted(pending):
                if not store.contains(key_of(index)):
                    continue
                payload = store.get(key_of(index))
                if payload is not None and "point" in payload:
                    points[index] = decode_point(payload["point"])
                    pending.discard(index)
            if not pending:
                break
            # 2. Claim and compute one batch.  After *winning* a claim,
            #    re-check the store: the previous holder may have
            #    published and released between our adoption scan and
            #    this claim.  Holding the lease freezes the entry
            #    (publishers store *before* releasing), so the re-check
            #    is race-free — this is what makes two concurrent
            #    drains compute each point exactly once.
            claimed = []
            for index in sorted(pending):
                if not board.try_claim(key_of(index)):
                    continue
                if store.contains(key_of(index)):
                    payload = store.get(key_of(index))
                    if payload is not None and "point" in payload:
                        points[index] = decode_point(payload["point"])
                        board.release(key_of(index))
                        pending.discard(index)
                        continue
                claimed.append(index)
            if not claimed:
                time.sleep(poll_s)
                continue
            outcomes = _executor_map(
                executor,
                evaluate_point_spec,
                session,
                [plan.points[i] for i in claimed],
            )
            # 3. Publish in plan order: record spend, persist, release.
            for index, (point, spend) in zip(claimed, outcomes):
                points[index] = point
                if spend is not None:
                    spends[index] = spend
                    if merge_spend:
                        session.ledger.record(spend)
                spec = plan.points[index]
                _store_point(
                    store,
                    key_of(index),
                    spec.content(plan.fingerprint),
                    point,
                    spend,
                )
                board.release(key_of(index))
                pending.discard(index)
                computed.add(index)
    finally:
        board.release_all()
    return computed


def _run_fused(
    plan: SweepPlan,
    session,
    *,
    executor,
    store: ResultStore | None,
    resume: bool,
    merge_spend: bool,
) -> SweepOutcome:
    """The ``fused=True`` body of :func:`run_plan`.

    Fusable points evaluate group-at-a-time through
    :func:`evaluate_fused_group`; leftover points (truncated-laplace,
    mechanisms without a unit-noise family) run through the ordinary
    per-point path under their ordinary keys — their values are
    identical either way, so they stay shareable with unfused runs.
    A group recomputes whenever *any* of its members is missing from
    the store (the draw is indivisible), but members already cached
    keep their stored values and debit nothing; only the missing ones
    record spend and persist.
    """
    groups, leftover = fused_groups(plan)
    n_points = len(plan.points)
    points: list[SeriesPoint | None] = [None] * n_points
    spends: dict[int, LedgerEntry] = {}

    # -- leftover (non-fusable) points: the ordinary per-point path ----
    missing_leftover = list(leftover)
    if store is not None and resume:
        missing_leftover = []
        for index in leftover:
            spec = plan.points[index]
            payload = store.get(spec.key(plan.fingerprint))
            if payload is not None and "point" in payload:
                points[index] = decode_point(payload["point"])
            else:
                missing_leftover.append(index)

    # -- fused groups: resume member-by-member, recompute by group -----
    cached_members: set[int] = set()
    pending_groups: list[FusedGroup] = []
    if store is not None and resume:
        for group in groups:
            complete = True
            for index in group.indices:
                spec = plan.points[index]
                payload = store.get(group.member_key(spec, plan.fingerprint))
                if payload is not None and "point" in payload:
                    points[index] = decode_point(payload["point"])
                    cached_members.add(index)
                else:
                    complete = False
            if not complete:
                pending_groups.append(group)
    else:
        pending_groups = list(groups)

    computed_indices: set[int] = set(missing_leftover)
    results: dict[int, tuple[SeriesPoint, LedgerEntry | None, FusedGroup | None]] = {}

    if missing_leftover:
        outcomes = _executor_map(
            executor,
            evaluate_point_spec,
            session,
            [plan.points[i] for i in missing_leftover],
        )
        for index, (point, spend) in zip(missing_leftover, outcomes):
            results[index] = (point, spend, None)

    if pending_groups:
        group_outcomes = _executor_map(
            executor, evaluate_fused_group, session, pending_groups
        )
        for group, (group_points, group_spends) in zip(
            pending_groups, group_outcomes
        ):
            for index, point, spend in zip(
                group.indices, group_points, group_spends
            ):
                if index in cached_members:
                    continue  # stored value wins; recompute spends nothing
                results[index] = (point, spend, group)
                computed_indices.add(index)

    # Plan-order walk: record each newly computed point's spend before
    # persisting it, exactly like the unfused path.
    for index in sorted(results):
        point, spend, group = results[index]
        points[index] = point
        if spend is not None:
            spends[index] = spend
            if merge_spend:
                session.ledger.record(spend)
        if store is not None:
            spec = plan.points[index]
            if group is None:
                key = spec.key(plan.fingerprint)
                content = spec.content(plan.fingerprint)
            else:
                key = group.member_key(spec, plan.fingerprint)
                content = group.member_content(spec, plan.fingerprint)
            _store_point(store, key, content, point, spend)

    ordered_spends = [spends[i] for i in sorted(spends)]
    return SweepOutcome(
        plan=plan,
        points=list(points),
        computed=len(computed_indices),
        cache_hits=n_points - len(computed_indices),
        spends=ordered_spends,
    )


def _run_family(
    plan: SweepPlan,
    session,
    *,
    executor,
    store: ResultStore | None,
    resume: bool,
    merge_spend: bool,
) -> SweepOutcome:
    """The ``fused="family"`` body of :func:`run_plan`.

    Fusable points evaluate family-at-a-time through
    :func:`evaluate_fused_family` — one unit draw per whole α×ε grid of
    a mechanism; leftover points run the ordinary per-point path under
    their ordinary keys.  Resume is *member-precise*: the family's unit
    draw depends only on the family seed, never on which members get
    reduced, so a resumed family recomputes exactly its missing members
    and reproduces the original run's values bit-for-bit — unlike the
    ε-group path, cached members cost no redundant kernel work at all.
    """
    families, leftover = fused_families(plan)
    n_points = len(plan.points)
    points: list[SeriesPoint | None] = [None] * n_points
    spends: dict[int, LedgerEntry] = {}

    # -- leftover (non-fusable) points: the ordinary per-point path ----
    missing_leftover = list(leftover)
    if store is not None and resume:
        missing_leftover = []
        for index in leftover:
            spec = plan.points[index]
            payload = store.get(spec.key(plan.fingerprint))
            if payload is not None and "point" in payload:
                points[index] = decode_point(payload["point"])
            else:
                missing_leftover.append(index)

    # -- families: resume member-by-member, recompute only the missing -
    pending: list[tuple[FusedFamily, tuple[bool, ...]]] = []
    if store is not None and resume:
        for family in families:
            evaluate = []
            for index in family.indices:
                spec = plan.points[index]
                payload = store.get(family.member_key(spec, plan.fingerprint))
                if payload is not None and "point" in payload:
                    points[index] = decode_point(payload["point"])
                    evaluate.append(False)
                else:
                    evaluate.append(True)
            if any(evaluate):
                pending.append((family, tuple(evaluate)))
    else:
        pending = [
            (family, (True,) * len(family.indices)) for family in families
        ]

    computed_indices: set[int] = set(missing_leftover)
    results: dict[int, tuple[SeriesPoint, LedgerEntry | None, FusedFamily | None]] = {}

    if missing_leftover:
        outcomes = _executor_map(
            executor,
            evaluate_point_spec,
            session,
            [plan.points[i] for i in missing_leftover],
        )
        for index, (point, spend) in zip(missing_leftover, outcomes):
            results[index] = (point, spend, None)

    if pending:
        family_outcomes = _executor_map(
            executor, evaluate_fused_family, session, pending
        )
        for (family, evaluate), (family_points, family_spends) in zip(
            pending, family_outcomes
        ):
            for index, do_eval, point, spend in zip(
                family.indices, evaluate, family_points, family_spends
            ):
                if not do_eval:
                    continue  # cached member: stored value already placed
                results[index] = (point, spend, family)
                computed_indices.add(index)

    # Plan-order walk: record each newly computed point's spend before
    # persisting it, exactly like the unfused path.
    for index in sorted(results):
        point, spend, family = results[index]
        points[index] = point
        if spend is not None:
            spends[index] = spend
            if merge_spend:
                session.ledger.record(spend)
        if store is not None:
            spec = plan.points[index]
            if family is None:
                key = spec.key(plan.fingerprint)
                content = spec.content(plan.fingerprint)
            else:
                key = family.member_key(spec, plan.fingerprint)
                content = family.member_content(spec, plan.fingerprint)
            _store_point(store, key, content, point, spend)

    ordered_spends = [spends[i] for i in sorted(spends)]
    return SweepOutcome(
        plan=plan,
        points=list(points),
        computed=len(computed_indices),
        cache_hits=n_points - len(computed_indices),
        spends=ordered_spends,
    )
