"""Content-addressed on-disk result store — sweeps become resumable.

The store maps a content hash (from :meth:`repro.engine.plan.PointSpec.key`,
which covers the snapshot fingerprint and every value-determining
parameter) to a small JSON payload, with an optional ``.npz`` sidecar
for array-valued results.  Because the key *is* the content, the store
needs no invalidation logic: a changed seed, grid, trial count or
snapshot config simply hashes to a different key, and a re-run of a
figure recomputes only the points it has never seen.

Layout (two-level fan-out keeps directories small)::

    reports/cache/
        ab/abc123....json        # point payload (JSON, NaN-tolerant)
        ab/abc123....npz         # optional array sidecar

All I/O goes through a :class:`repro.storage.StorageBackend` — the
default :class:`~repro.storage.local.LocalFSBackend` reproduces the
historical layout byte for byte (atomic temp-file + ``os.replace``
writes), and a :class:`~repro.storage.remote.RemoteObjectBackend`
makes the same cache fleet-shareable (write-through puts, read-through
local cache) so N workers drain one shared plan without recomputing
each other's points.  Unreadable or corrupt payloads are treated as
misses, *quarantined* (evicted together with their sidecar so a bad
artifact is never read twice), and recomputed — and a corrupt ``.npz``
sidecar gets exactly the same treatment as a corrupt ``.json`` payload.
"""

from __future__ import annotations

import hashlib
import io
import json
import zipfile
from pathlib import Path

import numpy as np

from repro.storage import LocalFSBackend, StorageBackend, StoreStats
from repro.storage.url import backend_from_spec

DEFAULT_CACHE_DIR = Path("reports") / "cache"

SCHEMA_VERSION = 1


def content_key(payload: dict, length: int | None = None) -> str:
    """The canonical content hash used for every store key.

    One shared idiom — sorted-key JSON through SHA-256 — so point specs
    (:meth:`repro.engine.plan.PointSpec.key`), snapshot fingerprints and
    ad-hoc row caches (Table 3) cannot drift onto incompatible hashing
    conventions.  ``length`` truncates the hex digest (fingerprints use
    16 chars; full keys use all 64).
    """
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    return digest if length is None else digest[:length]


class ResultStore:
    """A content-addressed JSON/NPZ store over a storage backend.

    ``hits``/``misses``/``writes`` count this instance's traffic — the
    resume tests (and the CLI's cache summary) read them to prove that a
    second run recomputed nothing; :attr:`statistics` adds evictions
    and the backend's byte traffic (:class:`~repro.storage.StoreStats`).
    """

    def __init__(
        self,
        root: Path | str | None = None,
        *,
        backend: StorageBackend | None = None,
    ):
        if backend is None:
            backend = LocalFSBackend(
                DEFAULT_CACHE_DIR if root is None else root
            )
        elif root is not None and Path(root) != backend.root:
            raise ValueError(
                f"pass either root or backend, not both "
                f"(root={str(root)!r}, backend root={str(backend.root)!r})"
            )
        self.backend = backend

    def __repr__(self) -> str:
        return (
            f"ResultStore({str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, writes={self.writes})"
        )

    @property
    def root(self) -> Path:
        return self.backend.root

    @property
    def statistics(self) -> StoreStats:
        """The full shared ledger (store counters + backend byte traffic)."""
        return self.backend.stats

    @property
    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "writes": self.writes}

    @property
    def hits(self) -> int:
        return self.backend.stats.hits

    @hits.setter
    def hits(self, value: int) -> None:
        self.backend.stats.hits = value

    @property
    def misses(self) -> int:
        return self.backend.stats.misses

    @misses.setter
    def misses(self, value: int) -> None:
        self.backend.stats.misses = value

    @property
    def writes(self) -> int:
        return self.backend.stats.writes

    @writes.setter
    def writes(self, value: int) -> None:
        self.backend.stats.writes = value

    def spec(self) -> dict:
        """A picklable description a worker process rebuilds from."""
        return {"store": "result", "backend": self.backend.spec()}

    def claim_board(self, *, owner: str | None = None, ttl_s: float | None = None):
        """A :class:`~repro.runtime.ClaimBoard` over this store's backend.

        Lease files land under ``claims/`` beside the payloads (same
        backend, same fleet visibility) with a ``.lease`` suffix, so
        :meth:`__len__` and :meth:`clear` — which look only at
        ``.json``/``.npz`` — never count or delete live coordination
        state.
        """
        from repro.runtime.claims import ClaimBoard

        return ClaimBoard(self.backend, owner=owner, ttl_s=ttl_s)

    @classmethod
    def from_spec(cls, spec: dict) -> "ResultStore":
        return cls(backend=backend_from_spec(spec["backend"]))

    def _key_for(self, key: str, suffix: str = ".json") -> str:
        if len(key) < 3:
            raise ValueError(f"store keys must be content hashes, got {key!r}")
        return f"{key[:2]}/{key}{suffix}"

    def path_for(self, key: str, suffix: str = ".json") -> Path:
        """Where a key's payload lives (two-level hex fan-out)."""
        return self.root / self._key_for(key, suffix)

    def contains(self, key: str) -> bool:
        """Whether a payload exists for ``key`` (does not touch counters)."""
        return self.backend.contains(self._key_for(key))

    def _quarantine(self, key: str) -> None:
        """Evict a corrupt entry (payload + sidecar) so it is never re-read.

        Under a local backend this deletes the files; under a remote
        one it drops only the cached copies — the authoritative remote
        object may be fine (the corruption local), and if it is not,
        the re-download-then-reparse will miss again without this
        worker destroying shared state.
        """
        evicted = False
        for suffix in (".json", ".npz"):
            evicted = self.backend.evict(self._key_for(key, suffix)) or evicted
        self.backend.stats.evictions += evicted

    # -- payloads -------------------------------------------------------

    def get(self, key: str) -> dict | None:
        """Load the JSON payload for ``key``; ``None`` (a miss) otherwise.

        A corrupt or unreadable payload counts as a miss and is
        quarantined together with its sidecar: resumability must never
        be worse than recomputing, and a bad artifact must never be
        parsed twice.
        """
        raw = self.backend.read_bytes(self._key_for(key))
        if raw is None:
            self.misses += 1
            return None
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._quarantine(key)
            self.misses += 1
            return None
        if not isinstance(payload, dict):
            self._quarantine(key)
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(
        self,
        key: str,
        payload: dict,
        arrays: dict[str, np.ndarray] | None = None,
    ) -> Path:
        """Atomically persist ``payload`` (and optional array sidecar)."""
        payload = dict(payload)
        payload.setdefault("schema", SCHEMA_VERSION)
        payload["key"] = key
        if arrays is not None:
            # The sidecar goes first: a payload listing arrays that are
            # not yet readable would be a torn write.
            buffer = io.BytesIO()
            np.savez_compressed(buffer, **arrays)
            self.backend.put_file(self._key_for(key, ".npz"), buffer.getvalue())
            payload["arrays"] = sorted(arrays)
        path = self.backend.put_file(
            self._key_for(key),
            json.dumps(payload, sort_keys=True).encode("utf-8"),
        )
        self.writes += 1
        return path

    def get_arrays(self, key: str) -> dict[str, np.ndarray] | None:
        """Load the ``.npz`` sidecar for ``key``, if present and readable.

        A corrupt or truncated sidecar counts as a miss and quarantines
        the whole entry (payload included) — the payload's ``arrays``
        manifest promises data the sidecar can no longer deliver, so
        the pair must be recomputed together.
        """
        path = self.backend.open_local(self._key_for(key, ".npz"))
        if path is None:
            return None
        try:
            with np.load(path) as archive:
                return {name: archive[name] for name in archive.files}
        except (OSError, ValueError, EOFError, zipfile.BadZipFile):
            self._quarantine(key)
            return None

    # -- maintenance ----------------------------------------------------

    def __len__(self) -> int:
        """Number of stored payloads (walks the tree; for tests/tools)."""
        return sum(
            1 for key in self.backend.list_keys() if key.endswith(".json")
        )

    def clear(self) -> int:
        """Delete every stored payload and sidecar; returns the count."""
        removed = 0
        for key in self.backend.list_keys():
            if key.endswith((".json", ".npz")):
                self.backend.delete(key)
                removed += key.endswith(".json")
        return removed
