"""Content-addressed on-disk result store — sweeps become resumable.

The store maps a content hash (from :meth:`repro.engine.plan.PointSpec.key`,
which covers the snapshot fingerprint and every value-determining
parameter) to a small JSON payload, with an optional ``.npz`` sidecar
for array-valued results.  Because the key *is* the content, the store
needs no invalidation logic: a changed seed, grid, trial count or
snapshot config simply hashes to a different key, and a re-run of a
figure recomputes only the points it has never seen.

Layout (two-level fan-out keeps directories small)::

    reports/cache/
        ab/abc123....json        # point payload (JSON, NaN-tolerant)
        ab/abc123....npz         # optional array sidecar

Writes are atomic (temp file + ``os.replace``) so a crashed or killed
sweep never leaves a half-written payload that a resume would trust;
unreadable or corrupt payloads are treated as misses and recomputed.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

import numpy as np

DEFAULT_CACHE_DIR = Path("reports") / "cache"

SCHEMA_VERSION = 1


def content_key(payload: dict, length: int | None = None) -> str:
    """The canonical content hash used for every store key.

    One shared idiom — sorted-key JSON through SHA-256 — so point specs
    (:meth:`repro.engine.plan.PointSpec.key`), snapshot fingerprints and
    ad-hoc row caches (Table 3) cannot drift onto incompatible hashing
    conventions.  ``length`` truncates the hex digest (fingerprints use
    16 chars; full keys use all 64).
    """
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    return digest if length is None else digest[:length]


class ResultStore:
    """A content-addressed JSON/NPZ store under one root directory.

    ``hits``/``misses``/``writes`` count this instance's traffic — the
    resume tests (and the CLI's cache summary) read them to prove that a
    second run recomputed nothing.
    """

    def __init__(self, root: Path | str = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def __repr__(self) -> str:
        return (
            f"ResultStore({str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, writes={self.writes})"
        )

    @property
    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "writes": self.writes}

    def path_for(self, key: str, suffix: str = ".json") -> Path:
        """Where a key's payload lives (two-level hex fan-out)."""
        if len(key) < 3:
            raise ValueError(f"store keys must be content hashes, got {key!r}")
        return self.root / key[:2] / f"{key}{suffix}"

    def contains(self, key: str) -> bool:
        """Whether a payload exists for ``key`` (does not touch counters)."""
        return self.path_for(key).is_file()

    # -- payloads -------------------------------------------------------

    def get(self, key: str) -> dict | None:
        """Load the JSON payload for ``key``; ``None`` (a miss) otherwise.

        A corrupt or unreadable payload counts as a miss: resumability
        must never be worse than recomputing.
        """
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if not isinstance(payload, dict):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(
        self,
        key: str,
        payload: dict,
        arrays: dict[str, np.ndarray] | None = None,
    ) -> Path:
        """Atomically persist ``payload`` (and optional array sidecar)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = dict(payload)
        payload.setdefault("schema", SCHEMA_VERSION)
        payload["key"] = key
        if arrays is not None:
            self._write_atomic(
                self.path_for(key, ".npz"),
                lambda handle: np.savez_compressed(handle, **arrays),
                binary=True,
            )
            payload["arrays"] = sorted(arrays)
        self._write_atomic(
            path,
            lambda handle: json.dump(payload, handle, sort_keys=True),
        )
        self.writes += 1
        return path

    def get_arrays(self, key: str) -> dict[str, np.ndarray] | None:
        """Load the ``.npz`` sidecar for ``key``, if present."""
        path = self.path_for(key, ".npz")
        try:
            with np.load(path) as archive:
                return {name: archive[name] for name in archive.files}
        except (OSError, ValueError):
            return None

    # -- maintenance ----------------------------------------------------

    def __len__(self) -> int:
        """Number of stored payloads (walks the tree; for tests/tools)."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every stored payload and sidecar; returns the count."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("*/*"):
            if path.suffix in (".json", ".npz"):
                path.unlink(missing_ok=True)
                removed += path.suffix == ".json"
        return removed

    @staticmethod
    def _write_atomic(path: Path, write, binary: bool = False) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            if binary:
                handle = os.fdopen(descriptor, "wb")
            else:
                handle = os.fdopen(descriptor, "w", encoding="utf-8")
            with handle:
                write(handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
