"""repro.engine — the parallel, resumable sweep engine.

Every headline artifact of the paper is a Monte Carlo sweep over a
(mechanism × α × ε × workload) grid; this package is the scaffolding
that plans, executes and caches those sweeps:

- :mod:`repro.engine.points` — the neutral point/result dataclasses
  (``SeriesPoint``, ``FigureSeries``, ``WorkloadStatistics``) shared by
  the session and experiment layers;
- :mod:`repro.engine.evaluate` — the per-point evaluation kernels over
  cached workload statistics (batched noise draw + streamed Sec-10
  metric reduction);
- :mod:`repro.engine.plan` — ``SweepPlan``/``PointSpec``: figure and
  grid requests flattened into content-hashed, self-seeded point specs
  whose results are independent of execution order;
- :mod:`repro.engine.executors` — pluggable ``SerialExecutor`` /
  ``ThreadExecutor`` / ``ProcessExecutor`` (workers rebuild the session
  from its config once and return spend records for exact ledger
  accounting);
- :mod:`repro.engine.store` — the content-addressed on-disk
  ``ResultStore`` (JSON/NPZ under ``reports/cache/``) that makes every
  sweep resumable;
- :mod:`repro.engine.sweep` — ``run_plan``, tying the four together.

Quickstart::

    from repro.api import ReleaseSession
    from repro.engine import ProcessExecutor, ResultStore, figure_plan, run_plan

    session = ReleaseSession.from_synthetic(target_jobs=50_000, seed=1)
    plan = figure_plan("figure-1", session.config)
    outcome = run_plan(
        plan, session,
        executor=ProcessExecutor(workers=4),
        store=ResultStore("reports/cache"), resume=True,
    )
    print(outcome.computed, "computed,", outcome.cache_hits, "from cache")
"""

from __future__ import annotations

from repro.engine.executors import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
)
from repro.engine.plan import (
    FIGURE_NAMES,
    PointSpec,
    SweepPlan,
    figure_plan,
    grid_plan,
    snapshot_fingerprint,
)
from repro.engine.points import (
    N_STRATA,
    FigureSeries,
    SeriesPoint,
    WorkloadStatistics,
    points_identical,
)
from repro.engine.store import DEFAULT_CACHE_DIR, ResultStore
from repro.engine.sweep import SweepOutcome, evaluate_point_spec, run_plan

__all__ = [
    "N_STRATA",
    "DEFAULT_CACHE_DIR",
    "FIGURE_NAMES",
    "Executor",
    "FigureSeries",
    "PointSpec",
    "ProcessExecutor",
    "ResultStore",
    "SerialExecutor",
    "SeriesPoint",
    "SweepOutcome",
    "SweepPlan",
    "ThreadExecutor",
    "WorkloadStatistics",
    "evaluate_point_spec",
    "figure_plan",
    "grid_plan",
    "points_identical",
    "resolve_executor",
    "run_plan",
    "snapshot_fingerprint",
]
