"""Uniform release results with evaluation helpers.

Every request executed by :class:`repro.api.ReleaseSession` returns a
:class:`ReleaseResult`: the underlying
:class:`~repro.core.release.MarginalRelease`, the request and derived
seed (provenance), the ledger entry it debited, and — when the session
has a fitted SDL system — the SDL baseline and place-population strata
needed for the paper's Sec 10 metrics (L1 error ratio and Spearman rank
correlation, overall and per stratum).

Metric conventions match :mod:`repro.experiments.runner`: evaluation is
restricted to cells with positive true count that were released, the L1
ratio is the mean private L1 over trials divided by the SDL L1, and
Spearman compares each trial's ordering to the SDL ordering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.api.ledger import LedgerEntry
from repro.api.request import ReleaseRequest
from repro.core.composition import MarginalBudget
from repro.core.release import MarginalRelease
from repro.metrics.error import l1_error, l1_error_batch
from repro.metrics.ranking import spearman_correlation_batch
from repro.metrics.strata import STRATUM_LABELS

N_STRATA = len(STRATUM_LABELS)


def _json_float(value: float) -> float | None:
    """``nan``/``inf`` → ``None``: strict JSON has no non-finite floats."""
    value = float(value)
    return value if math.isfinite(value) else None


def _params_dict(params) -> dict:
    return {
        "alpha": params.alpha,
        "epsilon": params.epsilon,
        "delta": params.delta,
    }


@dataclass(frozen=True)
class ReleaseResult:
    """One executed release request, with provenance and metrics.

    ``sdl_noisy`` and ``strata`` are per-cell arrays over the marginal
    (present when the session computed its SDL baseline); the metric
    helpers return ``nan`` when a baseline is unavailable or a stratum
    is empty, mirroring the figure runner.
    """

    request: ReleaseRequest
    release: MarginalRelease
    seed: int | None = None
    ledger_entry: LedgerEntry | None = None
    sdl_noisy: np.ndarray | None = None
    strata: np.ndarray | None = None

    # -- delegation -----------------------------------------------------

    @property
    def noisy(self) -> np.ndarray:
        return self.release.noisy

    @property
    def true(self) -> np.ndarray:
        return self.release.true

    @property
    def released(self) -> np.ndarray:
        return self.release.released

    @property
    def budget(self) -> MarginalBudget:
        return self.release.budget

    @property
    def mechanism(self) -> str:
        return self.release.mechanism_name

    @property
    def n_trials(self) -> int:
        """Number of Monte Carlo trials in ``noisy`` (1 for a vector)."""
        return 1 if self.release.noisy.ndim == 1 else self.release.noisy.shape[0]

    @property
    def mask(self) -> np.ndarray:
        """Evaluation cells: released with positive true count (Sec 10)."""
        return self.release.released & (self.release.true > 0)

    def trials(self) -> np.ndarray:
        """``(n_trials, n_cells)`` view of the noisy release."""
        return np.atleast_2d(self.release.noisy)

    # -- metrics --------------------------------------------------------

    def mean_l1(self, cells: np.ndarray | None = None) -> float:
        """Mean-over-trials total L1 error on the evaluation cells."""
        cells = self.mask if cells is None else cells
        if not cells.any():
            return float("nan")
        return float(
            l1_error_batch(self.true[cells], self.trials()[:, cells]).mean()
        )

    def l1_ratio(self, cells: np.ndarray | None = None) -> float:
        """Mean private L1 over trials / SDL L1 (the Sec 10 error ratio)."""
        cells = self.mask if cells is None else cells
        if self.sdl_noisy is None or not cells.any():
            return float("nan")
        sdl_l1 = l1_error(self.true[cells], self.sdl_noisy[cells])
        private_l1 = self.mean_l1(cells)
        if sdl_l1 == 0.0:
            return math.inf if private_l1 > 0 else float("nan")
        return private_l1 / sdl_l1

    def spearman(self, cells: np.ndarray | None = None) -> float:
        """Mean-over-trials Spearman ρ against the SDL ordering."""
        cells = self.mask if cells is None else cells
        if self.sdl_noisy is None or int(cells.sum()) < 2:
            return float("nan")
        values = spearman_correlation_batch(
            self.trials()[:, cells], self.sdl_noisy[cells]
        )
        if np.all(np.isnan(values)):
            return float("nan")
        return float(np.nanmean(values))

    def _stratum_cells(self) -> list[np.ndarray]:
        if self.strata is None:
            return []
        mask = self.mask
        return [mask & (self.strata == s) for s in range(N_STRATA)]

    def l1_ratio_by_stratum(self) -> tuple[float, ...]:
        """The error ratio per place-population stratum (Sec 10 panels)."""
        if self.strata is None:
            return (float("nan"),) * N_STRATA
        return tuple(self.l1_ratio(cells) for cells in self._stratum_cells())

    def spearman_by_stratum(self) -> tuple[float, ...]:
        """Spearman ρ per place-population stratum."""
        if self.strata is None:
            return (float("nan"),) * N_STRATA
        return tuple(self.spearman(cells) for cells in self._stratum_cells())

    # -- presentation ---------------------------------------------------

    def to_dict(self, *, top: int = 10) -> dict:
        """A JSON-serializable summary of this result (no raw arrays).

        This is the wire format of the release service and the CLI's
        ``--json`` output: provenance (the request payload and derived
        seed), the composed budget, the Sec-10 metrics against the SDL
        baseline, the spend record, and the ``top`` largest released
        cells.  ``nan`` metrics serialize as ``None`` so the payload is
        strict-JSON clean.
        """
        budget = self.budget
        return {
            "request": self.request.to_dict(),
            "seed": self.seed,
            "mechanism": self.mechanism,
            "n_trials": self.n_trials,
            "n_cells": int(self.release.marginal.n_cells),
            "n_released": int(self.release.released.sum()),
            "budget": {
                "mode": budget.mode,
                "worker_domain": budget.worker_domain,
                "per_cell": _params_dict(budget.per_cell),
                "total": _params_dict(budget.total),
            },
            "metrics": {
                "mean_l1": _json_float(self.mean_l1()),
                "l1_ratio": _json_float(self.l1_ratio()),
                "spearman": _json_float(self.spearman()),
                "l1_ratio_by_stratum": [
                    _json_float(v) for v in self.l1_ratio_by_stratum()
                ],
                "spearman_by_stratum": [
                    _json_float(v) for v in self.spearman_by_stratum()
                ],
            },
            "spend": (
                None if self.ledger_entry is None else self.ledger_entry.to_dict()
            ),
            "top_cells": [
                {
                    "cell": [str(v) for v in values],
                    "true": true,
                    "noisy": noisy,
                }
                for values, true, noisy in self.top_cells(top)
            ],
        }

    def top_cells(self, k: int = 10) -> list[tuple[tuple, float, float]]:
        """The ``k`` largest released cells as (labels, true, noisy).

        Uses the first trial of a batched release; handy for CLI output
        and quick inspection.
        """
        noisy = self.trials()[0]
        released = self.release.released
        order = np.argsort(noisy)[::-1]
        rows = []
        for index in order:
            if not released[index]:
                continue
            rows.append(
                (
                    self.release.marginal.cell_values(int(index)),
                    float(self.true[index]),
                    float(noisy[index]),
                )
            )
            if len(rows) >= k:
                break
        return rows
