"""The mechanism registry: one name → mechanism mapping for the library.

Every consumer (the release facade, figures, attacks, benchmarks, the
CLI) selects mechanisms by name through this registry instead of
hard-coded ``if/elif`` chains.  Mechanisms self-register with the
:func:`register_mechanism` class decorator::

    @register_mechanism("log-laplace", needs_xv=False)
    class LogLaplace:
        ...

Three kinds of entries coexist:

- ``CALIBRATED`` — per-cell (α, ε[, δ])-ER-EE mechanisms whose factory
  signature is ``factory(params: EREEParams, **options)`` and which
  expose ``release_counts``/``release_counts_batch`` (the paper's three
  algorithms);
- ``BASELINE`` — classical-DP baselines with their own parameters (the
  node-DP Truncated Laplace: ``factory(theta=..., epsilon=...)``);
- ``COMPOSITE`` — multi-stage release *procedures* built on top of the
  calibrated mechanisms (the weighted-split extension); these cannot be
  instantiated per cell and are executed through
  :meth:`repro.api.ReleaseSession.run` or their release function.

This module is intentionally a leaf: it imports nothing from the rest of
the library at module scope, so mechanism modules can import the
decorator without cycles.  The built-in mechanisms register lazily on
first lookup (:func:`_ensure_builtins`).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

CALIBRATED = "calibrated"
BASELINE = "baseline"
COMPOSITE = "composite"

_KINDS = (CALIBRATED, BASELINE, COMPOSITE)


@dataclass(frozen=True)
class MechanismSpec:
    """Registry metadata for one named mechanism.

    ``needs_xv`` says whether ``release_counts`` takes the per-cell
    smooth-sensitivity statistic; ``strong_worker_ok`` whether the
    mechanism carries a strong-mode guarantee for worker-attribute
    queries (Log-Laplace does not — Theorem 8.1 proves only the weak
    variant); ``feasible`` is an optional ``EREEParams -> bool``
    predicate for the (α, ε, δ) combinations the mechanism plots;
    ``strict_feasibility`` marks mechanisms whose *construction* rejects
    infeasible parameters (the smooth mechanisms' hard constraints, as
    opposed to Log-Laplace's merely-unplotted unbounded-mean region), so
    request validation can fail fast.

    ``unit_noise`` names the mechanism's unit-noise family (``"gamma4"``
    or ``"laplace"``) when its release factors as a data-independent unit
    draw transformed by ε-derived scalars — the property the fused sweep
    path exploits to share one ``(n_trials, n_cells)`` draw across every
    ε of a (workload, mechanism, α) group.  ``linear_unit_scale`` marks
    the subset whose transform is exactly ``counts + scale(ε) · Z``
    (Theorem 8.4 form), where per-cell |error| is ``scale(ε)·|Z|`` and L1
    metrics never need the noisy matrix at all.  ``None`` means not
    fusable (e.g. the node-DP baseline).
    """

    name: str
    factory: Callable
    kind: str = CALIBRATED
    needs_xv: bool = True
    strong_worker_ok: bool = True
    feasible: Callable | None = None
    strict_feasibility: bool = False
    description: str = ""
    unit_noise: str | None = None
    linear_unit_scale: bool = False

    def is_feasible(self, params) -> bool:
        """Whether the mechanism accepts these per-cell parameters."""
        return True if self.feasible is None else bool(self.feasible(params))

    def create(self, params, **options):
        """Instantiate the mechanism with per-cell parameters.

        Calibrated mechanisms get ``factory(params, **options)``; the
        Truncated-Laplace baseline maps ``params.epsilon`` plus a
        ``theta`` option onto its own signature; composite procedures
        have no per-cell instantiation and raise.
        """
        if self.kind == CALIBRATED:
            return self.factory(params, **options)
        if self.kind == BASELINE:
            return self.factory(epsilon=params.epsilon, **options)
        raise ValueError(
            f"mechanism {self.name!r} is a multi-stage release procedure, "
            "not a per-cell mechanism; run it through "
            "repro.api.ReleaseSession.run or call its release function "
            "directly"
        )


_REGISTRY: dict[str, MechanismSpec] = {}
_builtins_loaded = False


def register_mechanism(
    name: str,
    *,
    kind: str = CALIBRATED,
    needs_xv: bool = True,
    strong_worker_ok: bool = True,
    feasible: Callable | None = None,
    strict_feasibility: bool = False,
    description: str = "",
    unit_noise: str | None = None,
    linear_unit_scale: bool = False,
    replace: bool = False,
):
    """Class (or function) decorator registering a mechanism by name.

    Registering an already-taken name raises unless ``replace=True`` —
    silent shadowing of e.g. ``"smooth-laplace"`` would invalidate every
    privacy statement made about releases under that name.
    """
    if kind not in _KINDS:
        raise ValueError(f"kind must be one of {_KINDS}, got {kind!r}")

    def decorator(factory):
        if name in _REGISTRY and not replace:
            raise ValueError(
                f"mechanism {name!r} is already registered "
                f"(to {_REGISTRY[name].factory!r}); pass replace=True to "
                "override it deliberately"
            )
        _REGISTRY[name] = MechanismSpec(
            name=name,
            factory=factory,
            kind=kind,
            needs_xv=needs_xv,
            strong_worker_ok=strong_worker_ok,
            feasible=feasible,
            strict_feasibility=strict_feasibility,
            description=description,
            unit_noise=unit_noise,
            linear_unit_scale=linear_unit_scale,
        )
        return factory

    return decorator


def unregister_mechanism(name: str) -> None:
    """Remove a registration (primarily for tests of the registry itself)."""
    _REGISTRY.pop(name, None)


def _ensure_builtins() -> None:
    """Import the modules that register the built-in mechanisms.

    Registration happens as a side effect of importing each module (the
    decorator runs at class-definition time); importing here keeps the
    registry a leaf module while guaranteeing the built-ins are present
    before any lookup.
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    import repro.core.log_laplace  # noqa: F401
    import repro.core.smooth_gamma  # noqa: F401
    import repro.core.smooth_laplace  # noqa: F401
    import repro.dp.truncation  # noqa: F401
    import repro.extensions.weighted_split  # noqa: F401


def available_mechanisms(kind: str | None = None) -> tuple[str, ...]:
    """Sorted names of all registered mechanisms (optionally one kind)."""
    _ensure_builtins()
    names = (
        name
        for name, spec in _REGISTRY.items()
        if kind is None or spec.kind == kind
    )
    return tuple(sorted(names))


def mechanism_spec(name: str) -> MechanismSpec:
    """Look up a mechanism's registry entry by name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        choices = ", ".join(repr(n) for n in sorted(_REGISTRY))
        raise ValueError(
            f"unknown mechanism {name!r}; choose from {choices}"
        ) from None


def create_mechanism(name: str, params, **options):
    """Instantiate a registered mechanism with per-cell parameters.

    The single replacement for the historical ``make_mechanism`` if/elif
    chain; ``repro.core.release.make_mechanism`` now delegates here.
    """
    return mechanism_spec(name).create(params, **options)
