"""Declarative release requests.

A :class:`ReleaseRequest` is everything needed to publish one marginal:
which attributes, which mechanism (by registry name), the (α, ε, δ)
parameters, the privacy mode and budget style, and the Monte Carlo trial
settings.  Requests validate themselves up front — unknown mechanisms,
invalid modes, infeasible parameter combinations and guarantee-less
mechanism/mode pairings are rejected before any data is touched — and
execute through :meth:`repro.api.ReleaseSession.run`.

:meth:`ReleaseRequest.grid` expands a (mechanism × α × ε) product into a
request list for :meth:`repro.api.ReleaseSession.run_grid`, deriving a
distinct per-point seed from one base seed the way the figure runner
does.

:meth:`ReleaseRequest.to_dict` / :meth:`ReleaseRequest.from_dict` give
requests an exact JSON round-trip — the wire format of the release
service (``POST /v1/release``) and the CLI's ``--json`` paths.
``from_dict`` rejects malformed payloads with errors that *name the
offending field*, so a remote caller learns exactly which key to fix.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, replace

from repro.api.registry import (
    BASELINE,
    CALIBRATED,
    COMPOSITE,
    MechanismSpec,
    mechanism_spec,
)
from repro.core.composition import (
    MARGINAL,
    SINGLE_QUERY,
    STRONG,
    WEAK,
    marginal_budget,
)
from repro.core.params import EREEParams
from repro.util import derive_seed


@dataclass(frozen=True)
class ReleaseRequest:
    """One declarative marginal-release request.

    ``mode=None`` resolves to the paper's pairing (strong for
    establishment-only marginals, weak when worker attributes are
    present).  ``n_trials=None`` releases a single noisy vector;
    ``n_trials=k`` draws a ``(k, n_cells)`` Monte Carlo matrix in one
    vectorized call, optionally chunked by ``trials_batch`` to bound the
    per-draw transient.  ``label`` names the request in the ledger
    (defaults to ``"mechanism:attrs"``).
    """

    attrs: tuple[str, ...]
    mechanism: str
    alpha: float
    epsilon: float
    delta: float = 0.0
    mode: str | None = None
    budget_style: str = MARGINAL
    n_trials: int | None = None
    trials_batch: int | None = None
    seed: int | None = None
    mechanism_options: Mapping | None = None
    label: str | None = None

    def __post_init__(self):
        object.__setattr__(self, "attrs", tuple(self.attrs))

    # -- derived --------------------------------------------------------

    @property
    def params(self) -> EREEParams:
        """The total (α, ε, δ) of the request (validates positivity)."""
        return EREEParams(self.alpha, self.epsilon, self.delta)

    @property
    def spec(self) -> MechanismSpec:
        """The registry entry (raises for unknown mechanism names)."""
        return mechanism_spec(self.mechanism)

    @property
    def ledger_label(self) -> str:
        if self.label is not None:
            return self.label
        return f"{self.mechanism}:{'x'.join(self.attrs)}"

    def with_seed(self, seed: int | None) -> "ReleaseRequest":
        return replace(self, seed=seed)

    # -- JSON round-trip ------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-serializable payload that round-trips via :meth:`from_dict`.

        ``None``-valued optional fields are dropped, so the payload is
        canonical: two equal requests serialize to identical dicts (the
        property the release service's dedupe hashing relies on).
        """
        payload = {
            "attrs": list(self.attrs),
            "mechanism": self.mechanism,
            "alpha": self.alpha,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "budget_style": self.budget_style,
        }
        for name in ("mode", "n_trials", "trials_batch", "seed", "label"):
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        if self.mechanism_options is not None:
            payload["mechanism_options"] = dict(self.mechanism_options)
        return payload

    @classmethod
    def from_dict(cls, payload) -> "ReleaseRequest":
        """Build a request from a JSON payload, naming any offending field.

        Every failure raises ``ValueError`` whose message states *which*
        field is wrong and why — the service and the CLI surface these
        verbatim, so remote callers can fix their payloads without
        reading this source.
        """
        if not isinstance(payload, Mapping):
            raise ValueError(
                "release request payload must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        known = {
            "attrs", "mechanism", "alpha", "epsilon", "delta", "mode",
            "budget_style", "n_trials", "trials_batch", "seed",
            "mechanism_options", "label",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown request field(s) {unknown}; valid fields are "
                f"{sorted(known)}"
            )
        attrs = payload.get("attrs")
        if (
            not isinstance(attrs, Sequence)
            or isinstance(attrs, (str, bytes))
            or not attrs
            or not all(isinstance(name, str) for name in attrs)
        ):
            raise ValueError(
                "field 'attrs' must be a non-empty list of attribute "
                f"names, got {attrs!r}"
            )
        mechanism = payload.get("mechanism")
        if not isinstance(mechanism, str) or not mechanism:
            raise ValueError(
                f"field 'mechanism' must be a mechanism name, got "
                f"{mechanism!r}"
            )
        kwargs = {"attrs": tuple(attrs), "mechanism": mechanism}
        for name, required in (("alpha", True), ("epsilon", True), ("delta", False)):
            if name not in payload:
                if required:
                    raise ValueError(f"field {name!r} is required")
                continue
            value = payload[name]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(
                    f"field {name!r} must be a number, got {value!r}"
                )
            kwargs[name] = float(value)
        for name in ("n_trials", "trials_batch", "seed"):
            value = payload.get(name)
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(
                    f"field {name!r} must be an integer, got {value!r}"
                )
            kwargs[name] = value
        for name in ("mode", "budget_style", "label"):
            value = payload.get(name)
            if value is None:
                continue
            if not isinstance(value, str):
                raise ValueError(
                    f"field {name!r} must be a string, got {value!r}"
                )
            kwargs[name] = value
        options = payload.get("mechanism_options")
        if options is not None:
            if not isinstance(options, Mapping):
                raise ValueError(
                    "field 'mechanism_options' must be a JSON object, got "
                    f"{options!r}"
                )
            kwargs["mechanism_options"] = dict(options)
        return cls(**kwargs)

    # -- validation -----------------------------------------------------

    def validate(self, schema=None, worker_attrs: Sequence[str] = ()) -> None:
        """Raise ``ValueError`` for any inconsistency, before touching data.

        With a ``schema`` the attribute names are checked against it; with
        ``worker_attrs`` the mode resolution, the mechanism/mode guarantee
        check (Theorem 8.1), and the exact per-cell feasibility check (the
        weak d·ε split can push the per-cell budget below a strict
        mechanism's constraint) run here instead of at execution.
        """
        if not self.attrs:
            raise ValueError("a release request needs at least one attribute")
        spec = self.spec  # raises with the choices listed for unknown names
        params = self.params  # raises for non-positive α/ε, bad δ
        if (
            spec.kind == CALIBRATED
            and spec.strict_feasibility
            and not spec.is_feasible(params)
        ):
            # Necessary condition even before the budget split: feasibility
            # is monotone in ε and per-cell ε never exceeds the total.
            raise ValueError(
                f"{self.mechanism} is infeasible at alpha={self.alpha}, "
                f"epsilon={self.epsilon}, delta={self.delta} (its hard "
                "parameter constraint fails); see "
                "repro.core.params for the feasibility rules"
            )
        if self.mode not in (None, STRONG, WEAK):
            raise ValueError(
                f"mode must be 'strong', 'weak' or None, got {self.mode!r}"
            )
        if self.budget_style not in (MARGINAL, SINGLE_QUERY):
            raise ValueError(
                f"budget_style must be {MARGINAL!r} or {SINGLE_QUERY!r}, "
                f"got {self.budget_style!r}"
            )
        if self.n_trials is not None and self.n_trials < 1:
            raise ValueError(f"n_trials must be >= 1, got {self.n_trials}")
        if self.trials_batch is not None and self.trials_batch < 1:
            raise ValueError(
                f"trials_batch must be >= 1, got {self.trials_batch}"
            )
        if spec.kind == BASELINE:
            options = dict(self.mechanism_options or {})
            if "theta" not in options:
                raise ValueError(
                    f"{self.mechanism} needs mechanism_options={{'theta': ...}} "
                    "(the truncation degree)"
                )
        if schema is not None:
            unknown = [name for name in self.attrs if name not in schema.names]
            if unknown:
                raise ValueError(
                    f"unknown attributes {unknown}; schema has "
                    f"{list(schema.names)}"
                )
        if worker_attrs:
            has_worker = any(name in worker_attrs for name in self.attrs)
            resolved = self.mode or (WEAK if has_worker else STRONG)
            if resolved == STRONG and has_worker and not spec.strong_worker_ok:
                raise ValueError(
                    f"{self.mechanism} has no strong-mode guarantee for "
                    "worker-attribute queries (Theorem 8.1 proves only the "
                    "weak variant); use a smooth mechanism for the strong "
                    "ablation"
                )
            if spec.kind == COMPOSITE and not has_worker:
                raise ValueError(
                    f"{self.mechanism} only applies to marginals with "
                    f"worker attributes; got {self.attrs}"
                )
            if (
                schema is not None
                and spec.kind == CALIBRATED
                and spec.strict_feasibility
            ):
                budget = marginal_budget(
                    self.params,
                    schema,
                    self.attrs,
                    worker_attrs,
                    resolved,
                    self.budget_style,
                )
                if not spec.is_feasible(budget.per_cell):
                    raise ValueError(
                        f"{self.mechanism} is infeasible per cell: the "
                        f"{resolved}-mode composition splits "
                        f"epsilon={self.epsilon} into "
                        f"{budget.per_cell.epsilon:g} per cell over "
                        f"d={budget.worker_domain} worker cells, below the "
                        "mechanism's hard constraint; raise epsilon or use "
                        "another mechanism"
                    )

    # -- grid expansion -------------------------------------------------

    @classmethod
    def grid(
        cls,
        attrs: Sequence[str],
        mechanisms: Sequence[str],
        alphas: Sequence[float],
        epsilons: Sequence[float],
        delta: float = 0.0,
        *,
        mode: str | None = None,
        budget_style: str = MARGINAL,
        n_trials: int | None = None,
        trials_batch: int | None = None,
        seed: int | None = None,
        tag: str = "grid",
        mechanism_options: Mapping | None = None,
    ) -> list["ReleaseRequest"]:
        """Expand a (mechanism × α × ε) product into a request list.

        Each point gets its own seed derived from ``seed`` and the point
        coordinates (matching the figure runner's convention), so the
        grid is reproducible yet the points' noise streams are
        decorrelated.
        """
        requests = []
        for mechanism in mechanisms:
            for alpha in alphas:
                for epsilon in epsilons:
                    point_seed = (
                        None
                        if seed is None
                        else derive_seed(seed, f"{tag}:{mechanism}:{alpha}:{epsilon}")
                    )
                    requests.append(
                        cls(
                            attrs=tuple(attrs),
                            mechanism=mechanism,
                            alpha=alpha,
                            epsilon=epsilon,
                            delta=delta,
                            mode=mode,
                            budget_style=budget_style,
                            n_trials=n_trials,
                            trials_batch=trials_batch,
                            seed=point_seed,
                            mechanism_options=mechanism_options,
                        )
                    )
        return requests
