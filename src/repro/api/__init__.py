"""repro.api — the library's release-session facade.

One coherent front door over the reproduction's machinery:

- :class:`ReleaseSession` — owns a snapshot, the fitted SDL baseline, a
  privacy ledger, and caches of all trial-invariant statistics;
- :class:`ReleaseRequest` / :class:`ReleaseResult` — declarative release
  descriptions with upfront validation, and uniform results carrying
  provenance and the Sec 10 metrics;
- the mechanism registry (:func:`register_mechanism`,
  :func:`available_mechanisms`, :func:`create_mechanism`) — the single
  name → mechanism mapping used by every consumer;
- :class:`PrivacyLedger` — composition-aware ε/δ accounting with
  raise/warn overdraft policies.

Quickstart::

    from repro.api import ReleaseSession, ReleaseRequest

    session = ReleaseSession.from_synthetic(target_jobs=100_000, seed=1)
    result = session.run(
        ReleaseRequest(
            attrs=("place", "naics", "ownership"),
            mechanism="smooth-laplace",
            alpha=0.1, epsilon=2.0, delta=0.05,
            seed=7,
        )
    )
    print(result.l1_ratio(), session.ledger.summary())

Attribute access is lazy (PEP 562): mechanism modules import
``repro.api.registry`` at class-definition time, so eagerly importing
the session machinery here would create an import cycle through
``repro.core``.
"""

from __future__ import annotations

_EXPORTS = {
    # registry
    "MechanismSpec": "repro.api.registry",
    "register_mechanism": "repro.api.registry",
    "unregister_mechanism": "repro.api.registry",
    "available_mechanisms": "repro.api.registry",
    "mechanism_spec": "repro.api.registry",
    "create_mechanism": "repro.api.registry",
    "CALIBRATED": "repro.api.registry",
    "BASELINE": "repro.api.registry",
    "COMPOSITE": "repro.api.registry",
    # ledger
    "PrivacyLedger": "repro.api.ledger",
    "LedgerEntry": "repro.api.ledger",
    "PrivacyOverdraftWarning": "repro.api.ledger",
    # request / result
    "ReleaseRequest": "repro.api.request",
    "ReleaseResult": "repro.api.result",
    # session
    "ReleaseSession": "repro.api.session",
    "WorkloadStatistics": "repro.api.session",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
