"""The privacy ledger: explicit ε/δ accounting for a release session.

Every executed :class:`repro.api.ReleaseRequest` debits the ledger with
the *total* (ε, δ) of its marginal's Sec-4/Sec-7 composition budget (the
``MarginalBudget.total`` of :func:`repro.core.composition.marginal_budget`
— d·ε_cell for weak worker-attribute releases, ε_cell otherwise),
following the budget-ledger pattern of federal statistical releases
(Abowd et al. 2017) and the privacy/accuracy production frontier of
Abowd & Schmutte (AER 2018): the agency fixes a loss budget up front and
the ledger makes the draw-down auditable.

Monte Carlo trials are *not* composed: ``n_trials`` repetitions of one
request model hypothetical re-runs of the same release (the evaluation
convention of Sec 10), so a request debits its budget once regardless of
the trial count.  Infeasible grid points release nothing and debit
nothing.

The ledger can ``raise`` on overdraft (the accountant behavior of
:class:`repro.dp.composition.PrivacyAccountant`), ``warn`` and record the
charge anyway (exploratory sessions), or run without a budget and simply
track spending.
"""

from __future__ import annotations

import math
import threading
import warnings
from dataclasses import dataclass, field

from repro.core.composition import MarginalBudget
from repro.dp.composition import PrivacyBudgetExceeded

RAISE = "raise"
WARN = "warn"

_POLICIES = (RAISE, WARN)


class PrivacyOverdraftWarning(UserWarning):
    """Emitted by a ``warn``-mode ledger when a debit exceeds the budget."""


@dataclass(frozen=True)
class LedgerEntry:
    """One debit: a single executed release request."""

    label: str
    epsilon: float
    delta: float
    mechanism: str = ""
    attrs: tuple[str, ...] = ()
    mode: str = ""
    worker_domain: int = 1

    def __post_init__(self):
        if self.epsilon < 0 or self.delta < 0:
            raise ValueError(
                f"privacy loss cannot be negative: ε={self.epsilon}, "
                f"δ={self.delta}"
            )

    @classmethod
    def from_budget(
        cls,
        budget: MarginalBudget,
        *,
        label: str,
        mechanism: str = "",
        attrs: tuple[str, ...] = (),
    ) -> "LedgerEntry":
        """The spend record of one marginal release's composed total.

        Building an entry records nothing — executors return these from
        workers and the parent ledger merges them, so accounting stays
        exact (and deterministic) under parallel sweep execution.
        """
        return cls(
            label=label,
            epsilon=float(budget.total.epsilon),
            delta=float(budget.total.delta),
            mechanism=mechanism,
            attrs=tuple(attrs),
            mode=budget.mode,
            worker_domain=budget.worker_domain,
        )

    def to_dict(self) -> dict:
        """A JSON-serializable spend record (result store, spend journal)."""
        return {
            "label": self.label,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "mechanism": self.mechanism,
            "attrs": list(self.attrs),
            "mode": self.mode,
            "worker_domain": self.worker_domain,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LedgerEntry":
        """Rebuild an entry from :meth:`to_dict` output (tolerant of
        missing optional fields, so old journals stay replayable)."""
        return cls(
            label=payload["label"],
            epsilon=float(payload["epsilon"]),
            delta=float(payload["delta"]),
            mechanism=payload.get("mechanism", ""),
            attrs=tuple(payload.get("attrs", ())),
            mode=payload.get("mode", ""),
            worker_domain=int(payload.get("worker_domain", 1)),
        )


@dataclass
class PrivacyLedger:
    """Composition-aware (ε, δ) accounting across a session's releases.

    ``epsilon_budget``/``delta_budget`` of ``None`` mean unlimited
    (tracking-only mode).  ``on_overdraft`` selects the enforcement
    policy: ``"raise"`` rejects the charge with
    :class:`~repro.dp.composition.PrivacyBudgetExceeded` (nothing is
    recorded — the caller must not release), ``"warn"`` emits a
    :class:`PrivacyOverdraftWarning` and records the charge.

    Charges compose sequentially (Theorems 2.1 / 7.3: ε and δ add);
    distinct marginals over one snapshot touch the same establishments,
    so parallel composition across requests does not apply.

    The ledger is concurrency-safe: the overdraft check and the append
    are one atomic step under an internal lock, so threaded sweeps (the
    engine's :class:`~repro.engine.executors.ThreadExecutor`, or any
    user threads sharing a session) can debit concurrently without
    losing entries or slipping past a budget.  Process-parallel sweeps
    instead return :class:`LedgerEntry` spend records from workers and
    :meth:`merge` them here, in deterministic plan order.
    """

    epsilon_budget: float | None = None
    delta_budget: float | None = None
    on_overdraft: str = RAISE
    entries: list[LedgerEntry] = field(default_factory=list)
    _tolerance: float = 1e-9
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def __post_init__(self):
        if self.on_overdraft not in _POLICIES:
            raise ValueError(
                f"on_overdraft must be one of {_POLICIES}, "
                f"got {self.on_overdraft!r}"
            )
        for name, budget in (
            ("epsilon_budget", self.epsilon_budget),
            ("delta_budget", self.delta_budget),
        ):
            if budget is not None and budget < 0:
                raise ValueError(f"{name} cannot be negative, got {budget}")

    # -- state ----------------------------------------------------------

    @property
    def spent_epsilon(self) -> float:
        return sum(entry.epsilon for entry in self.entries)

    @property
    def spent_delta(self) -> float:
        return sum(entry.delta for entry in self.entries)

    @property
    def remaining_epsilon(self) -> float:
        if self.epsilon_budget is None:
            return math.inf
        return self.epsilon_budget - self.spent_epsilon

    @property
    def remaining_delta(self) -> float:
        if self.delta_budget is None:
            return math.inf
        return self.delta_budget - self.spent_delta

    @property
    def utilization(self) -> float:
        """Spent ε as a fraction of the budget (0.0 when unlimited)."""
        if not self.epsilon_budget:
            return 0.0
        return self.spent_epsilon / self.epsilon_budget

    # -- debits ---------------------------------------------------------

    def debit(
        self,
        budget: MarginalBudget,
        *,
        label: str,
        mechanism: str = "",
        attrs: tuple[str, ...] = (),
    ) -> LedgerEntry:
        """Debit one marginal release's composed total (ε, δ).

        The charge is ``budget.total`` — the Sec-4 composition cost of
        the whole marginal (d·ε_cell under the weak worker-attribute
        split), not the per-cell parameters.
        """
        return self.record(
            LedgerEntry.from_budget(
                budget, label=label, mechanism=mechanism, attrs=attrs
            )
        )

    def preflight(self, epsilon: float, delta: float = 0.0, *, label: str = "") -> None:
        """Check affordability without recording anything.

        In ``raise`` mode an unaffordable charge raises here, so callers
        can gate expensive (or irreversible) release work *before* it
        runs and only debit after it succeeds — a failed release must
        never leave privacy spend on the books.  ``warn`` mode defers its
        warning to the actual debit.
        """
        entry = LedgerEntry(label=label, epsilon=float(epsilon), delta=float(delta))
        with self._lock:
            over = self._overdraft_message(entry)
        if over is not None and self.on_overdraft == RAISE:
            raise PrivacyBudgetExceeded(over)

    def would_overdraw(self, entry: LedgerEntry) -> str | None:
        """The overdraft message recording ``entry`` would produce, or None.

        Lets a caller that serializes its own debits (the release
        service's tenant accounts) decide the raise/warn outcome itself
        and then append via :meth:`restore`, without the global
        ``warnings`` machinery in the request path.
        """
        with self._lock:
            return self._overdraft_message(entry)

    def debit_amount(
        self,
        epsilon: float,
        delta: float = 0.0,
        *,
        label: str,
        mechanism: str = "",
        attrs: tuple[str, ...] = (),
        mode: str = "",
        worker_domain: int = 1,
    ) -> LedgerEntry:
        """Debit a raw (ε, δ) amount (e.g. a node-DP baseline release)."""
        return self.record(
            LedgerEntry(
                label=label,
                epsilon=float(epsilon),
                delta=float(delta),
                mechanism=mechanism,
                attrs=tuple(attrs),
                mode=mode,
                worker_domain=worker_domain,
            )
        )

    def record(self, entry: LedgerEntry) -> LedgerEntry:
        """Record a pre-built spend entry (the atomic debit primitive).

        The overdraft check and the append happen under the ledger lock,
        so concurrent debits from threaded sweeps compose exactly: no
        entry is lost and no pair of debits can both slip under the last
        sliver of budget.
        """
        with self._lock:
            over = self._overdraft_message(entry)
            if over is not None:
                if self.on_overdraft == RAISE:
                    raise PrivacyBudgetExceeded(over)
                warnings.warn(over, PrivacyOverdraftWarning, stacklevel=3)
            self.entries.append(entry)
        return entry

    def merge(self, records) -> list[LedgerEntry]:
        """Record a sequence of spend records, in order.

        This is how parallel executors settle up: workers evaluate
        points against their own (budget-less) rebuilt sessions, return
        :class:`LedgerEntry` records, and the parent merges them in plan
        order — so the ledger trail is identical to a serial run no
        matter how the work was scheduled.  In ``raise`` mode the merge
        stops at the first record that would overdraw (earlier records
        stay on the books, exactly as with sequential debits).
        """
        return [self.record(entry) for entry in records]

    def _overdraft_message(self, entry: LedgerEntry) -> str | None:
        epsilon_after = self.spent_epsilon + entry.epsilon
        delta_after = self.spent_delta + entry.delta
        over_epsilon = (
            self.epsilon_budget is not None
            and epsilon_after > self.epsilon_budget + self._tolerance
        )
        over_delta = (
            self.delta_budget is not None
            and delta_after > self.delta_budget + self._tolerance
        )
        if not (over_epsilon or over_delta):
            return None
        return (
            f"debit {entry.label!r} (ε={entry.epsilon:.6g}, "
            f"δ={entry.delta:.6g}) overdraws the ledger: spent would be "
            f"ε={epsilon_after:.6g} of {self.epsilon_budget}, "
            f"δ={delta_after:.6g} of {self.delta_budget}"
        )

    def restore(self, entry: LedgerEntry) -> LedgerEntry:
        """Append a *historical* entry, bypassing the overdraft check.

        Journal replay is not a new debit: an entry that was acknowledged
        and journaled has already been spent, and the books must reflect
        it even when the budget (or policy) has since been tightened —
        an over-budget history surfaces as a fully-drawn ledger, not a
        rewritten one.
        """
        with self._lock:
            self.entries.append(entry)
        return entry

    # -- reporting ------------------------------------------------------

    def as_dict(self) -> dict:
        """The JSON-serializable ledger state (``GET /v1/ledger/<tenant>``).

        Infinite remaining budgets serialize as ``None`` (JSON has no
        ``inf``), matching the "unlimited" reading everywhere else.
        """
        with self._lock:
            entries = list(self.entries)
            return {
                "epsilon_budget": self.epsilon_budget,
                "delta_budget": self.delta_budget,
                "on_overdraft": self.on_overdraft,
                "n_entries": len(entries),
                "spent_epsilon": self.spent_epsilon,
                "spent_delta": self.spent_delta,
                "remaining_epsilon": (
                    None if self.epsilon_budget is None else self.remaining_epsilon
                ),
                "remaining_delta": (
                    None if self.delta_budget is None else self.remaining_delta
                ),
                "utilization": self.utilization,
                "entries": [entry.to_dict() for entry in entries],
            }

    def summary(self) -> str:
        """A one-paragraph human-readable ledger state (used by the CLI)."""
        epsilon_budget = (
            "unlimited" if self.epsilon_budget is None else f"{self.epsilon_budget:g}"
        )
        lines = [
            f"privacy ledger: {len(self.entries)} release(s), "
            f"spent ε={self.spent_epsilon:.6g} (budget {epsilon_budget}), "
            f"spent δ={self.spent_delta:.6g}",
        ]
        if self.epsilon_budget:
            lines.append(
                f"  utilization {self.utilization:.1%}; "
                f"remaining ε={self.remaining_epsilon:.6g}"
            )
        for entry in self.entries:
            lines.append(
                f"  - {entry.label}: ε={entry.epsilon:.6g}, "
                f"δ={entry.delta:.6g}"
                + (f" [{entry.mode}, d={entry.worker_domain}]" if entry.mode else "")
            )
        return "\n".join(lines)
