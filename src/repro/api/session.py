"""The release session: the library's single front door.

A :class:`ReleaseSession` owns one dataset snapshot, the fitted SDL
baseline system, and caches of every trial-invariant statistic, so any
number of release requests and figure evaluations against the same
snapshot reuse the expensive work — the true marginals, release masks,
smooth-sensitivity statistics, place strata and SDL answers are computed
once per (marginal, mode) and only the noise is redrawn.

Three execution surfaces:

- :meth:`ReleaseSession.run` executes one declarative
  :class:`~repro.api.request.ReleaseRequest` and returns a
  :class:`~repro.api.result.ReleaseResult`; the noise stream is
  bit-for-bit identical to the historical
  :func:`repro.core.release.release_marginal` for the same seed (pinned
  by the equivalence tests).
- :meth:`ReleaseSession.run_grid` fans a list of requests — typically a
  (mechanism × α × ε) product from :meth:`ReleaseRequest.grid` — through
  the batched trial engine, optionally in parallel through a
  :mod:`repro.engine.executors` executor.
- :meth:`ReleaseSession.evaluate_point` computes one figure point
  (L1-error ratio or Spearman correlation, overall + per stratum)
  through the streaming reducers of :mod:`repro.engine.evaluate`.

Every execution debits the session's :class:`~repro.api.ledger.PrivacyLedger`
with the Sec-4 composition total of its release (infeasible grid points
release nothing and debit nothing).  The non-debiting variants
(:meth:`ReleaseSession.execute` / :meth:`ReleaseSession.evaluate_point_outcome`)
return the spend as a detached :class:`~repro.api.ledger.LedgerEntry` —
that is what the parallel sweep engine runs in worker processes, merging
the records into the parent ledger afterwards so accounting stays exact
under parallelism.

The session's statistic caches are lock-guarded, so threads sharing one
session (e.g. :class:`~repro.engine.executors.ThreadExecutor`) compute
each trial-invariant statistic exactly once.
"""

from __future__ import annotations

import threading
from collections.abc import Collection, Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.api.ledger import LedgerEntry, PrivacyLedger
from repro.api.registry import BASELINE, COMPOSITE
from repro.api.request import ReleaseRequest
from repro.api.result import ReleaseResult
from repro.core.composition import marginal_budget
from repro.core.params import EREEParams
from repro.core.release import (
    DEFAULT_WORKER_ATTRS,
    ReleaseStatistics,
    compute_release_statistics,
    release_from_statistics,
    resolve_mode,
)
from repro.data.generator import generate
from repro.db.query import Marginal, per_establishment_counts
from repro.engine import evaluate as point_kernels
from repro.engine.points import N_STRATA, SeriesPoint, WorkloadStatistics
from repro.metrics.strata import cell_strata
from repro.sdl.noise_infusion import InputNoiseInfusion
from repro.util import derive_seed

if TYPE_CHECKING:  # annotation-only: repro.experiments sits above this
    # module (its package __init__ imports the session for the
    # ExperimentContext shim), so importing it at runtime would cycle.
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.workloads import Workload

__all__ = [
    "N_STRATA",
    "ReleaseSession",
    "WorkloadStatistics",
]


class ReleaseSession:
    """One snapshot, one SDL baseline, one ledger — many releases.

    ``config`` seeds the synthetic snapshot and the SDL fit exactly like
    the historical ``ExperimentContext`` (same derived seeds, so figures
    regenerated through the session are bit-identical).  Pass ``dataset``
    to wrap an existing snapshot instead of generating one.

    ``budget``/``delta_budget`` arm the privacy ledger: every executed
    request debits its composed (ε, δ) total, and ``on_overdraft``
    selects whether exceeding the budget raises or warns.  Without a
    budget the ledger just tracks spending.
    """

    def __init__(
        self,
        config: "ExperimentConfig | None" = None,
        *,
        dataset=None,
        snapshot_store=None,
        snapshot_mmap: bool = True,
        snapshot_workers: int | None = None,
        budget: float | None = None,
        delta_budget: float | None = None,
        on_overdraft: str = "raise",
        worker_attrs: Collection[str] = DEFAULT_WORKER_ATTRS,
    ):
        if config is None:
            from repro.experiments.config import ExperimentConfig

            config = ExperimentConfig()
        self.config = config
        self.worker_attrs = tuple(worker_attrs)
        # Whether the snapshot can be rebuilt from config alone: a
        # provided dataset cannot (ProcessExecutor refuses such
        # sessions, and the snapshot fingerprint must not pretend the
        # data came from config.data).  A store-loaded snapshot *is* the
        # config dataset (same fingerprint, same bytes), just opened as
        # a read-only memory map instead of regenerated.
        self.dataset_provided = dataset is not None
        self.snapshot_store = None if dataset is not None else snapshot_store
        # How many processes a snapshot-store miss may fan the build out
        # to (SnapshotStore.build); None/1 keeps the sequential path.
        self.snapshot_workers = snapshot_workers
        if dataset is not None:
            self.dataset = dataset
        elif self.snapshot_store is not None:
            self.dataset, _ = self.snapshot_store.load_or_generate(
                self.config.data,
                mmap=snapshot_mmap,
                build_workers=snapshot_workers,
            )
        else:
            self.dataset = generate(self.config.data)
        self.worker_full = self.dataset.worker_full()
        self.sdl = InputNoiseInfusion(
            distortion=self.config.sdl,
            seed=derive_seed(self.config.seed, "sdl"),
        ).fit(self.worker_full)
        self.ledger = PrivacyLedger(
            epsilon_budget=budget,
            delta_budget=delta_budget,
            on_overdraft=on_overdraft,
        )
        self._stats_cache: dict = {}
        self._release_cache: dict = {}
        self._baseline_cache: dict = {}
        # Guards the caches above: threads sharing this session (e.g. a
        # ThreadExecutor sweep) must compute each trial-invariant
        # statistic exactly once.  Reentrant because statistics() can
        # recurse into _baseline() on some paths.
        self._cache_lock = threading.RLock()

    @classmethod
    def from_synthetic(
        cls, target_jobs: int = 150_000, seed: int = 2017, **kwargs
    ) -> "ReleaseSession":
        """A session over a freshly generated synthetic LODES snapshot."""
        from repro.data.generator import SyntheticConfig
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig(
            data=SyntheticConfig(target_jobs=target_jobs, seed=seed), seed=seed
        )
        return cls(config, **kwargs)

    @classmethod
    def from_scenario(
        cls, name: str, *, snapshot_store=None, **kwargs
    ) -> "ReleaseSession":
        """A session over a named scenario from :mod:`repro.scenarios`.

        ``snapshot_store`` (a :class:`~repro.scenarios.SnapshotStore`)
        makes the scenario's economy a persistent artifact: the first
        session generates and saves it, every later one — in this or any
        other process — opens the stored snapshot as a memory map.
        ``snapshot_workers=N`` (> 1) lets that first build fan its
        workforce chunks out to N processes writing the store files
        directly — byte-identical to the sequential build, several
        times faster at national scale.  Extra ``kwargs`` split between
        the experiment config (``n_trials``, ``seed``, grid overrides
        ...) and the session (``budget``, ``worker_attrs`` ...).
        """
        from repro.experiments.config import ExperimentConfig
        import dataclasses

        config_fields = {f.name for f in dataclasses.fields(ExperimentConfig)}
        config_kwargs = {
            key: kwargs.pop(key) for key in list(kwargs) if key in config_fields
        }
        config = ExperimentConfig.for_scenario(name, **config_kwargs)
        return cls(config, snapshot_store=snapshot_store, **kwargs)

    @property
    def schema(self):
        return self.worker_full.table.schema

    @property
    def snapshot_fingerprint(self) -> str:
        """Content fingerprint of this session's snapshot (cache scope).

        Generated snapshots hash their config + seed; an explicitly
        provided dataset is hashed by content instead, so two sessions
        over different data never share result-store keys even when
        their configs coincide.
        """
        from repro.engine.plan import snapshot_fingerprint

        return snapshot_fingerprint(
            self.config,
            worker_attrs=self.worker_attrs,
            dataset_token=self._dataset_token() if self.dataset_provided else None,
        )

    def _dataset_token(self) -> str:
        """A content hash of the provided dataset's joined relation."""
        if getattr(self, "_dataset_token_cache", None) is None:
            import hashlib

            digest = hashlib.sha256()
            table = self.worker_full.table
            for name in table.schema.names:
                digest.update(name.encode("utf-8"))
                digest.update(np.ascontiguousarray(table.column(name)).tobytes())
            digest.update(
                np.ascontiguousarray(self.worker_full.establishment).tobytes()
            )
            self._dataset_token_cache = digest.hexdigest()[:16]
        return self._dataset_token_cache

    # -- trial-invariant caches ----------------------------------------

    def statistics(self, workload: Workload) -> WorkloadStatistics:
        """Compute (or fetch cached) trial-invariant workload statistics."""
        with self._cache_lock:
            return self._statistics_locked(workload)

    def _statistics_locked(self, workload: Workload) -> WorkloadStatistics:
        if workload in self._stats_cache:
            return self._stats_cache[workload]

        schema = self.schema
        marginal = Marginal(schema, workload.attrs)

        population = self.worker_full
        for attribute, value in workload.filters:
            population = population.filter(
                population.table.equals_value(attribute, value)
            )

        true = marginal.counts(population.table).astype(np.float64)
        cell_index = marginal.cell_index(population.table)
        stats = per_establishment_counts(
            cell_index, population.establishment, marginal.n_cells
        )
        xv = stats.max_single

        # Release mask: the workplace part matches >= 1 establishment,
        # judged on the *unfiltered* population (existence is public).
        workplace_part = [
            a for a in workload.attrs if a not in self.worker_attrs
        ]
        wp_marginal = Marginal(schema, workplace_part)
        wp_stats = per_establishment_counts(
            wp_marginal.cell_index(self.worker_full.table),
            self.worker_full.establishment,
            wp_marginal.n_cells,
        )
        released = (
            wp_stats.n_establishments[marginal.project_onto(workplace_part)] > 0
        )

        strata = cell_strata(marginal, self.dataset.geography.place_populations)
        sdl_noisy = self.sdl.answer_marginal(population, marginal).noisy

        mode = "weak" if workload.has_worker_attrs else "strong"
        worker_attrs = self.worker_attrs

        def budget_of(params: EREEParams):
            return marginal_budget(
                params,
                schema,
                workload.attrs,
                worker_attrs,
                mode,
                workload.budget_style,
            )

        def per_cell_params(params: EREEParams) -> EREEParams:
            return budget_of(params).per_cell

        result = WorkloadStatistics(
            workload=workload,
            marginal=marginal,
            true=true,
            released=released,
            xv=xv,
            strata=strata,
            sdl_noisy=sdl_noisy,
            mode=mode,
            per_cell_params_of=per_cell_params,
            budget_of=budget_of,
        )
        self._stats_cache[workload] = result
        return result

    def release_statistics(
        self, attrs: Sequence[str], mode: str | None = None
    ) -> ReleaseStatistics:
        """Cached deterministic release prologue for (attrs, mode).

        The cache key is the *resolved* mode, so ``mode=None`` and an
        explicit matching mode share one entry; a hit skips the
        true-counts/xv tabulation entirely.
        """
        attrs = tuple(attrs)
        key = (attrs, resolve_mode(attrs, self.worker_attrs, mode))
        with self._cache_lock:
            cached = self._release_cache.get(key)
            if cached is None:
                cached = compute_release_statistics(
                    self.worker_full, attrs, self.worker_attrs, mode
                )
                self._release_cache[key] = cached
            return cached

    def _baseline(self, attrs: tuple[str, ...]):
        """Cached (sdl_noisy, strata) arrays for one marginal.

        ``strata`` is None for marginals without a ``place`` attribute
        (per-stratum metrics are undefined there); the overall metrics
        still work off the SDL answer.
        """
        with self._cache_lock:
            if attrs not in self._baseline_cache:
                marginal = Marginal(self.schema, attrs)
                sdl_noisy = self.sdl.answer_marginal(self.worker_full, marginal).noisy
                strata = (
                    cell_strata(marginal, self.dataset.geography.place_populations)
                    if "place" in attrs
                    else None
                )
                self._baseline_cache[attrs] = (sdl_noisy, strata)
            return self._baseline_cache[attrs]

    # -- declarative execution -----------------------------------------

    def run(self, request: ReleaseRequest) -> ReleaseResult:
        """Validate and execute one release request, debiting the ledger.

        The noise stream for a given ``request.seed`` matches the
        historical :func:`repro.core.release.release_marginal` exactly —
        the session only adds caching, the SDL baseline for metrics, and
        ledger accounting.
        """
        result, spend = self.execute(request)
        self.ledger.record(spend)
        return result

    def execute(
        self, request: ReleaseRequest
    ) -> tuple[ReleaseResult, LedgerEntry]:
        """Execute one request *without* recording its privacy spend.

        Returns the result plus the detached spend record.  This is the
        engine's worker entry point: parallel executors evaluate against
        rebuilt (budget-less) sessions and hand the records back for the
        parent ledger to :meth:`~repro.api.ledger.PrivacyLedger.merge`
        in deterministic order.  Callers wanting the historical one-step
        behavior use :meth:`run`.
        """
        request.validate(schema=self.schema, worker_attrs=self.worker_attrs)
        spec = request.spec
        if spec.kind == COMPOSITE:
            return self._run_composite(request)
        if spec.kind == BASELINE:
            return self._run_baseline(request)
        return self._run_calibrated(request)

    def _result(self, request, release, entry) -> ReleaseResult:
        sdl_noisy, strata = self._baseline(tuple(request.attrs))
        return ReleaseResult(
            request=request,
            release=release,
            seed=request.seed,
            ledger_entry=entry,
            sdl_noisy=sdl_noisy,
            strata=strata,
        )

    def _run_calibrated(
        self, request: ReleaseRequest
    ) -> tuple[ReleaseResult, LedgerEntry]:
        stats = self.release_statistics(request.attrs, request.mode)
        budget = marginal_budget(
            request.params,
            self.schema,
            request.attrs,
            self.worker_attrs,
            stats.mode,
            request.budget_style,
        )
        # Affordability gates the release; the spend is recorded only
        # after the noise draw succeeds, so a failed release never
        # leaves privacy spend on the books.
        self.ledger.preflight(
            budget.total.epsilon, budget.total.delta, label=request.ledger_label
        )
        release = release_from_statistics(
            stats,
            request.mechanism,
            budget,
            seed=request.seed,
            mechanism_options=dict(request.mechanism_options or {}),
            n_trials=request.n_trials,
            trials_batch=request.trials_batch,
        )
        entry = LedgerEntry.from_budget(
            budget,
            label=request.ledger_label,
            mechanism=request.mechanism,
            attrs=request.attrs,
        )
        return self._result(request, release, entry), entry

    def _run_baseline(
        self, request: ReleaseRequest
    ) -> tuple[ReleaseResult, LedgerEntry]:
        """Node-DP Truncated Laplace: θ from the options, ε from the request.

        α has no meaning under node DP; the release's budget records the
        request parameters for provenance and the spend is ε alone
        (pure DP, δ = 0).
        """
        from repro.core.composition import MarginalBudget
        from repro.core.release import MarginalRelease

        options = dict(request.mechanism_options or {})
        theta = options.pop("theta")
        mechanism = request.spec.factory(
            theta=theta, epsilon=request.epsilon, **options
        )
        marginal = Marginal(self.schema, request.attrs)
        self.ledger.preflight(request.epsilon, 0.0, label=request.ledger_label)
        result = mechanism.release_batch(
            self.worker_full,
            marginal,
            n_trials=request.n_trials,
            seed=request.seed,
        )
        entry = LedgerEntry(
            label=request.ledger_label,
            epsilon=float(request.epsilon),
            delta=0.0,
            mechanism=request.mechanism,
            attrs=tuple(request.attrs),
            mode="node-dp",
        )
        pseudo_params = EREEParams(
            request.alpha, request.epsilon, request.delta
        )
        release = MarginalRelease(
            marginal=marginal,
            true=result.true,
            noisy=result.noisy,
            released=np.ones(marginal.n_cells, dtype=bool),
            max_single=np.full(marginal.n_cells, theta, dtype=np.int64),
            budget=MarginalBudget(
                per_cell=pseudo_params,
                total=pseudo_params,
                mode="node-dp",
                worker_domain=1,
            ),
            mechanism_name=request.mechanism,
        )
        return self._result(request, release, entry), entry

    def _run_composite(
        self, request: ReleaseRequest
    ) -> tuple[ReleaseResult, LedgerEntry]:
        """The weighted-split procedure (or any registered composite)."""
        options = dict(request.mechanism_options or {})
        base_mechanism = options.pop("base_mechanism", "smooth-laplace")
        self.ledger.preflight(
            request.epsilon, request.delta, label=request.ledger_label
        )
        weighted = request.spec.factory(
            self.worker_full,
            request.attrs,
            base_mechanism,
            request.params,
            worker_attrs=self.worker_attrs,
            seed=request.seed,
            n_trials=request.n_trials,
            **options,
        )
        entry = LedgerEntry.from_budget(
            weighted.release.budget,
            label=request.ledger_label,
            mechanism=request.mechanism,
            attrs=request.attrs,
        )
        return self._result(request, weighted.release, entry), entry

    def run_grid(
        self,
        requests: Sequence[ReleaseRequest],
        *,
        executor=None,
        workers: int | None = None,
    ) -> list[ReleaseResult]:
        """Execute a request list (e.g. a ``ReleaseRequest.grid`` product).

        Trial-invariant statistics are shared across points through the
        session caches, so an m-point grid over one marginal computes the
        marginal's true counts, mask and xv exactly once and each point
        only draws its ``(n_trials, n_cells)`` noise matrix.

        ``executor``/``workers`` submit the grid to the sweep engine's
        executors (:mod:`repro.engine.executors`): requests evaluate in
        parallel — each carries its own seed, so results are bit-identical
        to the serial path — and their spend records merge into this
        session's ledger in request order, keeping accounting exact and
        deterministic.  Without either knob the historical sequential
        path runs (each request debits as it executes).
        """
        from repro.engine.executors import resolve_executor

        resolved = resolve_executor(executor, workers)
        if resolved is None:
            return [self.run(request) for request in requests]
        outcomes = resolved.map(_execute_request, self, list(requests))
        self.ledger.merge([spend for _, spend in outcomes])
        return [result for result, _ in outcomes]

    # -- figure-point evaluation ---------------------------------------

    def evaluate_point(
        self,
        workload: Workload,
        mechanism: str,
        params: EREEParams | None = None,
        *,
        metric: str = "l1-ratio",
        n_trials: int | None = None,
        seed=None,
        batch_size: int | None = None,
        theta: int | None = None,
        epsilon: float | None = None,
    ) -> SeriesPoint:
        """One figure point (overall + per-stratum) with ledger accounting.

        Delegates to the streaming reducers of
        :mod:`repro.engine.evaluate`; a feasible point debits the
        workload's composed budget, an infeasible point (shown as a gap
        in the figures) debits nothing.  ``mechanism="truncated-laplace"``
        takes ``theta`` and ``epsilon`` instead of ``params``.
        """
        point, spend = self.evaluate_point_outcome(
            workload,
            mechanism,
            params,
            metric=metric,
            n_trials=n_trials,
            seed=seed,
            batch_size=batch_size,
            theta=theta,
            epsilon=epsilon,
        )
        if spend is not None:
            self.ledger.record(spend)
        return point

    def evaluate_point_outcome(
        self,
        workload: Workload,
        mechanism: str,
        params: EREEParams | None = None,
        *,
        metric: str = "l1-ratio",
        n_trials: int | None = None,
        seed=None,
        batch_size: int | None = None,
        theta: int | None = None,
        epsilon: float | None = None,
    ) -> tuple[SeriesPoint, LedgerEntry | None]:
        """One figure point plus its detached spend record (no debit).

        The sweep engine's worker entry point
        (:func:`repro.engine.sweep.evaluate_point_spec` calls this):
        nothing is recorded on this session's ledger — the spend record
        travels back with the point, and the parent merges the records
        of all computed points in plan order.  An infeasible point's
        spend is ``None``.
        """
        if n_trials is None:
            n_trials = self.config.n_trials
        if batch_size is None:
            batch_size = self.config.trials_batch
        stats = self.statistics(workload)

        if mechanism == "truncated-laplace":
            if theta is None or epsilon is None:
                raise ValueError(
                    "truncated-laplace points need theta and epsilon"
                )
            point = point_kernels.truncated_laplace_point(
                self, stats, theta, epsilon, n_trials, seed, metric,
                batch_size=batch_size,
            )
            spend = LedgerEntry(
                label=f"{workload.name}:truncated-laplace:theta={theta}:eps={epsilon}",
                epsilon=float(epsilon),
                delta=0.0,
                mechanism=mechanism,
                attrs=tuple(workload.attrs),
                mode="node-dp",
            )
            return point, spend

        if params is None:
            raise ValueError("calibrated mechanism points need params")
        if metric == "l1-ratio":
            point = point_kernels.error_ratio_point(
                stats, mechanism, params, n_trials, seed, batch_size
            )
        elif metric == "spearman":
            point = point_kernels.spearman_point(
                stats, mechanism, params, n_trials, seed, batch_size
            )
        else:
            raise ValueError(
                f"metric must be 'l1-ratio' or 'spearman', got {metric!r}"
            )
        spend = None
        if point.feasible:
            spend = LedgerEntry.from_budget(
                stats.budget_of(params),
                label=(
                    f"{workload.name}:{mechanism}:"
                    f"alpha={params.alpha}:eps={params.epsilon}"
                ),
                mechanism=mechanism,
                attrs=tuple(workload.attrs),
            )
        return point, spend

    def evaluate_fused_outcome(
        self,
        workload: Workload,
        mechanism: str,
        *,
        alpha: float,
        delta: float,
        epsilons: Sequence[float],
        metrics: Sequence[str] = ("l1-ratio",),
        n_trials: int | None = None,
        seed=None,
        batch_size: int | None = None,
    ) -> tuple[dict[str, list[SeriesPoint]], list[LedgerEntry | None]]:
        """Every ε point of one (workload, mechanism, α) group, one draw.

        The fused counterpart of :meth:`evaluate_point_outcome`: one
        unit-noise matrix (Theorem 8.4's ``Z`` is ε-free) serves all
        requested ε values and metrics through
        :func:`repro.engine.evaluate.fused_grid_points`.  Returns
        ``{metric: [SeriesPoint, ...]}`` (plus one detached spend per ε,
        aligned with ``epsilons``; ``None`` where infeasible) — nothing
        is debited here, exactly like the per-point outcome method.  The
        spend of a fused point equals the unfused point's spend: sharing
        the unit draw changes which bits are drawn, not the composed
        (ε, δ) total of the release it represents.
        """
        if n_trials is None:
            n_trials = self.config.n_trials
        if batch_size is None:
            batch_size = self.config.trials_batch
        stats = self.statistics(workload)
        values = point_kernels.fused_grid_points(
            stats,
            mechanism,
            alpha=alpha,
            delta=delta,
            epsilons=list(epsilons),
            n_trials=n_trials,
            seed=seed,
            batch_size=batch_size,
            metrics=metrics,
        )
        spends: list[LedgerEntry | None] = []
        for point in values[tuple(metrics)[0]]:
            if not point.feasible:
                spends.append(None)
                continue
            params = EREEParams(alpha, point.epsilon, delta)
            spends.append(
                LedgerEntry.from_budget(
                    stats.budget_of(params),
                    label=(
                        f"{workload.name}:{mechanism}:"
                        f"alpha={params.alpha}:eps={params.epsilon}"
                    ),
                    mechanism=mechanism,
                    attrs=tuple(workload.attrs),
                )
            )
        return values, spends

    def evaluate_family_outcome(
        self,
        workload: Workload,
        mechanism: str,
        *,
        members: Sequence[tuple[float, float]],
        delta: float,
        metrics: Sequence[str] = ("l1-ratio",),
        n_trials: int | None = None,
        seed=None,
        batch_size: int | None = None,
        evaluate: Sequence[bool] | None = None,
    ) -> tuple[dict[str, list[SeriesPoint | None]], list[LedgerEntry | None]]:
        """Every (α, ε) point of one mechanism's α×ε family, one draw.

        The whole-grid extension of :meth:`evaluate_fused_outcome`: the
        unit noise of Theorem 8.4 is independent of α *and* ε, so one
        unit matrix serves the full ``members`` list of (α, ε) pairs
        through :func:`repro.engine.evaluate.fused_family_points`.
        ``evaluate`` masks which members to reduce (resume support);
        masked-out members return ``None`` points and ``None`` spends.
        Nothing is debited here — spends come back detached, one per
        member, and equal the unfused point spends: sharing the draw
        changes which bits are drawn, not the composed (ε, δ) total.
        """
        if n_trials is None:
            n_trials = self.config.n_trials
        if batch_size is None:
            batch_size = self.config.trials_batch
        stats = self.statistics(workload)
        values = point_kernels.fused_family_points(
            stats,
            mechanism,
            members=list(members),
            delta=delta,
            n_trials=n_trials,
            seed=seed,
            batch_size=batch_size,
            metrics=metrics,
            evaluate=evaluate,
        )
        spends: list[LedgerEntry | None] = []
        for point in values[tuple(metrics)[0]]:
            if point is None or not point.feasible:
                spends.append(None)
                continue
            params = EREEParams(point.alpha, point.epsilon, delta)
            spends.append(
                LedgerEntry.from_budget(
                    stats.budget_of(params),
                    label=(
                        f"{workload.name}:{mechanism}:"
                        f"alpha={params.alpha}:eps={params.epsilon}"
                    ),
                    mechanism=mechanism,
                    attrs=tuple(workload.attrs),
                )
            )
        return values, spends


def _execute_request(session: ReleaseSession, request: ReleaseRequest):
    """Executor task: one request → (result, spend record), no debit.

    Module-level so process pools can pickle it by reference.
    """
    return session.execute(request)
