"""Persistent, fingerprint-addressed snapshot store — memory-mapped data.

Every run of this repro used to regenerate its synthetic economy
in-process, and the parallel sweep engine's process workers regenerated
it once *per worker*.  The :class:`SnapshotStore` makes snapshots named,
persistent artifacts instead: a generated :class:`LODESDataset` is
persisted column-by-column as ``.npy`` files under a content
fingerprint, and loaded back with ``np.load(mmap_mode="r")`` so that

- repeated CLI runs, tests and benchmarks *open* the snapshot in
  milliseconds instead of regenerating it;
- process-pool workers map the same physical pages instead of each
  materializing a private copy of the economy.

Layout (one directory per snapshot)::

    reports/snapshots/
        <fingerprint>/
            meta.json              # config, counts, column manifest
            geography.json         # places/counties/blocks + populations
            worker__age.npy        # one mmap-able array per column
            ...
            workplace__naics.npy
            ...
            job_worker.npy
            job_establishment.npy

The fingerprint hashes the full :class:`SyntheticConfig` (generation is
fully seeded, so config ⇒ bytes), giving the store the same
no-invalidation property as the engine's result store: a changed knob
hashes to a new directory, and the engine's content-addressed point
keys — which embed the snapshot fingerprint — compose with it for free.

Writes are atomic (temp directory + ``os.replace``), and any unreadable,
partial or version-skewed snapshot is treated as a miss and rebuilt:
persistence must never be worse than regenerating.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.data.dataset import LODESDataset
from repro.data.generator import SyntheticConfig, generate
from repro.data.geography import geography_from_payload, geography_payload
from repro.data.schema import worker_schema, workplace_schema
from repro.db.table import Table
from repro.engine.store import content_key

__all__ = [
    "SnapshotStore",
    "DEFAULT_SNAPSHOT_DIR",
    "dataset_fingerprint",
]

DEFAULT_SNAPSHOT_DIR = Path("reports") / "snapshots"

SNAPSHOT_SCHEMA_VERSION = 1

META_FILE = "meta.json"
GEOGRAPHY_FILE = "geography.json"

_JOB_ARRAYS = ("job_worker", "job_establishment")


def dataset_fingerprint(config: SyntheticConfig) -> str:
    """Content fingerprint of the snapshot ``config`` generates.

    Hashes every generation knob (including ``chunk_jobs``, which shapes
    the worker noise streams) through the engine's canonical
    :func:`~repro.engine.store.content_key` idiom.  This is the same
    value :func:`repro.engine.plan.snapshot_fingerprint` folds into
    result-store keys via ``asdict(config)``, so snapshot and point
    caches scope consistently.
    """
    return content_key({"data": asdict(config)}, length=16)


class SnapshotStore:
    """A fingerprint-addressed on-disk store of LODES snapshots.

    ``hits``/``misses``/``writes`` count this instance's traffic, so
    tests (and ``repro scenarios info``) can prove a load was served
    from disk rather than regenerated.
    """

    def __init__(self, root: Path | str = DEFAULT_SNAPSHOT_DIR):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def __repr__(self) -> str:
        return (
            f"SnapshotStore({str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, writes={self.writes})"
        )

    @property
    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "writes": self.writes}

    def fingerprint(self, config: SyntheticConfig) -> str:
        return dataset_fingerprint(config)

    def path_for(self, fingerprint: str) -> Path:
        """The directory a snapshot with ``fingerprint`` lives in."""
        if not fingerprint or any(c in fingerprint for c in "/\\."):
            raise ValueError(
                f"snapshot fingerprints are hex digests, got {fingerprint!r}"
            )
        return self.root / fingerprint

    def contains(self, fingerprint: str) -> bool:
        """Whether a snapshot directory exists (does not touch counters)."""
        return (self.path_for(fingerprint) / META_FILE).is_file()

    # -- persistence ----------------------------------------------------

    def save(
        self,
        dataset: LODESDataset,
        config: SyntheticConfig,
        *,
        fingerprint: str | None = None,
        overwrite: bool = False,
    ) -> Path:
        """Atomically persist ``dataset`` under ``config``'s fingerprint.

        The snapshot is staged in a temp directory and renamed into
        place, so a crashed build never leaves a partial directory a
        later load would trust.  An existing *loadable* snapshot is kept
        (same fingerprint ⇒ same bytes) unless ``overwrite=True``; an
        existing unloadable one — corrupt or partial — is always
        replaced by the fresh build.
        """
        fingerprint = fingerprint or dataset_fingerprint(config)
        final = self.path_for(fingerprint)
        self.root.mkdir(parents=True, exist_ok=True)
        staging = Path(
            tempfile.mkdtemp(dir=self.root, prefix=f".{fingerprint}.tmp-")
        )
        try:
            self._write_snapshot(staging, dataset, config, fingerprint)
            self._install(staging, final, fingerprint, overwrite)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        self.writes += 1
        return final

    def _install(
        self, staging: Path, final: Path, fingerprint: str, overwrite: bool
    ) -> None:
        """Move a staged snapshot into place, displacing stale targets."""
        if overwrite:
            shutil.rmtree(final, ignore_errors=True)
        try:
            os.replace(staging, final)
            return
        except OSError:
            pass
        # ``final`` already exists (a concurrent writer, or a leftover
        # directory).  Keep it only if it actually loads; a corrupt or
        # partial snapshot must never shadow the fresh build.
        if self._load(fingerprint, mmap=True, count=False) is not None:
            shutil.rmtree(staging, ignore_errors=True)
            return
        shutil.rmtree(final, ignore_errors=True)
        os.replace(staging, final)

    def _write_snapshot(
        self,
        directory: Path,
        dataset: LODESDataset,
        config: SyntheticConfig,
        fingerprint: str,
    ) -> None:
        worker_columns = list(dataset.worker.schema.names)
        workplace_columns = list(dataset.workplace.schema.names)
        for name in worker_columns:
            np.save(
                directory / f"worker__{name}.npy",
                np.ascontiguousarray(dataset.worker.column(name)),
            )
        for name in workplace_columns:
            np.save(
                directory / f"workplace__{name}.npy",
                np.ascontiguousarray(dataset.workplace.column(name)),
            )
        np.save(
            directory / "job_worker.npy",
            np.ascontiguousarray(dataset.job_worker),
        )
        np.save(
            directory / "job_establishment.npy",
            np.ascontiguousarray(dataset.job_establishment),
        )
        (directory / GEOGRAPHY_FILE).write_text(
            json.dumps(geography_payload(dataset.geography)),
            encoding="utf-8",
        )
        meta = {
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "config": asdict(config),
            "n_jobs": int(dataset.n_jobs),
            "n_establishments": int(dataset.n_establishments),
            "n_places": int(dataset.geography.n_places),
            "worker_columns": worker_columns,
            "workplace_columns": workplace_columns,
            "created_at": time.time(),
        }
        # meta.json is written last inside the staging dir: its presence
        # is what contains() and load() treat as "snapshot exists".
        (directory / META_FILE).write_text(
            json.dumps(meta, indent=2, sort_keys=True), encoding="utf-8"
        )

    # -- loading --------------------------------------------------------

    def info(self, fingerprint: str) -> dict | None:
        """The snapshot's ``meta.json`` payload, or ``None`` if unusable."""
        path = self.path_for(fingerprint) / META_FILE
        try:
            meta = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(meta, dict) or meta.get("schema") != SNAPSHOT_SCHEMA_VERSION:
            return None
        return meta

    def size_bytes(self, fingerprint: str) -> int:
        """Total on-disk footprint of one snapshot directory."""
        directory = self.path_for(fingerprint)
        if not directory.is_dir():
            return 0
        return sum(p.stat().st_size for p in directory.iterdir() if p.is_file())

    def entries(self) -> list[dict]:
        """Metadata of every loadable snapshot under the root."""
        if not self.root.is_dir():
            return []
        found = []
        for directory in sorted(self.root.iterdir()):
            if directory.name.startswith(".") or not directory.is_dir():
                continue
            meta = self.info(directory.name)
            if meta is not None:
                found.append(meta)
        return found

    def load(
        self, fingerprint: str, *, mmap: bool = True
    ) -> LODESDataset | None:
        """Open the snapshot with ``fingerprint``; ``None`` (a miss) otherwise.

        With ``mmap=True`` (the default) every column is a read-only
        ``np.memmap`` view: loading costs no array copies, and processes
        sharing one store share physical pages.  Any corrupt, partial or
        version-skewed snapshot counts as a miss — the caller falls back
        to regeneration, which can never be wrong, only slower.
        """
        return self._load(fingerprint, mmap=mmap, count=True)

    def _load(
        self, fingerprint: str, *, mmap: bool, count: bool
    ) -> LODESDataset | None:
        directory = self.path_for(fingerprint)
        meta = self.info(fingerprint)
        if meta is None:
            self.misses += count
            return None
        mmap_mode = "r" if mmap else None
        try:
            geography = geography_from_payload(
                json.loads(
                    (directory / GEOGRAPHY_FILE).read_text(encoding="utf-8")
                )
            )
            worker = Table(
                worker_schema(),
                {
                    name: np.load(
                        directory / f"worker__{name}.npy", mmap_mode=mmap_mode
                    )
                    for name in meta["worker_columns"]
                },
            )
            workplace = Table(
                workplace_schema(geography),
                {
                    name: np.load(
                        directory / f"workplace__{name}.npy",
                        mmap_mode=mmap_mode,
                    )
                    for name in meta["workplace_columns"]
                },
            )
            job_worker = np.load(
                directory / "job_worker.npy", mmap_mode=mmap_mode
            )
            job_establishment = np.load(
                directory / "job_establishment.npy", mmap_mode=mmap_mode
            )
        except (OSError, ValueError, KeyError, EOFError):
            self.misses += count
            return None
        self.hits += count
        return LODESDataset(
            worker=worker,
            workplace=workplace,
            job_worker=job_worker,
            job_establishment=job_establishment,
            geography=geography,
        )

    def load_config(
        self, config: SyntheticConfig, *, mmap: bool = True
    ) -> LODESDataset | None:
        """Open the snapshot ``config`` fingerprints to, if built."""
        return self.load(dataset_fingerprint(config), mmap=mmap)

    def load_or_generate(
        self, config: SyntheticConfig, *, mmap: bool = True
    ) -> tuple[LODESDataset, bool]:
        """Open ``config``'s snapshot, building and persisting it on a miss.

        Returns ``(dataset, was_hit)``.  On a miss the freshly generated
        snapshot is saved and *re-opened through the store*, so the
        caller always holds the memory-mapped artifact every other
        session and worker will share — never a private in-process copy
        with different physical pages.
        """
        fingerprint = dataset_fingerprint(config)
        dataset = self.load(fingerprint, mmap=mmap)
        if dataset is not None:
            return dataset, True
        generated = generate(config)
        self.save(generated, config, fingerprint=fingerprint)
        reopened = self._load(fingerprint, mmap=mmap, count=False)
        return (reopened if reopened is not None else generated), False

    # -- maintenance ----------------------------------------------------

    def delete(self, fingerprint: str) -> bool:
        """Remove one snapshot directory; True if something was deleted."""
        directory = self.path_for(fingerprint)
        if not directory.is_dir():
            return False
        shutil.rmtree(directory)
        return True

    def __len__(self) -> int:
        """Number of loadable snapshots under the root."""
        return len(self.entries())
