"""Persistent, fingerprint-addressed snapshot store — memory-mapped data.

Every run of this repro used to regenerate its synthetic economy
in-process, and the parallel sweep engine's process workers regenerated
it once *per worker*.  The :class:`SnapshotStore` makes snapshots named,
persistent artifacts instead: a generated :class:`LODESDataset` is
persisted column-by-column as ``.npy`` files under a content
fingerprint, and loaded back with ``np.load(mmap_mode="r")`` so that

- repeated CLI runs, tests and benchmarks *open* the snapshot in
  milliseconds instead of regenerating it;
- process-pool workers map the same physical pages instead of each
  materializing a private copy of the economy.

Layout (one directory per snapshot)::

    reports/snapshots/
        <fingerprint>/
            meta.json              # config, counts, column manifest
            geography.json         # places/counties/blocks + populations
            worker__age.npy        # one mmap-able array per column
            ...
            workplace__naics.npy
            ...
            job_worker.npy
            job_establishment.npy

Panels persist under their own fingerprint as one registry plus one
directory per year, each installed atomically on its own — which is
what makes ``panel-5yr`` resumable: a killed build keeps every year it
finished::

    reports/snapshots/
        <panel-fingerprint>/
            registry/              # workplace columns, geography,
                                   # sizes_by_year.npy, meta.json
            year-0/ ... year-4/    # worker columns + job arrays + meta

The fingerprint hashes the full :class:`SyntheticConfig` (generation is
fully seeded, so config ⇒ bytes), giving the store the same
no-invalidation property as the engine's result store: a changed knob
hashes to a new directory, and the engine's content-addressed point
keys — which embed the snapshot fingerprint — compose with it for free.

All I/O goes through a :class:`repro.storage.StorageBackend`: the
default :class:`~repro.storage.local.LocalFSBackend` reproduces the
historical layout byte for byte (atomic temp-dir + ``os.replace``
installs, umask honoring, age-gated staging prune), while a
:class:`~repro.storage.remote.RemoteObjectBackend` makes the same store
fleet-shareable — writes mirror to an object store, reads download to a
local cache and mmap from there.  Any unreadable, partial or
version-skewed snapshot is treated as a miss and rebuilt: persistence
must never be worse than regenerating.  :meth:`SnapshotStore.build`
generates a snapshot *directly into* the staged layout — workforce
chunks drawn by a process pool, each writing its slice of the final
``.npy`` files — so national-scale economies persist without ever
materializing in the parent process.
"""

from __future__ import annotations

import json
import time
import warnings
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.data.dataset import LODESDataset
from repro.data.generator import SyntheticConfig, generate, plan_economy
from repro.data.geography import geography_from_payload, geography_payload
from repro.data.panel import (
    LODESPanel,
    PanelConfig,
    PanelPlan,
    generate_panel,
    plan_panel,
)
from repro.data.schema import worker_schema, workplace_schema
from repro.data.workers import JOB_ARRAYS, WORKER_COLUMNS, build_workforce_sharded
from repro.db.table import Table
from repro.engine.store import content_key
from repro.storage import (
    STALE_STAGING_AGE_S,
    LocalFSBackend,
    StorageBackend,
    StoreStats,
    backend_from_spec,
)
from repro.storage.backend import current_umask as _current_umask
from repro.storage.backend import honor_umask as _honor_umask
from repro.util import as_generator

__all__ = [
    "SnapshotStore",
    "DEFAULT_SNAPSHOT_DIR",
    "STALE_STAGING_AGE_S",
    "dataset_fingerprint",
    "panel_fingerprint",
]

DEFAULT_SNAPSHOT_DIR = Path("reports") / "snapshots"

SNAPSHOT_SCHEMA_VERSION = 1
PANEL_SCHEMA_VERSION = 1

META_FILE = "meta.json"
GEOGRAPHY_FILE = "geography.json"
REGISTRY_DIR = "registry"
SIZES_FILE = "sizes_by_year.npy"

_JOB_ARRAYS = JOB_ARRAYS


def dataset_fingerprint(config: SyntheticConfig) -> str:
    """Content fingerprint of the snapshot ``config`` generates.

    Hashes every generation knob (including ``chunk_jobs``, which shapes
    the worker noise streams) through the engine's canonical
    :func:`~repro.engine.store.content_key` idiom.  This is the same
    value :func:`repro.engine.plan.snapshot_fingerprint` folds into
    result-store keys via ``asdict(config)``, so snapshot and point
    caches scope consistently.
    """
    return content_key({"data": asdict(config)}, length=16)


def panel_fingerprint(config: PanelConfig) -> str:
    """Content fingerprint of the panel ``config`` generates.

    Covers the full nested base config plus every evolution knob, so a
    panel and its own base snapshot never collide — they hash different
    payload shapes — and any changed knob addresses a fresh panel.
    """
    return content_key({"panel": asdict(config)}, length=16)


class SnapshotStore:
    """A fingerprint-addressed on-disk store of LODES snapshots.

    ``hits``/``misses``/``writes`` count this instance's traffic, so
    tests (and ``repro scenarios info``) can prove a load was served
    from disk rather than regenerated; :attr:`statistics` adds the
    backend's byte traffic and eviction counts
    (:class:`~repro.storage.StoreStats`).
    """

    def __init__(
        self,
        root: Path | str | None = None,
        *,
        backend: StorageBackend | None = None,
    ):
        if backend is None:
            backend = LocalFSBackend(
                DEFAULT_SNAPSHOT_DIR if root is None else root
            )
        elif root is not None and Path(root) != backend.root:
            raise ValueError(
                f"pass either root or backend, not both "
                f"(root={str(root)!r}, backend root={str(backend.root)!r})"
            )
        self.backend = backend

    def __repr__(self) -> str:
        return (
            f"SnapshotStore({str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, writes={self.writes})"
        )

    @property
    def root(self) -> Path:
        return self.backend.root

    @property
    def statistics(self) -> StoreStats:
        """The full shared ledger (store counters + backend byte traffic)."""
        return self.backend.stats

    @property
    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "writes": self.writes}

    @property
    def hits(self) -> int:
        return self.backend.stats.hits

    @hits.setter
    def hits(self, value: int) -> None:
        self.backend.stats.hits = value

    @property
    def misses(self) -> int:
        return self.backend.stats.misses

    @misses.setter
    def misses(self, value: int) -> None:
        self.backend.stats.misses = value

    @property
    def writes(self) -> int:
        return self.backend.stats.writes

    @writes.setter
    def writes(self, value: int) -> None:
        self.backend.stats.writes = value

    def spec(self) -> dict:
        """A picklable description a worker process rebuilds from."""
        return {"store": "snapshot", "backend": self.backend.spec()}

    @classmethod
    def from_spec(cls, spec: dict) -> "SnapshotStore":
        return cls(backend=backend_from_spec(spec["backend"]))

    def fingerprint(self, config: SyntheticConfig) -> str:
        return dataset_fingerprint(config)

    def path_for(self, fingerprint: str) -> Path:
        """The (cache-)local directory a snapshot with ``fingerprint`` lives in."""
        if not fingerprint or any(c in fingerprint for c in "/\\."):
            raise ValueError(
                f"snapshot fingerprints are hex digests, got {fingerprint!r}"
            )
        return self.root / fingerprint

    def contains(self, fingerprint: str) -> bool:
        """Whether a snapshot directory exists (does not touch counters)."""
        self.path_for(fingerprint)
        return self.backend.contains(f"{fingerprint}/{META_FILE}")

    # -- persistence ----------------------------------------------------

    def save(
        self,
        dataset: LODESDataset,
        config: SyntheticConfig,
        *,
        fingerprint: str | None = None,
        overwrite: bool = False,
    ) -> Path:
        """Atomically persist ``dataset`` under ``config``'s fingerprint.

        The snapshot is staged and renamed into place by the backend,
        so a crashed build never leaves a partial directory a later
        load would trust.  An existing *loadable* snapshot is kept
        (same fingerprint ⇒ same bytes) unless ``overwrite=True``; an
        existing unloadable one — corrupt or partial — is always
        replaced by the fresh build.
        """
        fingerprint = fingerprint or dataset_fingerprint(config)
        final = self.path_for(fingerprint)
        self.backend.put_dir(
            fingerprint,
            lambda staging: self._write_snapshot(
                staging, dataset, config, fingerprint
            ),
            overwrite=overwrite,
            keep_existing=self._keep_loadable(fingerprint),
        )
        self.writes += 1
        return final

    def build(
        self,
        config: SyntheticConfig,
        *,
        workers: int | None = None,
        fingerprint: str | None = None,
        overwrite: bool = False,
        start_method: str | None = None,
    ) -> Path:
        """Generate ``config``'s snapshot *directly into* the store, sharded.

        Unlike :meth:`save` (which persists an already-materialized
        dataset), ``build`` runs generation against the staged snapshot
        layout itself: the parent process plans the economy (geography,
        establishments, sizes — O(places + establishments)) and writes
        the small workplace columns, while the O(jobs) worker columns
        and job link arrays are preallocated with
        ``np.lib.format.open_memmap`` and filled chunk-by-chunk by a
        process pool (``workers`` of them; ``None``/1 runs the chunk
        tasks inline).  No full-economy array ever materializes in the
        parent, and because chunks are independently seeded the
        installed directory is **byte-identical** to a sequential
        ``save(generate(config), config)`` — same fingerprint, same
        file bytes — whatever the worker count.  Under a remote
        backend the pool still stages locally; only the parent uploads
        the installed directory, once.
        """
        workers = 1 if workers is None else int(workers)
        fingerprint = fingerprint or dataset_fingerprint(config)
        final = self.path_for(fingerprint)
        # Same fingerprint ⇒ same bytes: an existing *loadable* snapshot
        # makes the whole generation pointless, not just the install.
        if (
            not overwrite
            and self._load(fingerprint, mmap=True, count=False) is not None
        ):
            return final

        def fill(staging: Path) -> None:
            plan = plan_economy(config)
            workplace_columns = list(plan.workplace.schema.names)
            for name in workplace_columns:
                np.save(
                    staging / f"workplace__{name}.npy",
                    np.ascontiguousarray(plan.workplace.column(name)),
                )
            paths: dict[str, Path] = {
                name: staging / f"worker__{name}.npy" for name in WORKER_COLUMNS
            }
            for name in _JOB_ARRAYS:
                paths[name] = staging / f"{name}.npy"
            n_jobs = build_workforce_sharded(
                plan.sizes,
                plan.sector,
                plan.estab_place,
                plan.place_mixes,
                plan.worker_rng,
                base_seed=config.seed,
                chunk_jobs=config.chunk_jobs,
                paths=paths,
                workers=workers,
                start_method=start_method,
            )
            self._write_geography(staging, plan.geography)
            self._write_meta(
                staging,
                config,
                fingerprint,
                n_jobs=n_jobs,
                n_establishments=plan.n_establishments,
                n_places=plan.geography.n_places,
                worker_columns=list(WORKER_COLUMNS),
                workplace_columns=workplace_columns,
            )

        self.backend.put_dir(
            fingerprint,
            fill,
            overwrite=overwrite,
            keep_existing=self._keep_loadable(fingerprint),
        )
        self.writes += 1
        return final

    def _keep_loadable(self, fingerprint: str):
        """Install-collision arbiter: keep the incumbent only if it loads."""
        return lambda final: (
            self._load(fingerprint, mmap=True, count=False) is not None
        )

    def _write_snapshot(
        self,
        directory: Path,
        dataset: LODESDataset,
        config: SyntheticConfig,
        fingerprint: str,
    ) -> None:
        worker_columns = list(dataset.worker.schema.names)
        workplace_columns = list(dataset.workplace.schema.names)
        for name in worker_columns:
            np.save(
                directory / f"worker__{name}.npy",
                np.ascontiguousarray(dataset.worker.column(name)),
            )
        for name in workplace_columns:
            np.save(
                directory / f"workplace__{name}.npy",
                np.ascontiguousarray(dataset.workplace.column(name)),
            )
        np.save(
            directory / "job_worker.npy",
            np.ascontiguousarray(dataset.job_worker),
        )
        np.save(
            directory / "job_establishment.npy",
            np.ascontiguousarray(dataset.job_establishment),
        )
        self._write_geography(directory, dataset.geography)
        self._write_meta(
            directory,
            config,
            fingerprint,
            n_jobs=int(dataset.n_jobs),
            n_establishments=int(dataset.n_establishments),
            n_places=int(dataset.geography.n_places),
            worker_columns=worker_columns,
            workplace_columns=workplace_columns,
        )

    def _write_geography(self, directory: Path, geography) -> None:
        (directory / GEOGRAPHY_FILE).write_text(
            json.dumps(geography_payload(geography)),
            encoding="utf-8",
        )

    def _write_meta(
        self,
        directory: Path,
        config: SyntheticConfig,
        fingerprint: str,
        *,
        n_jobs: int,
        n_establishments: int,
        n_places: int,
        worker_columns: list[str],
        workplace_columns: list[str],
    ) -> None:
        meta = {
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "config": asdict(config),
            "n_jobs": int(n_jobs),
            "n_establishments": int(n_establishments),
            "n_places": int(n_places),
            "worker_columns": list(worker_columns),
            "workplace_columns": list(workplace_columns),
            "created_at": time.time(),
        }
        # meta.json is written last inside the staging dir: its presence
        # is what contains() and load() treat as "snapshot exists".
        (directory / META_FILE).write_text(
            json.dumps(meta, indent=2, sort_keys=True), encoding="utf-8"
        )

    # -- loading --------------------------------------------------------

    def info(self, fingerprint: str) -> dict | None:
        """The snapshot's ``meta.json`` payload, or ``None`` if unusable."""
        self.path_for(fingerprint)
        return self._read_meta(
            f"{fingerprint}/{META_FILE}", SNAPSHOT_SCHEMA_VERSION
        )

    def _read_meta(self, key: str, schema_version: int) -> dict | None:
        # cache=False: installing one member file of a directory
        # artifact into a remote backend's local cache would fake a
        # partial directory into existence.
        raw = self.backend.read_bytes(key, cache=False)
        if raw is None:
            return None
        try:
            meta = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None
        if not isinstance(meta, dict) or meta.get("schema") != schema_version:
            return None
        return meta

    def size_bytes(self, fingerprint: str) -> int:
        """Total stored footprint of one snapshot (or panel) directory."""
        self.path_for(fingerprint)
        return self.backend.size_bytes(fingerprint)

    def entries(self) -> list[dict]:
        """Metadata of every loadable snapshot in the store."""
        fingerprints = sorted(
            {
                key.split("/", 1)[0]
                for key in self.backend.list_keys()
                if key.count("/") == 1 and key.endswith(f"/{META_FILE}")
            }
        )
        found = []
        for fingerprint in fingerprints:
            meta = self.info(fingerprint)
            if meta is not None:
                found.append(meta)
        return found

    def load(
        self, fingerprint: str, *, mmap: bool = True
    ) -> LODESDataset | None:
        """Open the snapshot with ``fingerprint``; ``None`` (a miss) otherwise.

        With ``mmap=True`` (the default) every column is a read-only
        ``np.memmap`` view: loading costs no array copies, and processes
        sharing one store share physical pages.  Any corrupt, partial or
        version-skewed snapshot counts as a miss — the caller falls back
        to regeneration, which can never be wrong, only slower.
        """
        return self._load(fingerprint, mmap=mmap, count=True)

    def _load(
        self, fingerprint: str, *, mmap: bool, count: bool
    ) -> LODESDataset | None:
        self.path_for(fingerprint)
        directory = self.backend.open_local(fingerprint)
        meta = None
        if directory is not None:
            meta = self._meta_from_dir(directory, SNAPSHOT_SCHEMA_VERSION)
        if meta is None:
            self.misses += count
            return None
        mmap_mode = "r" if mmap else None
        try:
            geography = geography_from_payload(
                json.loads(
                    (directory / GEOGRAPHY_FILE).read_text(encoding="utf-8")
                )
            )
            worker = Table(
                worker_schema(),
                {
                    name: np.load(
                        directory / f"worker__{name}.npy", mmap_mode=mmap_mode
                    )
                    for name in meta["worker_columns"]
                },
            )
            workplace = Table(
                workplace_schema(geography),
                {
                    name: np.load(
                        directory / f"workplace__{name}.npy",
                        mmap_mode=mmap_mode,
                    )
                    for name in meta["workplace_columns"]
                },
            )
            job_worker = np.load(
                directory / "job_worker.npy", mmap_mode=mmap_mode
            )
            job_establishment = np.load(
                directory / "job_establishment.npy", mmap_mode=mmap_mode
            )
        except (OSError, ValueError, KeyError, EOFError):
            self.misses += count
            return None
        self.hits += count
        return LODESDataset(
            worker=worker,
            workplace=workplace,
            job_worker=job_worker,
            job_establishment=job_establishment,
            geography=geography,
        )

    @staticmethod
    def _meta_from_dir(directory: Path, schema_version: int) -> dict | None:
        try:
            meta = json.loads(
                (directory / META_FILE).read_text(encoding="utf-8")
            )
        except (OSError, ValueError, UnicodeDecodeError):
            return None
        if not isinstance(meta, dict) or meta.get("schema") != schema_version:
            return None
        return meta

    def load_config(
        self, config: SyntheticConfig, *, mmap: bool = True
    ) -> LODESDataset | None:
        """Open the snapshot ``config`` fingerprints to, if built."""
        return self.load(dataset_fingerprint(config), mmap=mmap)

    def load_or_generate(
        self,
        config: SyntheticConfig,
        *,
        mmap: bool = True,
        build_workers: int | None = None,
    ) -> tuple[LODESDataset, bool]:
        """Open ``config``'s snapshot, building and persisting it on a miss.

        Returns ``(dataset, was_hit)``.  On a miss the snapshot is built,
        saved, and *re-opened through the store*, so the caller always
        holds the memory-mapped artifact every other session and worker
        will share — never a private in-process copy with different
        physical pages.  With ``build_workers > 1`` the miss is filled
        by the sharded :meth:`build` (workforce chunks drawn by a
        process pool straight into the staged files); otherwise the
        dataset is generated in-process and :meth:`save`\\ d.

        Persistence must never be worse than regenerating: if the store
        root is unwritable (read-only CI cache, permission skew), the
        failure is reported as a :class:`RuntimeWarning` and the
        in-memory dataset is returned instead of raising.
        """
        fingerprint = dataset_fingerprint(config)
        dataset = self.load(fingerprint, mmap=mmap)
        if dataset is not None:
            return dataset, True
        if build_workers is not None and build_workers > 1:
            try:
                self.build(
                    config, workers=build_workers, fingerprint=fingerprint
                )
            # OSError: unwritable root.  RuntimeError: a broken process
            # pool (worker OOM-killed — precisely the memory-pressure
            # regime sharded builds target).  Both have a correct, only
            # slower, answer: generate in-process.
            except (OSError, RuntimeError) as error:
                warnings.warn(
                    f"sharded snapshot build under {self.root} failed "
                    f"({error}); falling back to in-process generation",
                    RuntimeWarning,
                    stacklevel=2,
                )
            else:
                reopened = self._load(fingerprint, mmap=mmap, count=False)
                if reopened is not None:
                    return reopened, False
        generated = generate(config)
        try:
            self.save(generated, config, fingerprint=fingerprint)
        except OSError as error:
            warnings.warn(
                f"snapshot store root {self.root} is not writable "
                f"({error}); returning the un-persisted in-memory snapshot",
                RuntimeWarning,
                stacklevel=2,
            )
            return generated, False
        reopened = self._load(fingerprint, mmap=mmap, count=False)
        return (reopened if reopened is not None else generated), False

    # -- panels ---------------------------------------------------------

    def panel_info(self, fingerprint: str) -> dict | None:
        """The panel registry's ``meta.json`` payload, or ``None``."""
        self.path_for(fingerprint)
        return self._read_meta(
            f"{fingerprint}/{REGISTRY_DIR}/{META_FILE}", PANEL_SCHEMA_VERSION
        )

    def contains_panel(self, fingerprint: str) -> bool:
        """Whether every year of the panel exists (no counters touched)."""
        meta = self.panel_info(fingerprint)
        if meta is None:
            return False
        return all(
            self.backend.contains(f"{fingerprint}/year-{year}/{META_FILE}")
            for year in range(int(meta["n_years"]))
        )

    def panel_entries(self) -> list[dict]:
        """Registry metadata of every panel in the store."""
        fingerprints = sorted(
            {
                key.split("/", 1)[0]
                for key in self.backend.list_keys()
                if key.endswith(f"/{REGISTRY_DIR}/{META_FILE}")
                and key.count("/") == 2
            }
        )
        found = []
        for fingerprint in fingerprints:
            meta = self.panel_info(fingerprint)
            if meta is not None:
                found.append(meta)
        return found

    def save_panel(
        self,
        panel: LODESPanel,
        config: PanelConfig,
        *,
        fingerprint: str | None = None,
        overwrite: bool = False,
    ) -> Path:
        """Atomically persist a materialized panel, year by year.

        Each year (and the registry) installs independently, so the
        panel is resumable at year granularity — exactly what
        :meth:`build_panel` exploits when it fills only missing years.
        """
        fingerprint = fingerprint or panel_fingerprint(config)
        final = self.path_for(fingerprint)
        self._put_registry(
            fingerprint,
            config,
            panel.workplace,
            panel.geography,
            panel.sizes_by_year,
            overwrite=overwrite,
        )
        for year, dataset in enumerate(panel.years):
            worker_columns = list(dataset.worker.schema.names)

            def fill(staging: Path, dataset=dataset, year=year) -> None:
                for name in dataset.worker.schema.names:
                    np.save(
                        staging / f"worker__{name}.npy",
                        np.ascontiguousarray(dataset.worker.column(name)),
                    )
                np.save(
                    staging / "job_worker.npy",
                    np.ascontiguousarray(dataset.job_worker),
                )
                np.save(
                    staging / "job_establishment.npy",
                    np.ascontiguousarray(dataset.job_establishment),
                )
                self._write_year_meta(
                    staging,
                    fingerprint,
                    year,
                    n_jobs=int(dataset.n_jobs),
                    worker_columns=worker_columns,
                )

            self.backend.put_dir(
                f"{fingerprint}/year-{year}",
                fill,
                overwrite=overwrite,
                keep_existing=self._keep_year_loadable(
                    fingerprint, year, worker_columns
                ),
            )
            self.writes += 1
        return final

    def build_panel(
        self,
        config: PanelConfig,
        *,
        workers: int | None = None,
        fingerprint: str | None = None,
        overwrite: bool = False,
        start_method: str | None = None,
    ) -> Path:
        """Generate missing panel years *directly into* the store, sharded.

        The panel plan (registry, size evolution, mixes — no O(jobs)
        arrays) is recomputed cheaply, then each missing year's
        workforce is drawn straight into that year's staged directory,
        its chunks fanned out over the process pool.  Because the plan
        is deterministic and years' streams are independently seeded,
        re-running after a crash rebuilds only the years that are not
        yet installed — the (year × chunk) fan-out the sharded builder
        was designed for.
        """
        workers = 1 if workers is None else int(workers)
        fingerprint = fingerprint or panel_fingerprint(config)
        final = self.path_for(fingerprint)
        plan: PanelPlan | None = None
        worker_columns = list(WORKER_COLUMNS)
        if overwrite or self.panel_info(fingerprint) is None:
            plan = plan_panel(config)
            self._put_registry(
                fingerprint,
                config,
                plan.workplace,
                plan.geography,
                plan.sizes_by_year,
                overwrite=overwrite,
            )
        for year in range(config.n_years):
            if not overwrite and self._load_year(
                fingerprint, year, worker_columns, mmap=True
            ) is not None:
                continue
            if plan is None:
                plan = plan_panel(config)
            self._build_year(
                fingerprint,
                plan,
                year,
                workers=workers,
                overwrite=overwrite,
                start_method=start_method,
            )
        return final

    def _put_registry(
        self,
        fingerprint: str,
        config: PanelConfig,
        workplace: Table,
        geography,
        sizes_by_year: np.ndarray,
        *,
        overwrite: bool,
    ) -> None:
        workplace_columns = list(workplace.schema.names)

        def fill(staging: Path) -> None:
            for name in workplace_columns:
                np.save(
                    staging / f"workplace__{name}.npy",
                    np.ascontiguousarray(workplace.column(name)),
                )
            np.save(
                staging / SIZES_FILE, np.ascontiguousarray(sizes_by_year)
            )
            self._write_geography(staging, geography)
            meta = {
                "schema": PANEL_SCHEMA_VERSION,
                "fingerprint": fingerprint,
                "config": asdict(config),
                "n_years": int(sizes_by_year.shape[0]),
                "n_establishments": int(workplace.n_rows),
                "n_places": int(geography.n_places),
                "workplace_columns": workplace_columns,
                "created_at": time.time(),
            }
            (staging / META_FILE).write_text(
                json.dumps(meta, indent=2, sort_keys=True), encoding="utf-8"
            )

        self.backend.put_dir(
            f"{fingerprint}/{REGISTRY_DIR}",
            fill,
            overwrite=overwrite,
            keep_existing=lambda path: self.panel_info(fingerprint)
            is not None,
        )
        self.writes += 1

    def _build_year(
        self,
        fingerprint: str,
        plan: PanelPlan,
        year: int,
        *,
        workers: int,
        overwrite: bool,
        start_method: str | None,
    ) -> None:
        worker_columns = list(WORKER_COLUMNS)

        def fill(staging: Path) -> None:
            paths: dict[str, Path] = {
                name: staging / f"worker__{name}.npy" for name in WORKER_COLUMNS
            }
            for name in _JOB_ARRAYS:
                paths[name] = staging / f"{name}.npy"
            year_seed = plan.year_seed(year)
            n_jobs = build_workforce_sharded(
                plan.sizes_by_year[year],
                plan.workplace.column("naics"),
                plan.workplace.column("place"),
                plan.place_mixes,
                as_generator(year_seed),
                base_seed=year_seed,
                chunk_jobs=plan.config.base.chunk_jobs,
                paths=paths,
                workers=workers,
                start_method=start_method,
            )
            self._write_year_meta(
                staging,
                fingerprint,
                year,
                n_jobs=n_jobs,
                worker_columns=worker_columns,
            )

        self.backend.put_dir(
            f"{fingerprint}/year-{year}",
            fill,
            overwrite=overwrite,
            keep_existing=self._keep_year_loadable(
                fingerprint, year, worker_columns
            ),
        )
        self.writes += 1

    def _write_year_meta(
        self,
        directory: Path,
        fingerprint: str,
        year: int,
        *,
        n_jobs: int,
        worker_columns: list[str],
    ) -> None:
        meta = {
            "schema": PANEL_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "year": int(year),
            "n_jobs": int(n_jobs),
            "worker_columns": list(worker_columns),
            "created_at": time.time(),
        }
        (directory / META_FILE).write_text(
            json.dumps(meta, indent=2, sort_keys=True), encoding="utf-8"
        )

    def _keep_year_loadable(
        self, fingerprint: str, year: int, worker_columns: list[str]
    ):
        return lambda final: (
            self._load_year(fingerprint, year, worker_columns, mmap=True)
            is not None
        )

    def _load_year(
        self,
        fingerprint: str,
        year: int,
        worker_columns: list[str],
        *,
        mmap: bool,
    ) -> dict | None:
        """Open one year's arrays; ``None`` if missing/corrupt (no counters)."""
        directory = self.backend.open_local(f"{fingerprint}/year-{year}")
        if directory is None:
            return None
        meta = self._meta_from_dir(directory, PANEL_SCHEMA_VERSION)
        if meta is None or list(meta.get("worker_columns", [])) != list(
            worker_columns
        ):
            return None
        mmap_mode = "r" if mmap else None
        try:
            arrays = {
                name: np.load(
                    directory / f"worker__{name}.npy", mmap_mode=mmap_mode
                )
                for name in worker_columns
            }
            arrays["job_worker"] = np.load(
                directory / "job_worker.npy", mmap_mode=mmap_mode
            )
            arrays["job_establishment"] = np.load(
                directory / "job_establishment.npy", mmap_mode=mmap_mode
            )
        except (OSError, ValueError, EOFError):
            return None
        return arrays

    def load_panel(
        self, fingerprint: str, *, mmap: bool = True
    ) -> LODESPanel | None:
        """Open the panel with ``fingerprint``; ``None`` (a miss) otherwise."""
        return self._load_panel(fingerprint, mmap=mmap, count=True)

    def _load_panel(
        self, fingerprint: str, *, mmap: bool, count: bool
    ) -> LODESPanel | None:
        self.path_for(fingerprint)
        registry_dir = self.backend.open_local(
            f"{fingerprint}/{REGISTRY_DIR}"
        )
        meta = None
        if registry_dir is not None:
            meta = self._meta_from_dir(registry_dir, PANEL_SCHEMA_VERSION)
        if meta is None:
            self.misses += count
            return None
        mmap_mode = "r" if mmap else None
        try:
            geography = geography_from_payload(
                json.loads(
                    (registry_dir / GEOGRAPHY_FILE).read_text(encoding="utf-8")
                )
            )
            workplace = Table(
                workplace_schema(geography),
                {
                    name: np.load(
                        registry_dir / f"workplace__{name}.npy",
                        mmap_mode=mmap_mode,
                    )
                    for name in meta["workplace_columns"]
                },
            )
            sizes_by_year = np.load(
                registry_dir / SIZES_FILE, mmap_mode=mmap_mode
            )
        except (OSError, ValueError, KeyError, EOFError):
            self.misses += count
            return None
        schema = worker_schema()
        worker_columns = list(schema.names)
        years = []
        for year in range(int(meta["n_years"])):
            arrays = self._load_year(
                fingerprint, year, worker_columns, mmap=mmap
            )
            if arrays is None:
                self.misses += count
                return None
            years.append(
                LODESDataset(
                    worker=Table(
                        schema,
                        {name: arrays[name] for name in worker_columns},
                    ),
                    workplace=workplace,
                    job_worker=arrays["job_worker"],
                    job_establishment=arrays["job_establishment"],
                    geography=geography,
                )
            )
        self.hits += count
        return LODESPanel(
            workplace=workplace,
            geography=geography,
            sizes_by_year=sizes_by_year,
            years=tuple(years),
        )

    def load_or_generate_panel(
        self,
        config: PanelConfig,
        *,
        mmap: bool = True,
        build_workers: int | None = None,
    ) -> tuple[LODESPanel, bool]:
        """Open ``config``'s panel, building missing years on a miss.

        Returns ``(panel, was_hit)``.  The miss path is resumable: the
        registry and every already-installed year are kept, only the
        missing years are drawn (sharded across ``build_workers``
        processes when > 1), and the panel is re-opened through the
        store so callers hold the memory-mapped artifact.  An
        unwritable root degrades to in-memory generation with a
        :class:`RuntimeWarning`, exactly like :meth:`load_or_generate`.
        """
        fingerprint = panel_fingerprint(config)
        panel = self._load_panel(fingerprint, mmap=mmap, count=True)
        if panel is not None:
            return panel, True
        workers = 1 if build_workers is None else int(build_workers)
        try:
            self.build_panel(
                config, workers=workers, fingerprint=fingerprint
            )
        except (OSError, RuntimeError) as error:
            warnings.warn(
                f"panel build under {self.root} failed ({error}); "
                "falling back to in-memory panel generation",
                RuntimeWarning,
                stacklevel=2,
            )
            return generate_panel(config), False
        reopened = self._load_panel(fingerprint, mmap=mmap, count=False)
        if reopened is not None:
            return reopened, False
        return generate_panel(config), False

    # -- maintenance ----------------------------------------------------

    def delete(self, fingerprint: str) -> bool:
        """Remove one snapshot (or panel) directory; True if deleted."""
        self.path_for(fingerprint)
        return self.backend.delete(fingerprint)

    def prune(self, *, max_age_s: float = STALE_STAGING_AGE_S) -> list[Path]:
        """Delete staging directories orphaned by crashed builds.

        A build that dies between staging and install leaves its
        ``.<fingerprint>.tmp-*`` directory behind forever —
        ``entries()`` skips it, but nothing ever reclaimed the space.
        Every :meth:`save`/:meth:`build` prunes with the default age
        gate (inside the backend's ``put_dir``), so leftovers disappear
        on the next write while a *concurrent* writer's live staging —
        always younger than ``max_age_s`` — is untouched.
        ``max_age_s=0`` (``repro scenarios prune --all``) clears
        everything.

        Returns the directories actually removed (an undeletable one —
        say, another user's on a shared store — is not reported).
        """
        return self.backend.prune_staging(max_age_s=max_age_s)

    def __len__(self) -> int:
        """Number of loadable snapshots under the root."""
        return len(self.entries())
