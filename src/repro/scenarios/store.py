"""Persistent, fingerprint-addressed snapshot store — memory-mapped data.

Every run of this repro used to regenerate its synthetic economy
in-process, and the parallel sweep engine's process workers regenerated
it once *per worker*.  The :class:`SnapshotStore` makes snapshots named,
persistent artifacts instead: a generated :class:`LODESDataset` is
persisted column-by-column as ``.npy`` files under a content
fingerprint, and loaded back with ``np.load(mmap_mode="r")`` so that

- repeated CLI runs, tests and benchmarks *open* the snapshot in
  milliseconds instead of regenerating it;
- process-pool workers map the same physical pages instead of each
  materializing a private copy of the economy.

Layout (one directory per snapshot)::

    reports/snapshots/
        <fingerprint>/
            meta.json              # config, counts, column manifest
            geography.json         # places/counties/blocks + populations
            worker__age.npy        # one mmap-able array per column
            ...
            workplace__naics.npy
            ...
            job_worker.npy
            job_establishment.npy

The fingerprint hashes the full :class:`SyntheticConfig` (generation is
fully seeded, so config ⇒ bytes), giving the store the same
no-invalidation property as the engine's result store: a changed knob
hashes to a new directory, and the engine's content-addressed point
keys — which embed the snapshot fingerprint — compose with it for free.

Writes are atomic (temp directory + ``os.replace``), staged trees are
re-permissioned to honor the process umask (so a shared store is
readable by every user the umask admits), stale staging directories
left by crashed builds are pruned age-gated on the next write (or
explicitly via :meth:`SnapshotStore.prune`), and any unreadable,
partial or version-skewed snapshot is treated as a miss and rebuilt:
persistence must never be worse than regenerating.
:meth:`SnapshotStore.build` generates a snapshot *directly into* the
staged layout — workforce chunks drawn by a process pool, each writing
its slice of the final ``.npy`` files — so national-scale economies
persist without ever materializing in the parent process.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
import warnings
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.data.dataset import LODESDataset
from repro.data.generator import SyntheticConfig, generate, plan_economy
from repro.data.geography import geography_from_payload, geography_payload
from repro.data.schema import worker_schema, workplace_schema
from repro.data.workers import JOB_ARRAYS, WORKER_COLUMNS, build_workforce_sharded
from repro.db.table import Table
from repro.engine.store import content_key

__all__ = [
    "SnapshotStore",
    "DEFAULT_SNAPSHOT_DIR",
    "STALE_STAGING_AGE_S",
    "dataset_fingerprint",
]

DEFAULT_SNAPSHOT_DIR = Path("reports") / "snapshots"

SNAPSHOT_SCHEMA_VERSION = 1

META_FILE = "meta.json"
GEOGRAPHY_FILE = "geography.json"

_JOB_ARRAYS = JOB_ARRAYS

# Staging directories older than this are considered orphans of a
# crashed build and removed by prune(); the age gate keeps a concurrent
# writer's live staging safe.
STALE_STAGING_AGE_S = 3600.0

_STAGING_MARKER = ".tmp-"


def dataset_fingerprint(config: SyntheticConfig) -> str:
    """Content fingerprint of the snapshot ``config`` generates.

    Hashes every generation knob (including ``chunk_jobs``, which shapes
    the worker noise streams) through the engine's canonical
    :func:`~repro.engine.store.content_key` idiom.  This is the same
    value :func:`repro.engine.plan.snapshot_fingerprint` folds into
    result-store keys via ``asdict(config)``, so snapshot and point
    caches scope consistently.
    """
    return content_key({"data": asdict(config)}, length=16)


class SnapshotStore:
    """A fingerprint-addressed on-disk store of LODES snapshots.

    ``hits``/``misses``/``writes`` count this instance's traffic, so
    tests (and ``repro scenarios info``) can prove a load was served
    from disk rather than regenerated.
    """

    def __init__(self, root: Path | str = DEFAULT_SNAPSHOT_DIR):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def __repr__(self) -> str:
        return (
            f"SnapshotStore({str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, writes={self.writes})"
        )

    @property
    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "writes": self.writes}

    def fingerprint(self, config: SyntheticConfig) -> str:
        return dataset_fingerprint(config)

    def path_for(self, fingerprint: str) -> Path:
        """The directory a snapshot with ``fingerprint`` lives in."""
        if not fingerprint or any(c in fingerprint for c in "/\\."):
            raise ValueError(
                f"snapshot fingerprints are hex digests, got {fingerprint!r}"
            )
        return self.root / fingerprint

    def contains(self, fingerprint: str) -> bool:
        """Whether a snapshot directory exists (does not touch counters)."""
        return (self.path_for(fingerprint) / META_FILE).is_file()

    # -- persistence ----------------------------------------------------

    def save(
        self,
        dataset: LODESDataset,
        config: SyntheticConfig,
        *,
        fingerprint: str | None = None,
        overwrite: bool = False,
    ) -> Path:
        """Atomically persist ``dataset`` under ``config``'s fingerprint.

        The snapshot is staged in a temp directory and renamed into
        place, so a crashed build never leaves a partial directory a
        later load would trust.  An existing *loadable* snapshot is kept
        (same fingerprint ⇒ same bytes) unless ``overwrite=True``; an
        existing unloadable one — corrupt or partial — is always
        replaced by the fresh build.
        """
        fingerprint = fingerprint or dataset_fingerprint(config)
        final = self.path_for(fingerprint)
        staging = self._staging_dir(fingerprint)
        try:
            self._write_snapshot(staging, dataset, config, fingerprint)
            _honor_umask(staging)
            self._install(staging, final, fingerprint, overwrite)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        self.writes += 1
        return final

    def build(
        self,
        config: SyntheticConfig,
        *,
        workers: int | None = None,
        fingerprint: str | None = None,
        overwrite: bool = False,
        start_method: str | None = None,
    ) -> Path:
        """Generate ``config``'s snapshot *directly into* the store, sharded.

        Unlike :meth:`save` (which persists an already-materialized
        dataset), ``build`` runs generation against the staged snapshot
        layout itself: the parent process plans the economy (geography,
        establishments, sizes — O(places + establishments)) and writes
        the small workplace columns, while the O(jobs) worker columns
        and job link arrays are preallocated with
        ``np.lib.format.open_memmap`` and filled chunk-by-chunk by a
        process pool (``workers`` of them; ``None``/1 runs the chunk
        tasks inline).  No full-economy array ever materializes in the
        parent, and because chunks are independently seeded the
        installed directory is **byte-identical** to a sequential
        ``save(generate(config), config)`` — same fingerprint, same
        file bytes — whatever the worker count.
        """
        workers = 1 if workers is None else int(workers)
        fingerprint = fingerprint or dataset_fingerprint(config)
        final = self.path_for(fingerprint)
        # Same fingerprint ⇒ same bytes: an existing *loadable* snapshot
        # makes the whole generation pointless, not just the install.
        if (
            not overwrite
            and self._load(fingerprint, mmap=True, count=False) is not None
        ):
            return final
        staging = self._staging_dir(fingerprint)
        try:
            plan = plan_economy(config)
            workplace_columns = list(plan.workplace.schema.names)
            for name in workplace_columns:
                np.save(
                    staging / f"workplace__{name}.npy",
                    np.ascontiguousarray(plan.workplace.column(name)),
                )
            paths: dict[str, Path] = {
                name: staging / f"worker__{name}.npy" for name in WORKER_COLUMNS
            }
            for name in _JOB_ARRAYS:
                paths[name] = staging / f"{name}.npy"
            n_jobs = build_workforce_sharded(
                plan.sizes,
                plan.sector,
                plan.estab_place,
                plan.place_mixes,
                plan.worker_rng,
                base_seed=config.seed,
                chunk_jobs=config.chunk_jobs,
                paths=paths,
                workers=workers,
                start_method=start_method,
            )
            self._write_geography(staging, plan.geography)
            self._write_meta(
                staging,
                config,
                fingerprint,
                n_jobs=n_jobs,
                n_establishments=plan.n_establishments,
                n_places=plan.geography.n_places,
                worker_columns=list(WORKER_COLUMNS),
                workplace_columns=workplace_columns,
            )
            _honor_umask(staging)
            self._install(staging, final, fingerprint, overwrite)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        self.writes += 1
        return final

    def _staging_dir(self, fingerprint: str) -> Path:
        """A fresh staging directory under the root (which this creates)."""
        self.root.mkdir(parents=True, exist_ok=True)
        self.prune()
        return Path(
            tempfile.mkdtemp(
                dir=self.root, prefix=f".{fingerprint}{_STAGING_MARKER}"
            )
        )

    def _install(
        self, staging: Path, final: Path, fingerprint: str, overwrite: bool
    ) -> None:
        """Move a staged snapshot into place, displacing stale targets."""
        if overwrite:
            shutil.rmtree(final, ignore_errors=True)
        try:
            os.replace(staging, final)
            return
        except OSError:
            pass
        # ``final`` already exists (a concurrent writer, or a leftover
        # directory).  Keep it only if it actually loads; a corrupt or
        # partial snapshot must never shadow the fresh build.
        if self._load(fingerprint, mmap=True, count=False) is not None:
            shutil.rmtree(staging, ignore_errors=True)
            return
        shutil.rmtree(final, ignore_errors=True)
        os.replace(staging, final)

    def _write_snapshot(
        self,
        directory: Path,
        dataset: LODESDataset,
        config: SyntheticConfig,
        fingerprint: str,
    ) -> None:
        worker_columns = list(dataset.worker.schema.names)
        workplace_columns = list(dataset.workplace.schema.names)
        for name in worker_columns:
            np.save(
                directory / f"worker__{name}.npy",
                np.ascontiguousarray(dataset.worker.column(name)),
            )
        for name in workplace_columns:
            np.save(
                directory / f"workplace__{name}.npy",
                np.ascontiguousarray(dataset.workplace.column(name)),
            )
        np.save(
            directory / "job_worker.npy",
            np.ascontiguousarray(dataset.job_worker),
        )
        np.save(
            directory / "job_establishment.npy",
            np.ascontiguousarray(dataset.job_establishment),
        )
        self._write_geography(directory, dataset.geography)
        self._write_meta(
            directory,
            config,
            fingerprint,
            n_jobs=int(dataset.n_jobs),
            n_establishments=int(dataset.n_establishments),
            n_places=int(dataset.geography.n_places),
            worker_columns=worker_columns,
            workplace_columns=workplace_columns,
        )

    def _write_geography(self, directory: Path, geography) -> None:
        (directory / GEOGRAPHY_FILE).write_text(
            json.dumps(geography_payload(geography)),
            encoding="utf-8",
        )

    def _write_meta(
        self,
        directory: Path,
        config: SyntheticConfig,
        fingerprint: str,
        *,
        n_jobs: int,
        n_establishments: int,
        n_places: int,
        worker_columns: list[str],
        workplace_columns: list[str],
    ) -> None:
        meta = {
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "config": asdict(config),
            "n_jobs": int(n_jobs),
            "n_establishments": int(n_establishments),
            "n_places": int(n_places),
            "worker_columns": list(worker_columns),
            "workplace_columns": list(workplace_columns),
            "created_at": time.time(),
        }
        # meta.json is written last inside the staging dir: its presence
        # is what contains() and load() treat as "snapshot exists".
        (directory / META_FILE).write_text(
            json.dumps(meta, indent=2, sort_keys=True), encoding="utf-8"
        )

    # -- loading --------------------------------------------------------

    def info(self, fingerprint: str) -> dict | None:
        """The snapshot's ``meta.json`` payload, or ``None`` if unusable."""
        path = self.path_for(fingerprint) / META_FILE
        try:
            meta = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(meta, dict) or meta.get("schema") != SNAPSHOT_SCHEMA_VERSION:
            return None
        return meta

    def size_bytes(self, fingerprint: str) -> int:
        """Total on-disk footprint of one snapshot directory."""
        directory = self.path_for(fingerprint)
        if not directory.is_dir():
            return 0
        return sum(p.stat().st_size for p in directory.iterdir() if p.is_file())

    def entries(self) -> list[dict]:
        """Metadata of every loadable snapshot under the root."""
        if not self.root.is_dir():
            return []
        found = []
        for directory in sorted(self.root.iterdir()):
            if directory.name.startswith(".") or not directory.is_dir():
                continue
            meta = self.info(directory.name)
            if meta is not None:
                found.append(meta)
        return found

    def load(
        self, fingerprint: str, *, mmap: bool = True
    ) -> LODESDataset | None:
        """Open the snapshot with ``fingerprint``; ``None`` (a miss) otherwise.

        With ``mmap=True`` (the default) every column is a read-only
        ``np.memmap`` view: loading costs no array copies, and processes
        sharing one store share physical pages.  Any corrupt, partial or
        version-skewed snapshot counts as a miss — the caller falls back
        to regeneration, which can never be wrong, only slower.
        """
        return self._load(fingerprint, mmap=mmap, count=True)

    def _load(
        self, fingerprint: str, *, mmap: bool, count: bool
    ) -> LODESDataset | None:
        directory = self.path_for(fingerprint)
        meta = self.info(fingerprint)
        if meta is None:
            self.misses += count
            return None
        mmap_mode = "r" if mmap else None
        try:
            geography = geography_from_payload(
                json.loads(
                    (directory / GEOGRAPHY_FILE).read_text(encoding="utf-8")
                )
            )
            worker = Table(
                worker_schema(),
                {
                    name: np.load(
                        directory / f"worker__{name}.npy", mmap_mode=mmap_mode
                    )
                    for name in meta["worker_columns"]
                },
            )
            workplace = Table(
                workplace_schema(geography),
                {
                    name: np.load(
                        directory / f"workplace__{name}.npy",
                        mmap_mode=mmap_mode,
                    )
                    for name in meta["workplace_columns"]
                },
            )
            job_worker = np.load(
                directory / "job_worker.npy", mmap_mode=mmap_mode
            )
            job_establishment = np.load(
                directory / "job_establishment.npy", mmap_mode=mmap_mode
            )
        except (OSError, ValueError, KeyError, EOFError):
            self.misses += count
            return None
        self.hits += count
        return LODESDataset(
            worker=worker,
            workplace=workplace,
            job_worker=job_worker,
            job_establishment=job_establishment,
            geography=geography,
        )

    def load_config(
        self, config: SyntheticConfig, *, mmap: bool = True
    ) -> LODESDataset | None:
        """Open the snapshot ``config`` fingerprints to, if built."""
        return self.load(dataset_fingerprint(config), mmap=mmap)

    def load_or_generate(
        self,
        config: SyntheticConfig,
        *,
        mmap: bool = True,
        build_workers: int | None = None,
    ) -> tuple[LODESDataset, bool]:
        """Open ``config``'s snapshot, building and persisting it on a miss.

        Returns ``(dataset, was_hit)``.  On a miss the snapshot is built,
        saved, and *re-opened through the store*, so the caller always
        holds the memory-mapped artifact every other session and worker
        will share — never a private in-process copy with different
        physical pages.  With ``build_workers > 1`` the miss is filled
        by the sharded :meth:`build` (workforce chunks drawn by a
        process pool straight into the staged files); otherwise the
        dataset is generated in-process and :meth:`save`\\ d.

        Persistence must never be worse than regenerating: if the store
        root is unwritable (read-only CI cache, permission skew), the
        failure is reported as a :class:`RuntimeWarning` and the
        in-memory dataset is returned instead of raising.
        """
        fingerprint = dataset_fingerprint(config)
        dataset = self.load(fingerprint, mmap=mmap)
        if dataset is not None:
            return dataset, True
        if build_workers is not None and build_workers > 1:
            try:
                self.build(
                    config, workers=build_workers, fingerprint=fingerprint
                )
            # OSError: unwritable root.  RuntimeError: a broken process
            # pool (worker OOM-killed — precisely the memory-pressure
            # regime sharded builds target).  Both have a correct, only
            # slower, answer: generate in-process.
            except (OSError, RuntimeError) as error:
                warnings.warn(
                    f"sharded snapshot build under {self.root} failed "
                    f"({error}); falling back to in-process generation",
                    RuntimeWarning,
                    stacklevel=2,
                )
            else:
                reopened = self._load(fingerprint, mmap=mmap, count=False)
                if reopened is not None:
                    return reopened, False
        generated = generate(config)
        try:
            self.save(generated, config, fingerprint=fingerprint)
        except OSError as error:
            warnings.warn(
                f"snapshot store root {self.root} is not writable "
                f"({error}); returning the un-persisted in-memory snapshot",
                RuntimeWarning,
                stacklevel=2,
            )
            return generated, False
        reopened = self._load(fingerprint, mmap=mmap, count=False)
        return (reopened if reopened is not None else generated), False

    # -- maintenance ----------------------------------------------------

    def delete(self, fingerprint: str) -> bool:
        """Remove one snapshot directory; True if something was deleted."""
        directory = self.path_for(fingerprint)
        if not directory.is_dir():
            return False
        shutil.rmtree(directory)
        return True

    def prune(self, *, max_age_s: float = STALE_STAGING_AGE_S) -> list[Path]:
        """Delete staging directories orphaned by crashed builds.

        A build that dies between ``mkdtemp`` and ``os.replace`` leaves
        its ``.<fingerprint>.tmp-*`` directory behind forever —
        ``entries()`` skips it, but nothing ever reclaimed the space.
        Every :meth:`save`/:meth:`build` calls this with the default age
        gate, so leftovers disappear on the next write while a
        *concurrent* writer's live staging — always younger than
        ``max_age_s`` — is untouched.  ``max_age_s=0``
        (``repro scenarios prune --all``) clears everything.

        Returns the directories actually removed (an undeletable one —
        say, another user's on a shared store — is not reported).
        """
        if not self.root.is_dir():
            return []
        removed = []
        now = time.time()
        for path in self.root.iterdir():
            if not (
                path.name.startswith(".")
                and _STAGING_MARKER in path.name
                and path.is_dir()
            ):
                continue
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue  # vanished under us (a concurrent prune/install)
            if age >= max_age_s:
                shutil.rmtree(path, ignore_errors=True)
                if not path.exists():
                    removed.append(path)
        return removed

    def __len__(self) -> int:
        """Number of loadable snapshots under the root."""
        return len(self.entries())


def _current_umask() -> int:
    """The process umask, read without mutating it when possible.

    The classic ``os.umask(0); os.umask(previous)`` dance opens a
    window in which files created by *other threads* land
    world-writable, so on Linux the value is read from
    ``/proc/self/status`` instead; the set-and-restore fallback only
    runs where no such interface exists.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as status:
            for line in status:
                if line.startswith("Umask:"):
                    return int(line.split()[1], 8)
    except (OSError, ValueError, IndexError):
        pass
    umask = os.umask(0)
    os.umask(umask)
    return umask


def _honor_umask(staging: Path) -> None:
    """Re-permission a staged tree to what the process umask grants.

    ``tempfile.mkdtemp`` deliberately creates its directory ``0o700``
    and ``os.replace`` preserves that mode, so without this every
    installed snapshot would be unreadable to other users — silently
    turning a shared store (CI cache, multi-user machine) into a
    per-user one.  Files get ``0o666 & ~umask``, directories
    ``0o777 & ~umask``, exactly what a plain ``mkdir``/``open`` would
    have produced outside ``tempfile``.
    """
    umask = _current_umask()
    dir_mode = 0o777 & ~umask
    file_mode = 0o666 & ~umask
    os.chmod(staging, dir_mode)
    for path in staging.rglob("*"):
        os.chmod(path, dir_mode if path.is_dir() else file_mode)
