"""The built-in scenario library: economies that stress the paper's findings.

The paper's conclusions are about *national* employer-employee data —
millions of jobs, extreme establishment-size skew, sparse
single-establishment cells, and four place-population strata.  Each
scenario here isolates one of those structural drivers so the utility
cost of the formal mechanisms can be measured where it bites:

======================  ====================================================
``paper-default``       the repo's historical ≈60k-job three-state economy
``national-1m``         a million-plus-job economy at national geography
``metro-heavy``         employment concentrated in large-population places
``sparse-rural``        many tiny places → single-establishment cells
``heavy-skew``          a fatter Pareto tail of giant establishments
``panel-5yr``           the base year for five-year panel experiments
======================  ====================================================

Factories return plain :class:`SyntheticConfig` values; generation,
fingerprinting and persistence are the
:class:`~repro.scenarios.store.SnapshotStore`'s job.
"""

from __future__ import annotations

from repro.data.generator import SyntheticConfig
from repro.data.geography import GeographyConfig
from repro.data.sizes import SizeModel
from repro.scenarios.registry import register_scenario

# Scenario data seeds are spaced so no two scenarios can share derived
# streams even if their other knobs coincide.
_NATIONAL_SEED = 20170601
_METRO_SEED = 20170602
_RURAL_SEED = 20170603
_SKEW_SEED = 20170604
_PANEL_SEED = 20170605


@register_scenario("paper-default", tags=("paper", "small"))
def paper_default() -> SyntheticConfig:
    """The historical ≈60k-job, 3-state economy every figure was tuned on.

    Exactly ``SyntheticConfig()`` — same seed, same geography — so the
    snapshot fingerprint (and therefore every cached figure point)
    matches runs that never mention scenarios at all.
    """
    return SyntheticConfig()


@register_scenario("national-1m", tags=("national", "large"))
def national_1m() -> SyntheticConfig:
    """A million-plus-job economy: the paper's national-scale regime.

    Findings 1–5 are claims about a 10.9M-job national snapshot; at this
    scale the (place × industry × ownership) domain is far sparser and
    the composition cost of Sec 4 far larger than the default economy
    can show.  Builds through the chunked generator in bounded memory.
    """
    return SyntheticConfig(
        target_jobs=1_000_000,
        seed=_NATIONAL_SEED,
        geography=GeographyConfig(
            n_states=6,
            counties_per_state=5,
            places_per_stratum=(8, 24, 10, 3),
            scale=6.0,
        ),
    )


@register_scenario("metro-heavy", tags=("geography",))
def metro_heavy() -> SyntheticConfig:
    """Employment concentrated in 10k+ and 100k+ population places.

    The paper's stratified figures show the mechanisms are *most*
    accurate in big-place strata (dense cells, small relative noise);
    this economy puts most establishments there, bounding how good the
    utility story gets when geography cooperates.
    """
    return SyntheticConfig(
        target_jobs=120_000,
        seed=_METRO_SEED,
        geography=GeographyConfig(
            places_per_stratum=(2, 8, 16, 9),
            scale=1.0,
        ),
        population_exponent=1.05,
    )


@register_scenario("sparse-rural", tags=("geography", "sparse"))
def sparse_rural() -> SyntheticConfig:
    """Many sub-10k places: the single-establishment-cell worst case.

    Finding 2 and the Sec 5 attacks hinge on sparse cells where one
    establishment *is* the cell — input noise infusion protects them
    poorly and smooth-sensitivity noise explodes.  This economy is
    dominated by <100 and 100–10k population places.
    """
    return SyntheticConfig(
        target_jobs=40_000,
        seed=_RURAL_SEED,
        geography=GeographyConfig(
            n_states=4,
            counties_per_state=5,
            places_per_stratum=(30, 40, 4, 1),
        ),
        population_exponent=0.85,
    )


@register_scenario("heavy-skew", tags=("skew",))
def heavy_skew() -> SyntheticConfig:
    """A fatter Pareto tail: more giant outlier establishments.

    Smooth-sensitivity noise scales with the largest establishment in a
    cell and node-DP truncation drops it entirely (Finding 6), so the
    utility cost of both approaches is a direct function of this tail.
    α = 1.12 with a 5% tail probability roughly triples the default
    model's share of 1000+-employee establishments.
    """
    return SyntheticConfig(
        target_jobs=80_000,
        seed=_SKEW_SEED,
        sizes=SizeModel(
            tail_probability=0.05,
            tail_minimum=150.0,
            tail_alpha=1.12,
            max_size=60_000,
        ),
    )


@register_scenario("panel-5yr", tags=("panel",))
def panel_5yr() -> SyntheticConfig:
    """Base-year economy for five-year panel experiments.

    LODES is published annually, and the production SDL system holds
    each establishment's distortion factor fixed across years precisely
    so repeat publication cannot be averaged away — the contrast with
    per-year independent DP noise (which averages down but composes in
    ε) is measured by :func:`repro.data.panel.generate_panel` with
    ``PanelConfig(base=scenario_config("panel-5yr"), n_years=5)``.
    """
    return SyntheticConfig(target_jobs=30_000, seed=_PANEL_SEED)
