"""repro.scenarios — named economies and the persistent snapshot store.

The data layer's front door for everything above it:

- the **scenario registry** (:func:`register_scenario`,
  :func:`available_scenarios`, :func:`scenario_config`) maps names like
  ``"national-1m"`` or ``"sparse-rural"`` to
  :class:`~repro.data.generator.SyntheticConfig` factories, each
  documenting the paper finding its economy stresses (see
  :mod:`repro.scenarios.library`);
- the **snapshot store** (:class:`SnapshotStore`) persists generated
  :class:`~repro.data.dataset.LODESDataset` snapshots column-by-column
  under a config fingerprint and reopens them as read-only memory maps,
  so CLI runs, tests and process-pool workers *open* an economy instead
  of regenerating it.

Quickstart::

    from repro.api import ReleaseSession
    from repro.scenarios import SnapshotStore

    store = SnapshotStore("reports/snapshots")
    session = ReleaseSession.from_scenario("metro-heavy", snapshot_store=store)
    # second construction (any process) maps the stored snapshot:
    again = ReleaseSession.from_scenario("metro-heavy", snapshot_store=store)
"""

from repro.scenarios.registry import (
    ScenarioSpec,
    available_scenarios,
    register_scenario,
    scenario_config,
    scenario_spec,
    unregister_scenario,
)
from repro.scenarios.store import (
    DEFAULT_SNAPSHOT_DIR,
    STALE_STAGING_AGE_S,
    SnapshotStore,
    dataset_fingerprint,
    panel_fingerprint,
)

__all__ = [
    "ScenarioSpec",
    "register_scenario",
    "unregister_scenario",
    "available_scenarios",
    "scenario_spec",
    "scenario_config",
    "SnapshotStore",
    "DEFAULT_SNAPSHOT_DIR",
    "STALE_STAGING_AGE_S",
    "dataset_fingerprint",
    "panel_fingerprint",
]
