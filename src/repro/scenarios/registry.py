"""The scenario registry: one name → synthetic-economy mapping.

A *scenario* is a named :class:`~repro.data.generator.SyntheticConfig`
factory describing an economy shape worth measuring — the paper-default
three-state sample, a national-scale million-job economy, a metro-heavy
or sparse-rural geography, an extreme establishment-size skew.  Every
consumer (the release session, the CLI, benchmarks, CI) selects
scenarios by name through this registry, exactly as mechanisms are
selected through :mod:`repro.api.registry`::

    @register_scenario("heavy-skew", tags=("skew",))
    def heavy_skew() -> SyntheticConfig:
        \"\"\"One-line description shown by ``repro scenarios list``.\"\"\"
        return SyntheticConfig(...)

The factory's docstring doubles as the scenario's description (override
with ``description=``).  Scenario names feed snapshot fingerprints only
indirectly — the fingerprint hashes the *config* the factory returns, so
renaming a scenario never orphans a stored snapshot.

This module is intentionally a leaf: it imports only the data layer, so
the library (and user code) can register scenarios without cycles.  The
built-in library registers lazily on first lookup.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.data.generator import SyntheticConfig

__all__ = [
    "ScenarioSpec",
    "register_scenario",
    "unregister_scenario",
    "available_scenarios",
    "scenario_spec",
    "scenario_config",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """Registry metadata for one named scenario.

    ``factory`` is a zero-argument callable returning the scenario's
    :class:`SyntheticConfig`; ``description`` is the one-line summary
    shown by ``repro scenarios list``; ``tags`` support coarse filtering
    (``"national"``, ``"skew"``, ``"panel"`` ...).
    """

    name: str
    factory: Callable[[], SyntheticConfig]
    description: str = ""
    tags: tuple[str, ...] = field(default=())

    def config(self) -> SyntheticConfig:
        """Build the scenario's synthetic-economy configuration."""
        config = self.factory()
        if not isinstance(config, SyntheticConfig):
            raise TypeError(
                f"scenario {self.name!r} factory returned "
                f"{type(config).__name__}, expected SyntheticConfig"
            )
        return config

    def build(
        self,
        store,
        *,
        workers: int | None = None,
        overwrite: bool = False,
    ):
        """Persist this scenario's snapshot into ``store``; returns its path.

        ``workers > 1`` fans the workforce chunks out to a process pool
        (:meth:`~repro.scenarios.store.SnapshotStore.build`); the
        installed directory is byte-identical either way.  An existing
        loadable snapshot is kept unless ``overwrite=True``.
        """
        return store.build(self.config(), workers=workers, overwrite=overwrite)


_REGISTRY: dict[str, ScenarioSpec] = {}
_builtins_loaded = False


def register_scenario(
    name: str,
    *,
    description: str = "",
    tags: tuple[str, ...] = (),
    replace: bool = False,
):
    """Function decorator registering a scenario factory by name.

    Registering an already-taken name raises unless ``replace=True`` —
    silently shadowing e.g. ``"paper-default"`` would change what every
    figure regenerated under that name measures.  Without an explicit
    ``description`` the factory docstring's first line is used.
    """

    def decorator(factory):
        if name in _REGISTRY and not replace:
            raise ValueError(
                f"scenario {name!r} is already registered "
                f"(to {_REGISTRY[name].factory!r}); pass replace=True to "
                "override it deliberately"
            )
        doc = (factory.__doc__ or "").strip().splitlines()
        _REGISTRY[name] = ScenarioSpec(
            name=name,
            factory=factory,
            description=description or (doc[0] if doc else ""),
            tags=tuple(tags),
        )
        return factory

    return decorator


def unregister_scenario(name: str) -> None:
    """Remove a registration (primarily for tests of the registry itself)."""
    _REGISTRY.pop(name, None)


def _ensure_builtins() -> None:
    """Import the module that registers the built-in scenario library."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    import repro.scenarios.library  # noqa: F401


def available_scenarios(tag: str | None = None) -> tuple[str, ...]:
    """Sorted names of all registered scenarios (optionally one tag)."""
    _ensure_builtins()
    names = (
        name
        for name, spec in _REGISTRY.items()
        if tag is None or tag in spec.tags
    )
    return tuple(sorted(names))


def scenario_spec(name: str) -> ScenarioSpec:
    """Look a scenario's registry entry up by name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        choices = ", ".join(repr(n) for n in sorted(_REGISTRY))
        raise ValueError(
            f"unknown scenario {name!r}; choose from {choices}"
        ) from None


def scenario_config(name: str) -> SyntheticConfig:
    """The :class:`SyntheticConfig` a named scenario generates from."""
    return scenario_spec(name).config()
