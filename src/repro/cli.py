"""Command-line interface: regenerate the paper's artifacts from a shell.

Subcommands:

- ``figures`` — run the figure experiments and write one text report per
  figure (the data series the published plots encode);
- ``tables``  — write Tables 1 and 2 plus the empirical session summary
  (Table 3), sharing one snapshot across the whole invocation;
- ``sweep``   — run an ad-hoc (mechanism × α × ε) grid on any workload
  through the sweep engine and write the series as text + JSON;
- ``release`` — execute a single declarative release request and print
  the noisy marginal plus the privacy-ledger state (``--json`` emits the
  machine-readable result instead — the same payload the service serves);
- ``serve``   — run the long-lived multi-tenant DP release service
  (:mod:`repro.serve`): warm sessions per scenario, durable per-tenant
  spend journals under ``--ledger-dir``, content-addressed dedupe
  through the result store, graceful SIGINT/SIGTERM drain;
- ``generate`` — generate a synthetic LODES snapshot and save it as CSV;
- ``scenarios`` — list the registered scenario library, build a named
  scenario's snapshot into the persistent store (``--workers N`` shards
  the build over a process pool, byte-identically), inspect one, or
  prune staging directories left by crashed builds.

Every data-touching command builds one :class:`repro.api.ReleaseSession`
per invocation: the snapshot is generated once, the SDL baseline fitted
once, and all requests reuse the cached trial-invariant statistics.

``figures``/``tables``/``sweep`` take ``--scenario NAME`` to run against
a registered economy from :mod:`repro.scenarios` instead of the ad-hoc
``--jobs`` config (outputs then land in ``OUT/NAME/``), and they open
their snapshot through the persistent :class:`~repro.scenarios.SnapshotStore`
under ``--snapshot-dir`` (default ``reports/snapshots``): the first run
generates and persists the economy, every later run — and every process
worker of this run — memory-maps the stored artifact instead of
regenerating it.  ``--no-snapshots`` restores in-process generation.

``figures``, ``tables`` and ``sweep`` submit their grids to the sweep
engine (:mod:`repro.engine`): ``--workers N`` fans the grid over a
worker pool (``--executor thread|process|serial`` picks the pool kind;
results are bit-identical to serial), every computed point is written to
the content-addressed result store under ``--cache-dir`` (default
``reports/cache``), ``--resume`` replays completed points from the store
instead of recomputing them, and ``--no-cache`` disables the store
entirely.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.api.registry import available_mechanisms
from repro.api.request import ReleaseRequest
from repro.api.session import ReleaseSession
from repro.data.generator import SyntheticConfig, generate
from repro.data.io import save_dataset
from repro.dp.composition import PrivacyBudgetExceeded
from repro.engine.executors import EXECUTOR_NAMES, resolve_executor
from repro.engine.plan import METRICS, grid_plan
from repro.engine.store import DEFAULT_CACHE_DIR, ResultStore
from repro.engine.sweep import encode_point, run_plan
from repro.experiments.config import MECHANISM_NAMES, ExperimentConfig
from repro.experiments.figures import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    finding6,
)
from repro.experiments.report import render_figure
from repro.experiments.tables import table1_text, table2_text, table3_text
from repro.data.panel import PanelConfig
from repro.scenarios import (
    DEFAULT_SNAPSHOT_DIR,
    SnapshotStore,
    available_scenarios,
    dataset_fingerprint,
    panel_fingerprint,
    scenario_spec,
)
from repro.storage import StoreStats, backend_from_url
from repro.util import format_table

FIGURES = {
    "figure-1": figure1,
    "figure-2": figure2,
    "figure-3": figure3,
    "figure-4": figure4,
    "figure-5": figure5,
    "finding-6": finding6,
}

EPILOG = """\
examples:
  repro figures --out reports --jobs 150000 --trials 10
  repro figures --only figure-1,finding-6 --workers 4 --executor process
  repro figures --resume                  # recompute only missing points
  repro figures --scenario metro-heavy --workers 4 --executor process --resume
  repro tables  --out reports --jobs 20000 --trials 5 --workers 2
  repro sweep   --workload workload-1 --metric l1-ratio \\
                --alphas 0.05,0.1 --epsilons 0.5,1,2 --workers 4 --resume
  repro sweep   --scenario sparse-rural --alphas 0.1 --epsilons 1,2
  repro release --attrs place,naics --mechanism smooth-laplace \\
                --alpha 0.1 --epsilon 2 --delta 0.05 --budget 4
  repro release --attrs place,naics --alpha 0.1 --epsilon 2 --json
  repro serve --scenario paper-default --port 8200   # DP release service
  repro serve --port 0 --tenants-config tenants.json # ephemeral port on stdout
  repro generate --jobs 60000 --out snapshot/
  repro scenarios list                    # the registered economy library
  repro scenarios build national-1m       # persist a snapshot to the store
  repro scenarios build national-1m --workers 4   # sharded, byte-identical
  repro scenarios build panel-5yr --panel --years 5  # resumable panel build
  repro scenarios info metro-heavy
  repro scenarios prune                   # clear stale staging dirs (--all: every one)
  repro storage stats                     # store inventory + unified stats
  repro storage serve --root /srv/bucket  # HTTP object store for a fleet
  repro sweep --scenario metro-heavy --store-url file:///shared/bucket --resume

sweep engine (figures / tables / sweep):
  --workers N      parallel grid evaluation (bit-identical to serial)
  --executor KIND  serial | thread | process (default: process when N>1)
  --resume         replay completed points from the result store
  --no-cache       do not read or write the result store
  --cache-dir DIR  content-addressed store location (default reports/cache)

snapshot store (figures / tables / sweep / scenarios):
  --scenario NAME    run against a registered economy (repro scenarios list)
  --snapshot-dir DIR persistent snapshot store (default reports/snapshots);
                     runs and process workers mmap the stored economy
  --no-snapshots     regenerate in-process, do not touch the store
  --workers N        a snapshot miss builds sharded over N processes
                     (scenarios build; figures/tables/sweep reuse their
                     executor worker count for the build, bit-identically)

storage backends (figures / tables / sweep / scenarios):
  --store-url URL  share snapshots and results across machines through a
                   remote object store: file:///dir (shared filesystem)
                   or http(s)://host:port (see `repro storage serve`).
                   --snapshot-dir / --cache-dir become the local download
                   caches; writes mirror through, reads download-then-mmap
"""


def _version() -> str:
    """The installed package version, falling back to the source tree's."""
    try:
        from importlib.metadata import version

        return version("repro-eree")
    except Exception:
        import repro

        return getattr(repro, "__version__", "unknown")


def _add_session_arguments(
    parser, jobs_default: int, trials_default: int, scenario: bool = False
):
    parser.add_argument("--jobs", type=int, default=jobs_default)
    parser.add_argument("--trials", type=int, default=trials_default)
    parser.add_argument("--seed", type=int, default=2017)
    if scenario:
        parser.add_argument(
            "--scenario",
            default=None,
            metavar="NAME",
            help="run against a registered scenario economy instead of "
            "--jobs (see `repro scenarios list`); outputs go to OUT/NAME/",
        )


def _add_engine_arguments(parser, *, claims: bool = True):
    """The sweep-engine knobs shared by figures/tables/sweep.

    ``claims=False`` omits the cooperative-drain flags for commands
    whose compute does not go through ``run_plan``'s per-point path
    (Table 3 drains a request grid, not a sweep plan).
    """
    parser.add_argument(
        "--snapshot-dir",
        type=Path,
        default=DEFAULT_SNAPSHOT_DIR,
        metavar="DIR",
        help="persistent snapshot store location; runs and process "
        f"workers mmap the stored economy (default {DEFAULT_SNAPSHOT_DIR})",
    )
    parser.add_argument(
        "--no-snapshots",
        action="store_true",
        help="generate the snapshot in-process, bypassing the store",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="evaluate grid points on N parallel workers "
        "(bit-identical results to serial execution; default: serial, "
        "or an auto-sized pool when --executor names one)",
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTOR_NAMES,
        default=None,
        help="worker pool kind (default: process when --workers > 1)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="replay already-computed points from the result store; "
        "only missing points are recomputed",
    )
    parser.add_argument(
        "--fused",
        nargs="?",
        const="group",
        default=False,
        choices=("group", "family"),
        help="share unit-noise draws across the grid: 'group' (the "
        "default when the flag is given bare) draws once per "
        "(mechanism, alpha) epsilon row, 'family' draws once per "
        "mechanism's whole alpha x epsilon grid (statistically "
        "equivalent to per-point evaluation, different RNG streams, "
        "cached under distinct keys)",
    )
    if claims:
        parser.add_argument(
            "--claim",
            action="store_true",
            help="coordinate with other drains of the same plan through "
            "lease files on the result store: each missing point is "
            "claimed before it is computed, so N concurrent processes "
            "(or machines, via --store-url) partition the grid instead "
            "of each computing all of it; implies --resume and "
            "requires the result store",
        )
        parser.add_argument(
            "--claim-ttl",
            type=float,
            default=None,
            metavar="SECONDS",
            help="lease time-to-live for --claim; a claim whose owner "
            "crashed is taken over by another drain after this long "
            "(default 300)",
        )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the result store",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help="content-addressed result store location "
        f"(default {DEFAULT_CACHE_DIR})",
    )
    _add_store_url_argument(parser)


def _add_store_url_argument(parser):
    parser.add_argument(
        "--store-url",
        default=None,
        metavar="URL",
        help="share stores through a remote object backend "
        "(file:///dir or http(s)://host:port); --snapshot-dir and "
        "--cache-dir become the local download caches",
    )


def _parse_values(text: str, cast) -> tuple:
    return tuple(cast(part.strip()) for part in text.split(",") if part.strip())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Haney et al., SIGMOD 2017 "
        "(formal privacy for employer-employee statistics)",
        epilog=EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_version()}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    figures = subparsers.add_parser(
        "figures", help="regenerate the evaluation figures as data series"
    )
    figures.add_argument("--out", type=Path, default=Path("reports"))
    _add_session_arguments(
        figures, jobs_default=150_000, trials_default=10, scenario=True
    )
    figures.add_argument(
        "--trials-batch",
        type=int,
        default=None,
        metavar="N",
        help="max trials per vectorized noise draw (default: all trials "
        "in one (trials, cells) matrix; set to bound memory)",
    )
    figures.add_argument(
        "--only",
        default=None,
        help="comma-separated subset, e.g. figure-1,finding-6",
    )
    _add_engine_arguments(figures)

    tables = subparsers.add_parser(
        "tables",
        help="regenerate Tables 1 and 2 plus the session summary (Table 3)",
    )
    tables.add_argument("--out", type=Path, default=Path("reports"))
    _add_session_arguments(
        tables, jobs_default=20_000, trials_default=3, scenario=True
    )
    _add_engine_arguments(tables, claims=False)

    sweep = subparsers.add_parser(
        "sweep",
        help="run an ad-hoc (mechanism x alpha x epsilon) grid through "
        "the sweep engine",
    )
    sweep.add_argument("--out", type=Path, default=Path("reports"))
    sweep.add_argument(
        "--workload",
        default="workload-1",
        help="workload name (workload-1/2/3 or females-college)",
    )
    sweep.add_argument("--metric", choices=METRICS, default="l1-ratio")
    sweep.add_argument(
        "--mechanisms",
        default=",".join(MECHANISM_NAMES),
        help="comma-separated mechanism names",
    )
    sweep.add_argument("--alphas", default="0.05,0.1,0.2")
    sweep.add_argument("--epsilons", default="0.5,1,2,4")
    sweep.add_argument("--delta", type=float, default=0.05)
    sweep.add_argument(
        "--tag",
        default="sweep",
        help="names the output files and seeds the per-point streams",
    )
    sweep.add_argument(
        "--profile",
        action="store_true",
        help="record a per-stage wall-clock breakdown (draw/reduce/store) "
        "in the JSON output",
    )
    _add_session_arguments(
        sweep, jobs_default=20_000, trials_default=5, scenario=True
    )
    _add_engine_arguments(sweep)

    release = subparsers.add_parser(
        "release",
        help="execute one declarative release request and print the "
        "noisy marginal plus the ledger state",
    )
    release.add_argument(
        "--attrs",
        default="place,naics,ownership",
        help="comma-separated marginal attributes",
    )
    release.add_argument(
        "--mechanism",
        default="smooth-laplace",
        help=f"one of: {', '.join(available_mechanisms())}",
    )
    release.add_argument("--alpha", type=float, default=0.1)
    release.add_argument("--epsilon", type=float, default=2.0)
    release.add_argument("--delta", type=float, default=0.05)
    release.add_argument(
        "--mode",
        choices=("strong", "weak"),
        default=None,
        help="privacy mode (default: the paper's pairing by attributes)",
    )
    release.add_argument(
        "--theta",
        type=int,
        default=None,
        help="truncation degree (truncated-laplace only)",
    )
    release.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="EPS",
        help="arm the privacy ledger with a total epsilon budget",
    )
    release.add_argument("--top", type=int, default=10, metavar="K")
    release.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable result + ledger state as JSON "
        "(the same payload the release service serves)",
    )
    _add_session_arguments(release, jobs_default=20_000, trials_default=1)

    serve = subparsers.add_parser(
        "serve",
        help="run the multi-tenant DP release service "
        "(POST /v1/release, durable per-tenant spend journals)",
    )
    serve.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="host a registered scenario economy (repeatable; the first "
        "is the default; default: one ad-hoc --jobs economy)",
    )
    serve.add_argument("--jobs", type=int, default=20_000)
    serve.add_argument("--trials", type=int, default=1)
    serve.add_argument("--seed", type=int, default=2017)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8200,
        help="0 binds an ephemeral port, reported on stdout (default 8200)",
    )
    serve.add_argument(
        "--tenants-config",
        type=Path,
        default=None,
        metavar="FILE",
        help="JSON tenant budgets: {\"tenants\": {name: {\"epsilon_budget\": "
        "..., \"on_overdraft\": \"raise\"|\"warn\"}}, \"default\": ...}; "
        "without it any tenant name is admitted with an unlimited ledger",
    )
    serve.add_argument(
        "--compute-workers",
        type=int,
        default=None,
        metavar="N",
        help="bounded executor size for release compute and journal I/O "
        "(default: small, CPU-derived)",
    )
    serve.add_argument(
        "--ledger-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="durable per-tenant spend journals (default reports/ledgers)",
    )
    serve.add_argument(
        "--snapshot-dir",
        type=Path,
        default=DEFAULT_SNAPSHOT_DIR,
        metavar="DIR",
        help=f"persistent snapshot store (default {DEFAULT_SNAPSHOT_DIR})",
    )
    serve.add_argument(
        "--no-snapshots",
        action="store_true",
        help="generate snapshots in-process, bypassing the store",
    )
    serve.add_argument(
        "--cache-dir",
        type=Path,
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help="content-addressed release dedupe store "
        f"(default {DEFAULT_CACHE_DIR})",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="disable release dedupe (every request computes)",
    )
    serve.add_argument(
        "--warm",
        action="store_true",
        help="build every hosted session before accepting requests",
    )
    serve.add_argument(
        "--compact-on-start",
        action="store_true",
        help="collapse each tenant's spend journal to one snapshot record "
        "before serving (exact totals and paid keys preserved; per-entry "
        "audit detail dropped)",
    )
    _add_store_url_argument(serve)

    gen = subparsers.add_parser(
        "generate", help="generate and save a synthetic LODES snapshot"
    )
    gen.add_argument("--out", type=Path, required=True)
    gen.add_argument("--jobs", type=int, default=60_000)
    gen.add_argument("--seed", type=int, default=20170514)

    scenarios = subparsers.add_parser(
        "scenarios",
        help="list the scenario library, build snapshots into the "
        "persistent store, inspect one, or prune stale staging dirs",
    )
    scenarios.add_argument("action", choices=("list", "build", "info", "prune"))
    scenarios.add_argument(
        "name", nargs="?", default=None, help="scenario name (build/info)"
    )
    scenarios.add_argument(
        "--snapshot-dir",
        type=Path,
        default=DEFAULT_SNAPSHOT_DIR,
        metavar="DIR",
        help=f"snapshot store location (default {DEFAULT_SNAPSHOT_DIR})",
    )
    scenarios.add_argument(
        "--force",
        action="store_true",
        help="rebuild the snapshot even if the store already has it",
    )
    scenarios.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="build the snapshot sharded over N processes, each writing "
        "its workforce chunks straight into the store files "
        "(byte-identical to the sequential build; default: sequential)",
    )
    scenarios.add_argument(
        "--all",
        action="store_true",
        help="prune: remove every staging directory regardless of age "
        "(default: only those older than an hour, so concurrent "
        "builds are safe)",
    )
    scenarios.add_argument(
        "--panel",
        action="store_true",
        help="build: persist a multi-year panel (registry + one "
        "directory per year, each installed atomically, so a killed "
        "build resumes at year granularity)",
    )
    scenarios.add_argument(
        "--years",
        type=int,
        default=5,
        metavar="N",
        help="build --panel: number of panel years (default 5)",
    )
    _add_store_url_argument(scenarios)

    storage = subparsers.add_parser(
        "storage",
        help="inspect the storage layer (stats) or run an HTTP object "
        "store for a fleet (serve)",
    )
    storage.add_argument("action", choices=("stats", "serve"))
    storage.add_argument(
        "--snapshot-dir",
        type=Path,
        default=DEFAULT_SNAPSHOT_DIR,
        metavar="DIR",
        help=f"snapshot store location (default {DEFAULT_SNAPSHOT_DIR})",
    )
    storage.add_argument(
        "--cache-dir",
        type=Path,
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"result store location (default {DEFAULT_CACHE_DIR})",
    )
    _add_store_url_argument(storage)
    storage.add_argument(
        "--root",
        type=Path,
        default=None,
        metavar="DIR",
        help="serve: back objects with this directory so file:// readers "
        "of the same path see them too (default: in-memory)",
    )
    storage.add_argument("--host", default="127.0.0.1")
    storage.add_argument("--port", type=int, default=8123)
    return parser


def _selected_figures(only: str | None) -> dict:
    if only is None:
        return dict(FIGURES)
    names = [name.strip() for name in only.split(",") if name.strip()]
    unknown = [name for name in names if name not in FIGURES]
    if unknown:
        raise SystemExit(
            f"unknown figures {unknown}; choose from {sorted(FIGURES)}"
        )
    return {name: FIGURES[name] for name in names}


def _snapshot_store_from_args(args) -> SnapshotStore | None:
    if getattr(args, "no_snapshots", False):
        return None
    root = getattr(args, "snapshot_dir", DEFAULT_SNAPSHOT_DIR)
    url = getattr(args, "store_url", None)
    if url:
        try:
            backend = backend_from_url(url, cache_root=root, prefix="snapshots")
        except (ValueError, NotImplementedError) as error:
            raise SystemExit(str(error)) from None
        return SnapshotStore(backend=backend)
    return SnapshotStore(root)


def _config_from_args(args, trials_batch: int | None = None) -> ExperimentConfig:
    """The experiment config an invocation describes (scenario-aware)."""
    if getattr(args, "scenario", None):
        try:
            return ExperimentConfig.for_scenario(
                args.scenario,
                n_trials=args.trials,
                trials_batch=trials_batch,
                seed=args.seed,
            )
        except ValueError as error:
            raise SystemExit(str(error)) from None
    return ExperimentConfig(
        data=SyntheticConfig(target_jobs=args.jobs, seed=args.seed),
        n_trials=args.trials,
        trials_batch=trials_batch,
        seed=args.seed,
    )


def _session_from_args(args, trials_batch: int | None = None) -> ReleaseSession:
    # --workers does double duty: grid points fan out to that many
    # executor workers, and a snapshot-store *miss* builds the economy
    # sharded over the same count (byte-identical to sequential).
    workers = getattr(args, "workers", None)
    return ReleaseSession(
        _config_from_args(args, trials_batch),
        snapshot_store=_snapshot_store_from_args(args),
        snapshot_workers=workers,
    )


def _out_dir_from_args(args) -> Path:
    """Where artifacts land: ``OUT/`` or ``OUT/<scenario>/`` per scenario."""
    out = args.out
    if getattr(args, "scenario", None):
        out = out / args.scenario
    out.mkdir(parents=True, exist_ok=True)
    return out


def _claim_options_from_args(args) -> dict:
    """The ``run_plan`` claim kwargs for a command with ``--claim`` flags."""
    if not getattr(args, "claim", False):
        return {}
    if args.no_cache:
        raise SystemExit(
            "--claim coordinates through the result store; drop --no-cache"
        )
    if args.fused:
        raise SystemExit(
            "--claim runs on the per-point path; drop --fused"
        )
    return {"claim": True, "claim_ttl_s": getattr(args, "claim_ttl", None)}


def _engine_from_args(args):
    """Resolve the (executor, store) pair shared by figures/tables/sweep."""
    executor = resolve_executor(args.executor, args.workers)
    if args.no_cache:
        return executor, None
    url = getattr(args, "store_url", None)
    if url:
        try:
            backend = backend_from_url(
                url, cache_root=args.cache_dir, prefix="results"
            )
        except (ValueError, NotImplementedError) as error:
            raise SystemExit(str(error)) from None
        return executor, ResultStore(backend=backend)
    return executor, ResultStore(args.cache_dir)


def _store_stats_payload(session, store: ResultStore | None) -> dict:
    """The unified per-store telemetry block for machine-readable output."""
    payload = {}
    snapshot_store = getattr(session, "snapshot_store", None)
    if snapshot_store is not None:
        payload["snapshots"] = snapshot_store.statistics.as_dict()
    if store is not None:
        payload["results"] = store.statistics.as_dict()
    return payload


def _print_cache_summary(store: ResultStore | None) -> None:
    if store is not None:
        print(
            f"cache {store.root}: {store.hits} point(s) replayed, "
            f"{store.writes} computed and stored"
        )


def run_figures(args, session: ReleaseSession | None = None) -> list[Path]:
    if session is None:
        session = _session_from_args(args, trials_batch=args.trials_batch)
    executor, store = _engine_from_args(args)
    claim_options = _claim_options_from_args(args)
    out = _out_dir_from_args(args)
    written = []
    for name, generator in _selected_figures(args.only).items():
        series = generator(
            session,
            executor=executor,
            store=store,
            resume=args.resume,
            fused=args.fused,
            **claim_options,
        )
        path = out / f"{name}.txt"
        path.write_text(render_figure(series) + "\n", encoding="utf-8")
        print(f"wrote {path}")
        written.append(path)
    _print_cache_summary(store)
    return written


def run_tables(args, session: ReleaseSession | None = None) -> list[Path]:
    """Write Tables 1-3; the data-backed table shares one session snapshot."""
    if session is None:
        session = _session_from_args(args)
    executor, store = _engine_from_args(args)
    out = _out_dir_from_args(args)
    written = []
    artifacts = (
        ("table-1", table1_text()),
        ("table-2", table2_text()),
        (
            "table-3",
            table3_text(
                session,
                n_trials=args.trials,
                executor=executor,
                store=store,
                resume=args.resume,
                fused=args.fused,
            ),
        ),
    )
    for name, text in artifacts:
        path = out / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"wrote {path}")
        written.append(path)
    _print_cache_summary(store)
    return written


def run_sweep(args, session: ReleaseSession | None = None) -> list[Path]:
    """Run an ad-hoc grid through the sweep engine; write text + JSON."""
    if session is None:
        session = _session_from_args(args)
    executor, store = _engine_from_args(args)
    plan = grid_plan(
        args.workload,
        args.metric,
        _parse_values(args.mechanisms, str),
        _parse_values(args.alphas, float),
        _parse_values(args.epsilons, float),
        fingerprint=session.snapshot_fingerprint,
        delta=args.delta,
        n_trials=args.trials,
        seed=args.seed,
        tag=args.tag,
    )
    outcome = run_plan(
        plan,
        session,
        executor=executor,
        store=store,
        resume=args.resume,
        fused=args.fused,
        profile=args.profile,
        **_claim_options_from_args(args),
    )
    out = _out_dir_from_args(args)
    text_path = out / f"sweep-{args.tag}.txt"
    text_path.write_text(
        render_figure(outcome.series) + "\n", encoding="utf-8"
    )
    payload = {
        "plan": {
            "name": plan.name,
            "workload": args.workload,
            "metric": plan.metric,
            "fingerprint": plan.fingerprint,
            "n_points": len(plan),
        },
        "computed": outcome.computed,
        "cache_hits": outcome.cache_hits,
        "fused": args.fused,
        "points": [encode_point(point) for point in outcome.points],
        "store_stats": _store_stats_payload(session, store),
    }
    if outcome.profile is not None:
        payload["profile"] = outcome.profile
    json_path = out / f"sweep-{args.tag}.json"
    json_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    for path in (text_path, json_path):
        print(f"wrote {path}")
    print(
        f"swept {len(plan)} point(s): {outcome.computed} computed, "
        f"{outcome.cache_hits} replayed from cache"
    )
    if outcome.profile is not None:
        print(
            "profile: draw {draw_s:.2f}s, reduce {reduce_s:.2f}s, "
            "store {store_s:.2f}s, other {other_s:.2f}s "
            "(total {total_s:.2f}s)".format(**outcome.profile)
        )
        for worker in outcome.profile.get("per_worker", ()):
            print(
                "  worker {worker} (pid {pid}): {tasks} task(s), "
                "draw {draw_s:.2f}s, reduce {reduce_s:.2f}s, "
                "busy {total_s:.2f}s".format(**worker)
            )
    _print_cache_summary(store)
    print(session.ledger.summary().splitlines()[0])
    return [text_path, json_path]


def run_release(args, session: ReleaseSession | None = None) -> int:
    attrs = tuple(name.strip() for name in args.attrs.split(",") if name.strip())
    mechanism_options = (
        {"theta": args.theta} if args.theta is not None else None
    )
    request = ReleaseRequest(
        attrs=attrs,
        mechanism=args.mechanism,
        alpha=args.alpha,
        epsilon=args.epsilon,
        delta=args.delta,
        mode=args.mode,
        n_trials=None if args.trials <= 1 else args.trials,
        seed=args.seed,
        mechanism_options=mechanism_options,
    )
    if session is None:
        session = ReleaseSession(
            ExperimentConfig(
                data=SyntheticConfig(target_jobs=args.jobs, seed=args.seed),
                n_trials=max(args.trials, 1),
                seed=args.seed,
            ),
            budget=args.budget,
        )
    try:
        request.validate(schema=session.schema, worker_attrs=session.worker_attrs)
    except ValueError as error:
        raise SystemExit(f"invalid release request: {error}")
    try:
        result = session.run(request)
    except PrivacyBudgetExceeded as error:
        raise SystemExit(f"release refused: {error}")

    if getattr(args, "json", False):
        print(
            json.dumps(
                {
                    "result": result.to_dict(top=args.top),
                    "ledger": session.ledger.as_dict(),
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0

    release = result.release
    print(
        f"released {release.n_released} of {release.marginal.n_cells} cells "
        f"({result.mechanism}, mode={release.budget.mode}, "
        f"per-cell eps={release.budget.per_cell.epsilon:g})"
    )
    rows = [
        [" x ".join(str(v) for v in values), true, noisy]
        for values, true, noisy in result.top_cells(args.top)
    ]
    print(
        format_table(
            headers=[" x ".join(attrs), "true", "noisy"],
            rows=rows,
            title=f"top {len(rows)} released cells (trial 1 of {result.n_trials})",
        )
    )
    ratio = result.l1_ratio()
    if ratio == ratio:  # not nan
        print(f"L1 error ratio vs SDL baseline: {ratio:.3f}")
    print()
    print(session.ledger.summary())
    return 0


def _require_scenario_name(args) -> str:
    if not args.name:
        raise SystemExit(
            f"`repro scenarios {args.action}` needs a scenario name; "
            f"choose from {', '.join(available_scenarios())}"
        )
    return args.name


def run_scenarios(args) -> int:
    """``repro scenarios list|build|info|prune`` against the snapshot store."""
    import time as _time

    store = _snapshot_store_from_args(args)
    if args.action == "prune":
        removed = (
            store.prune(max_age_s=0.0) if args.all else store.prune()
        )
        if removed:
            for path in removed:
                print(f"pruned {path}")
        print(
            f"{len(removed)} stale staging dir(s) removed under {store.root}"
            + ("" if args.all else " (age-gated; --all removes every one)")
        )
        return 0

    if args.action == "list":
        rows = []
        for name in available_scenarios():
            spec = scenario_spec(name)
            config = spec.config()
            fingerprint = dataset_fingerprint(config)
            rows.append(
                [
                    name,
                    f"{config.target_jobs:,}",
                    fingerprint,
                    "yes" if store.contains(fingerprint) else "no",
                    spec.description,
                ]
            )
        print(
            format_table(
                headers=["scenario", "target jobs", "fingerprint", "built", "what it stresses"],
                rows=rows,
                title=f"scenario library (store: {store.root})",
            )
        )
        return 0

    name = _require_scenario_name(args)
    try:
        spec = scenario_spec(name)
    except ValueError as error:
        raise SystemExit(str(error))
    config = spec.config()
    fingerprint = dataset_fingerprint(config)

    if args.action == "build" and args.panel:
        panel_config = PanelConfig(base=config, n_years=args.years)
        pfp = panel_fingerprint(panel_config)
        if store.contains_panel(pfp) and not args.force:
            print(
                f"{name} panel already built at {store.path_for(pfp)} "
                "(use --force to rebuild)"
            )
            return 0
        workers = args.workers if args.workers and args.workers > 1 else 1
        start = _time.perf_counter()
        path = store.build_panel(
            panel_config,
            workers=workers,
            fingerprint=pfp,
            overwrite=args.force,
        )
        build_s = _time.perf_counter() - start
        meta = store.panel_info(pfp) or {}
        how = (
            f"sharded over {workers} workers" if workers > 1 else "sequential"
        )
        print(
            f"built {name} panel: {meta.get('n_years', 0)} year(s), "
            f"{meta.get('n_establishments', 0):,} registry establishments "
            f"({how}, {build_s:.2f}s; resumable at year granularity)"
        )
        print(f"stored at {path} ({store.size_bytes(pfp):,} bytes)")
        return 0

    if args.action == "build":
        if store.contains(fingerprint) and not args.force:
            print(
                f"{name} already built at {store.path_for(fingerprint)} "
                "(use --force to rebuild)"
            )
            return 0
        workers = args.workers if args.workers and args.workers > 1 else 1
        start = _time.perf_counter()
        path = store.build(
            config,
            workers=workers,
            fingerprint=fingerprint,
            overwrite=args.force,
        )
        build_s = _time.perf_counter() - start
        meta = store.info(fingerprint) or {}
        how = (
            f"sharded over {workers} workers" if workers > 1 else "sequential"
        )
        print(
            f"built {name}: {meta.get('n_jobs', 0):,} jobs, "
            f"{meta.get('n_establishments', 0):,} establishments, "
            f"{meta.get('n_places', 0):,} places "
            f"({how}, {build_s:.2f}s)"
        )
        print(f"stored at {path} ({store.size_bytes(fingerprint):,} bytes)")
        return 0

    # info
    print(f"{name}: {spec.description}")
    if spec.tags:
        print(f"tags: {', '.join(spec.tags)}")
    print(f"fingerprint: {fingerprint}")
    print(f"config: {config}")
    meta = store.info(fingerprint)
    if meta is None:
        print(
            f"not built under {store.root} "
            f"(run `repro scenarios build {name}`)"
        )
    else:
        print(
            f"built at {store.path_for(fingerprint)}: "
            f"{meta['n_jobs']:,} jobs, {meta['n_establishments']:,} "
            f"establishments, {meta['n_places']:,} places, "
            f"{store.size_bytes(fingerprint):,} bytes on disk"
        )
    return 0


def run_storage(args) -> int:
    """``repro storage stats|serve`` — inspect or share the storage layer."""
    if args.action == "serve":
        import signal
        import threading

        from repro.storage.httpd import ObjectServer

        server = ObjectServer(host=args.host, port=args.port, root=args.root)
        backing = str(args.root) if args.root else "in-memory"
        # Serve on a background thread and park the main thread on an
        # event: a signal handler must never call shutdown() from the
        # serving thread itself (self-join deadlock), and this way
        # SIGINT and SIGTERM both drain in-flight requests before exit.
        # Handlers go in before the announce — the announce is the
        # ready signal, and a supervisor may SIGTERM the moment it sees
        # it.
        stop = threading.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            signal.signal(signum, lambda *_: stop.set())
        server.start()
        print(
            f"object store listening on {server.url} (backing: {backing})",
            flush=True,
        )
        print(f"point workers at:  --store-url {server.url}", flush=True)
        try:
            stop.wait()
        except KeyboardInterrupt:
            pass
        server.stop()
        print("object store drained and stopped", flush=True)
        return 0

    # stats: one shared ledger across both stores, plus their inventory.
    stats = StoreStats()
    url = getattr(args, "store_url", None)
    if url:
        try:
            snapshots = SnapshotStore(
                backend=backend_from_url(
                    url,
                    cache_root=args.snapshot_dir,
                    prefix="snapshots",
                    stats=stats,
                )
            )
            results = ResultStore(
                backend=backend_from_url(
                    url, cache_root=args.cache_dir, prefix="results", stats=stats
                )
            )
        except (ValueError, NotImplementedError) as error:
            raise SystemExit(str(error)) from None
    else:
        from repro.storage import LocalFSBackend

        snapshots = SnapshotStore(
            backend=LocalFSBackend(args.snapshot_dir, stats=stats)
        )
        results = ResultStore(
            backend=LocalFSBackend(args.cache_dir, stats=stats)
        )

    snapshot_entries = snapshots.entries()
    panel_entries = snapshots.panel_entries()
    snapshot_bytes = sum(
        snapshots.size_bytes(meta["fingerprint"])
        for meta in snapshot_entries + panel_entries
    )
    result_keys = [
        key for key in results.backend.list_keys() if key.endswith(".json")
    ]
    result_bytes = sum(
        results.backend.size_bytes(key)
        for key in results.backend.list_keys()
        if key.endswith((".json", ".npz"))
    )
    rows = [
        [
            "snapshots",
            str(snapshots.root),
            f"{len(snapshot_entries)} snapshot(s), {len(panel_entries)} panel(s)",
            f"{snapshot_bytes:,}",
        ],
        [
            "results",
            str(results.root),
            f"{len(result_keys)} point(s)",
            f"{result_bytes:,}",
        ],
    ]
    print(
        format_table(
            headers=["store", "local root", "entries", "bytes"],
            rows=rows,
            title=(
                f"storage backends (remote: {url})" if url else
                "storage backends (local)"
            ),
        )
    )
    ledger = stats.as_dict()
    print(
        "session stats: "
        + ", ".join(f"{name}={value}" for name, value in ledger.items())
    )
    return 0


def run_serve(args) -> int:
    """``repro serve`` — the long-lived multi-tenant DP release service."""
    import asyncio

    from repro.serve import (
        DEFAULT_LEDGER_DIR,
        ReleaseCache,
        ReleaseService,
        SessionPool,
        TenantPolicy,
        TenantRegistry,
    )

    if args.scenario:
        try:
            configs = {
                name: ExperimentConfig.for_scenario(
                    name, n_trials=args.trials, seed=args.seed
                )
                for name in args.scenario
            }
        except ValueError as error:
            raise SystemExit(str(error)) from None
    else:
        configs = {
            "adhoc": ExperimentConfig(
                data=SyntheticConfig(target_jobs=args.jobs, seed=args.seed),
                n_trials=args.trials,
                seed=args.seed,
            )
        }
    pool = SessionPool(
        configs,
        snapshot_store=_snapshot_store_from_args(args),
        compute_workers=args.compute_workers,
    )

    ledger_dir = (
        DEFAULT_LEDGER_DIR if args.ledger_dir is None else args.ledger_dir
    )
    url = getattr(args, "store_url", None)
    try:
        ledger_backend = (
            backend_from_url(url, cache_root=ledger_dir, prefix="ledgers")
            if url
            else None
        )
        if args.no_cache:
            store = None
        elif url:
            store = ResultStore(
                backend=backend_from_url(
                    url, cache_root=args.cache_dir, prefix="results"
                )
            )
        else:
            store = ResultStore(args.cache_dir)
    except (ValueError, NotImplementedError) as error:
        raise SystemExit(str(error)) from None
    try:
        if args.tenants_config is not None:
            tenants = TenantRegistry.from_config_file(
                args.tenants_config,
                ledger_backend,
                **({} if ledger_backend else {"root": ledger_dir}),
            )
        else:
            # Zero-config mode: any path-safe tenant name is admitted
            # with an unlimited (tracking-only) durable ledger.
            tenants = TenantRegistry(
                ledger_backend,
                default_policy=TenantPolicy(),
                **({} if ledger_backend else {"root": ledger_dir}),
            )
    except (OSError, ValueError) as error:
        raise SystemExit(f"tenants config error: {error}") from None

    if args.compact_on_start:
        compacted = tenants.compact_journals()
        if compacted:
            print(
                f"compacted {len(compacted)} spend journal(s): "
                + ", ".join(compacted),
                flush=True,
            )
        else:
            print("no spend journals needed compaction", flush=True)

    service = ReleaseService(
        pool, tenants, ReleaseCache(store), host=args.host, port=args.port
    )
    if args.warm:
        for name in pool.warm():
            print(f"warmed session: {name}", flush=True)

    def announce(message: str) -> None:
        print(message, flush=True)

    asyncio.run(service.run_until_signalled(announce=announce))
    return 0


def run_generate(args) -> Path:
    dataset = generate(SyntheticConfig(target_jobs=args.jobs, seed=args.seed))
    directory = save_dataset(dataset, args.out)
    summary = dataset.summary()
    print(
        f"wrote snapshot to {directory}: "
        f"{int(summary['n_jobs'])} jobs, "
        f"{int(summary['n_establishments'])} establishments, "
        f"{int(summary['n_places'])} places"
    )
    return directory


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "figures":
        run_figures(args)
    elif args.command == "tables":
        run_tables(args)
    elif args.command == "sweep":
        run_sweep(args)
    elif args.command == "release":
        run_release(args)
    elif args.command == "serve":
        return run_serve(args)
    elif args.command == "generate":
        run_generate(args)
    elif args.command == "scenarios":
        run_scenarios(args)
    elif args.command == "storage":
        return run_storage(args)
    return 0
