"""Command-line interface: regenerate the paper's artifacts from a shell.

Subcommands:

- ``figures`` — run the figure experiments and write one text report per
  figure (the data series the published plots encode);
- ``tables``  — write Tables 1 and 2;
- ``generate`` — generate a synthetic LODES snapshot and save it as CSV.

Examples::

    python -m repro figures --out reports --jobs 150000 --trials 10
    python -m repro tables --out reports
    python -m repro generate --jobs 60000 --out snapshot/
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.data.generator import SyntheticConfig, generate
from repro.data.io import save_dataset
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    finding6,
)
from repro.experiments.report import render_figure
from repro.experiments.runner import ExperimentContext
from repro.experiments.tables import table1_text, table2_text

FIGURES = {
    "figure-1": figure1,
    "figure-2": figure2,
    "figure-3": figure3,
    "figure-4": figure4,
    "figure-5": figure5,
    "finding-6": finding6,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Haney et al., SIGMOD 2017 "
        "(formal privacy for employer-employee statistics)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    figures = subparsers.add_parser(
        "figures", help="regenerate the evaluation figures as data series"
    )
    figures.add_argument("--out", type=Path, default=Path("reports"))
    figures.add_argument("--jobs", type=int, default=150_000)
    figures.add_argument("--trials", type=int, default=10)
    figures.add_argument(
        "--trials-batch",
        type=int,
        default=None,
        metavar="N",
        help="max trials per vectorized noise draw (default: all trials "
        "in one (trials, cells) matrix; set to bound memory)",
    )
    figures.add_argument("--seed", type=int, default=2017)
    figures.add_argument(
        "--only",
        default=None,
        help="comma-separated subset, e.g. figure-1,finding-6",
    )

    tables = subparsers.add_parser("tables", help="regenerate Tables 1 and 2")
    tables.add_argument("--out", type=Path, default=Path("reports"))

    gen = subparsers.add_parser(
        "generate", help="generate and save a synthetic LODES snapshot"
    )
    gen.add_argument("--out", type=Path, required=True)
    gen.add_argument("--jobs", type=int, default=60_000)
    gen.add_argument("--seed", type=int, default=20170514)
    return parser


def _selected_figures(only: str | None) -> dict:
    if only is None:
        return dict(FIGURES)
    names = [name.strip() for name in only.split(",") if name.strip()]
    unknown = [name for name in names if name not in FIGURES]
    if unknown:
        raise SystemExit(
            f"unknown figures {unknown}; choose from {sorted(FIGURES)}"
        )
    return {name: FIGURES[name] for name in names}


def run_figures(args) -> list[Path]:
    config = ExperimentConfig(
        data=SyntheticConfig(target_jobs=args.jobs, seed=args.seed),
        n_trials=args.trials,
        trials_batch=args.trials_batch,
        seed=args.seed,
    )
    context = ExperimentContext(config)
    args.out.mkdir(parents=True, exist_ok=True)
    written = []
    for name, generator in _selected_figures(args.only).items():
        series = generator(context)
        path = args.out / f"{name}.txt"
        path.write_text(render_figure(series) + "\n", encoding="utf-8")
        print(f"wrote {path}")
        written.append(path)
    return written


def run_tables(args) -> list[Path]:
    args.out.mkdir(parents=True, exist_ok=True)
    written = []
    for name, text in (("table-1", table1_text()), ("table-2", table2_text())):
        path = args.out / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"wrote {path}")
        written.append(path)
    return written


def run_generate(args) -> Path:
    dataset = generate(SyntheticConfig(target_jobs=args.jobs, seed=args.seed))
    directory = save_dataset(dataset, args.out)
    summary = dataset.summary()
    print(
        f"wrote snapshot to {directory}: "
        f"{int(summary['n_jobs'])} jobs, "
        f"{int(summary['n_establishments'])} establishments, "
        f"{int(summary['n_places'])} places"
    )
    return directory


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "figures":
        run_figures(args)
    elif args.command == "tables":
        run_tables(args)
    elif args.command == "generate":
        run_generate(args)
    return 0
