"""The paper's primary contribution: (α, ε)-ER-EE privacy and mechanisms.

- :mod:`repro.core.params` — privacy parameters and feasibility rules
  (including the Table 2 minimum-ε computation);
- :mod:`repro.core.neighbors` — strong/weak α-neighbor relations
  (Definitions 7.1 and 7.3) and the induced database metric (Sec 7.2);
- :mod:`repro.core.log_laplace` — Algorithm 1 (Log-Laplace mechanism);
- :mod:`repro.core.smooth_sensitivity` — the extended smooth-sensitivity
  framework (Definitions 8.1–8.3, Theorem 8.4, Lemmas 8.5–8.6, 9.1);
- :mod:`repro.core.smooth_gamma` — Algorithm 2 (Smooth Gamma);
- :mod:`repro.core.smooth_laplace` — Algorithm 3 (Smooth Laplace, (α,ε,δ));
- :mod:`repro.core.composition` — Theorems 7.3–7.5 budget rules,
  including the d·ε cost of worker-attribute marginals under weak privacy;
- :mod:`repro.core.release` — end-to-end marginal release;
- :mod:`repro.core.definitions` — Table 1 (definitions × requirements).
"""

from repro.core.composition import (
    EREEAccountant,
    marginal_budget,
    worker_domain_size,
)
from repro.core.definitions import PRIVACY_DEFINITIONS, PrivacyDefinition
from repro.core.log_laplace import LogLaplace
from repro.core.neighbors import (
    alpha_step_distance,
    is_strong_alpha_neighbor,
    is_weak_alpha_neighbor,
)
from repro.core.params import EREEParams, max_alpha, min_epsilon
from repro.core.publication import (
    Product,
    PublicationResult,
    PublicationSuite,
    qwi_style_suite,
)
from repro.core.release import (
    MarginalRelease,
    ReleaseStatistics,
    compute_release_statistics,
    make_mechanism,
    release_from_statistics,
    release_marginal,
    release_marginal_stack,
)
from repro.core.smooth_gamma import SmoothGamma
from repro.core.smooth_laplace import SmoothLaplace
from repro.core.smooth_sensitivity import (
    GammaAdmissible,
    LaplaceAdmissible,
    sample_gamma4,
    smooth_sensitivity_of_counts,
)

__all__ = [
    "EREEParams",
    "min_epsilon",
    "max_alpha",
    "is_strong_alpha_neighbor",
    "is_weak_alpha_neighbor",
    "alpha_step_distance",
    "LogLaplace",
    "SmoothGamma",
    "SmoothLaplace",
    "GammaAdmissible",
    "LaplaceAdmissible",
    "sample_gamma4",
    "smooth_sensitivity_of_counts",
    "EREEAccountant",
    "marginal_budget",
    "worker_domain_size",
    "MarginalRelease",
    "ReleaseStatistics",
    "compute_release_statistics",
    "release_from_statistics",
    "release_marginal",
    "release_marginal_stack",
    "make_mechanism",
    "Product",
    "PublicationSuite",
    "PublicationResult",
    "qwi_style_suite",
    "PRIVACY_DEFINITIONS",
    "PrivacyDefinition",
]
