"""Algorithm 2: the Smooth Gamma mechanism ((α, ε)-ER-EE private, δ = 0).

Budget split per the paper: the dilation part gets ε2 = 5·ln(1+α) — the
minimum making the smooth sensitivity finite (exp(ε2/5) = 1+α exactly) —
and everything else, ε1 = ε - ε2, drives the noise scale, since only the
sliding radius ``a = ε1/5`` enters the error.  Feasible only when
``α + 1 < exp(ε/5)`` so that ε1 > 0.

Noise: Z from h(z) ∝ 1/(1+z⁴), released value q(x) + S*(x)/(ε1/5)·Z with
S*(x) = max(xv·α, 1).  Unbiased with expected L1 error
O(xv·α/ε + 1/ε) (Lemma 8.8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.api.registry import register_mechanism
from repro.core.params import EREEParams
from repro.core.smooth_sensitivity import (
    GammaAdmissible,
    add_smooth_noise,
    add_smooth_noise_batch,
    gamma4_density,
    smooth_sensitivity_of_counts,
)


@register_mechanism(
    "smooth-gamma",
    feasible=EREEParams.allows_smooth_gamma,
    strict_feasibility=True,
    description="Algorithm 2: smooth-sensitivity Gamma(4) noise, pure "
    "(α, ε) guarantee",
    unit_noise="gamma4",
    linear_unit_scale=True,
)
@dataclass(frozen=True)
class SmoothGamma:
    """The Smooth Gamma mechanism (Algorithm 2)."""

    params: EREEParams

    def __post_init__(self):
        if not self.params.allows_smooth_gamma():
            raise ValueError(
                f"Smooth Gamma requires alpha + 1 < exp(epsilon/5); "
                f"got alpha={self.params.alpha}, epsilon={self.params.epsilon} "
                f"(max feasible alpha "
                f"{math.exp(self.params.epsilon / 5.0) - 1.0:.4g})"
            )

    @property
    def name(self) -> str:
        return "Smooth Gamma"

    @property
    def epsilon2(self) -> float:
        """Dilation budget, pinned at its minimum 5·ln(1+α)."""
        return 5.0 * math.log1p(self.params.alpha)

    @property
    def epsilon1(self) -> float:
        """Sliding budget ε1 = ε - ε2 (> 0 by the feasibility check)."""
        return self.params.epsilon - self.epsilon2

    @property
    def distribution(self) -> GammaAdmissible:
        return GammaAdmissible(epsilon1=self.epsilon1, epsilon2=self.epsilon2)

    def smooth_sensitivity(self, max_single: np.ndarray) -> np.ndarray:
        """S*(x) per cell given the largest single-establishment share xv."""
        return smooth_sensitivity_of_counts(
            max_single, self.params.alpha, self.distribution.b
        )

    def noise_scale(self, max_single: np.ndarray) -> np.ndarray:
        """Per-cell multiplier on the unit noise: S*(x)/a = 5·S*(x)/ε1."""
        return self.smooth_sensitivity(max_single) / self.distribution.a

    def release_counts(
        self, counts: np.ndarray, max_single: np.ndarray, seed=None
    ) -> np.ndarray:
        """Release noisy counts; ``max_single`` supplies xv per cell."""
        sensitivity = self.smooth_sensitivity(max_single)
        return add_smooth_noise(counts, sensitivity, self.distribution, seed)

    def release_counts_batch(
        self,
        counts: np.ndarray,
        max_single: np.ndarray,
        n_trials: int = 1,
        seed=None,
    ) -> np.ndarray:
        """``(n_trials, n_cells)`` noisy matrix from one rejection stream.

        ``counts``/``max_single`` are per-cell vectors replicated across
        trials or ``(k, n_cells)`` stacks of distinct truths (the
        stacked form carries its own leading axis, so ``n_trials`` must
        stay 1 or equal k).
        """
        sensitivity = self.smooth_sensitivity(max_single)
        return add_smooth_noise_batch(
            counts, sensitivity, self.distribution, n_trials, seed
        )

    def release_counts_from_unit(
        self,
        counts: np.ndarray,
        max_single: np.ndarray,
        unit: np.ndarray,
    ) -> np.ndarray:
        """Theorem 8.4 release from an externally drawn unit matrix.

        ``unit`` is unscaled γ4 noise (any shape broadcastable with
        ``counts``); the fused sweep path draws it once per (workload,
        mechanism, α) group and calls this per ε, since only the scalar
        ``a = ε1/5`` differs across the group's ε points.
        """
        counts = np.asarray(counts, dtype=np.float64)
        return counts + self.noise_scale(max_single) * np.asarray(
            unit, dtype=np.float64
        )

    def expected_l1_error(self, max_single: np.ndarray) -> np.ndarray:
        """Per-cell expected |error| = (S*/a)·E|Z| (Lemma 8.8 is O(xvα/ε))."""
        return self.noise_scale(max_single) * self.distribution.expected_abs()

    def noise_variance(self, max_single: np.ndarray) -> np.ndarray:
        """Per-cell noise variance; E[Z²] = 1 for the normalized h with
        γ = 4, so Var = scale² (used by the hierarchy extension)."""
        scale = self.noise_scale(max_single)
        return scale * scale

    def log_density(
        self, output: np.ndarray, count: float, max_single: float
    ) -> np.ndarray:
        """Log density of the release at ``output`` (verification tests)."""
        scale = float(self.noise_scale(np.array([max_single]))[0])
        z = (np.asarray(output, dtype=np.float64) - count) / scale
        return np.log(gamma4_density(z)) - math.log(scale)
