"""End-to-end marginal release under (α, ε[, δ])-ER-EE privacy.

The release pipeline is split into a cacheable, deterministic half and a
randomized half:

- :func:`compute_release_statistics` evaluates the true marginal,
  resolves the privacy mode, computes the per-cell smooth-sensitivity
  statistic ``xv`` and picks which cells are published — everything that
  does not depend on the noise draw (:class:`ReleaseStatistics`);
- :func:`release_from_statistics` derives the per-cell budget, looks the
  mechanism up in the :mod:`repro.api.registry`, and adds noise.

:class:`repro.api.ReleaseSession` caches the first half per (attrs,
mode) so repeated requests against one snapshot only redraw noise.
:func:`release_marginal` chains the two halves for one-shot use and is
kept as the historical entry point (prefer the session facade for
anything beyond a single release — it adds caching and ledger
accounting on top of the identical noise stream).

Which cells are published?  Establishment existence, sector, ownership
and location are public (Sec 4.1), so a cell is released iff its
workplace-attribute part matches at least one establishment; worker-
attribute slices of a published workplace cell are all released
(including zeros — worker attributes are confidential, so publishing
which worker cells are empty would otherwise leak, cf. the Sec 5.2
zero-preservation attack on SDL).
"""

from __future__ import annotations

from collections.abc import Collection, Sequence
from dataclasses import dataclass

import numpy as np

from repro.api.registry import MechanismSpec, create_mechanism, mechanism_spec
from repro.core.composition import (
    MARGINAL,
    STRONG,
    WEAK,
    MarginalBudget,
    marginal_budget,
)
from repro.core.params import EREEParams
from repro.db.join import WorkerFull
from repro.db.query import Marginal, per_establishment_counts
from repro.util import as_generator

# Worker attributes of the LODES schema; importers can pass their own set
# for other schemas.
DEFAULT_WORKER_ATTRS: tuple[str, ...] = ("age", "sex", "race", "ethnicity", "education")

# The paper's three calibrated mechanisms (kept for compatibility; the
# authoritative list is repro.api.available_mechanisms()).
MECHANISMS = ("log-laplace", "smooth-gamma", "smooth-laplace")


def make_mechanism(name: str, params: EREEParams, **options):
    """Instantiate a mechanism by name with per-cell parameters.

    .. deprecated::
        Thin shim over :func:`repro.api.registry.create_mechanism`; new
        code should use the registry (or :class:`repro.api.ReleaseSession`)
        directly.  Kept so downstream callers and the fixed-seed
        equivalence tests continue to work unchanged.
    """
    return create_mechanism(name, params, **options)


@dataclass(frozen=True)
class MarginalRelease:
    """A published marginal with its bookkeeping.

    ``noisy`` holds the published values for released cells and 0 for
    suppressed cells (cells whose workplace part matches no
    establishment); ``released`` flags published cells.  ``max_single``
    is the xv statistic actually used for the noise scale (establishment
    contribution per cell under weak mode; whole-establishment size under
    the strong-mode worker-attribute ablation).

    For a batched release (``n_trials`` passed to
    :func:`release_marginal`), ``noisy`` is ``(n_trials, n_cells)`` — one
    row per independent trial from a single vectorized draw; everything
    else stays per-cell.
    """

    marginal: Marginal
    true: np.ndarray
    noisy: np.ndarray
    released: np.ndarray
    max_single: np.ndarray
    budget: MarginalBudget
    mechanism_name: str

    @property
    def n_released(self) -> int:
        return int(self.released.sum())


@dataclass(frozen=True)
class ReleaseStatistics:
    """The deterministic, trial-invariant half of a marginal release.

    Everything here is a pure function of the snapshot and the marginal
    definition — no randomness — so a session can compute it once per
    (attrs, mode) and reuse it across any number of noise draws.
    """

    marginal: Marginal
    mode: str
    has_worker_attrs: bool
    workplace_part: tuple[str, ...]
    true: np.ndarray
    released: np.ndarray
    xv: np.ndarray

    @property
    def attrs(self) -> tuple[str, ...]:
        return tuple(self.marginal.attrs)


def resolve_mode(attrs, worker_attrs, mode: str | None) -> str:
    """The effective privacy mode: the paper's pairing when ``mode=None``."""
    has_worker = any(name in worker_attrs for name in attrs)
    if mode is None:
        return WEAK if has_worker else STRONG
    if mode not in (STRONG, WEAK):
        raise ValueError(f"mode must be 'strong', 'weak' or None, got {mode!r}")
    return mode


def _calibrated_spec(mechanism_name: str) -> MechanismSpec:
    """Registry lookup restricted to per-cell calibrated mechanisms.

    The marginal-release pipeline adds per-cell noise through
    ``release_counts``; baselines and composite procedures registered
    under other kinds have different execution paths
    (:meth:`repro.api.ReleaseSession.run` dispatches them), so asking for
    one here is a caller error worth a clear message rather than an
    attribute crash deep in the noise loop.
    """
    spec = mechanism_spec(mechanism_name)
    if spec.kind != "calibrated":
        raise ValueError(
            f"mechanism {mechanism_name!r} is a {spec.kind} entry, not a "
            "per-cell calibrated mechanism; execute it through "
            "repro.api.ReleaseSession.run"
        )
    return spec


def check_mechanism_mode(
    spec: MechanismSpec, mode: str, has_worker_attrs: bool
) -> None:
    """Reject mechanism/mode pairings without a privacy guarantee."""
    if mode == STRONG and has_worker_attrs and not spec.strong_worker_ok:
        raise ValueError(
            f"{spec.name} has no strong-mode guarantee for worker-attribute "
            "queries (Theorem 8.1 proves only the weak variant); use a "
            "smooth mechanism for the strong ablation"
        )


def _released_mask_and_xv(
    worker_full: WorkerFull,
    marginal: Marginal,
    workplace_part: Sequence[str],
    mode: str,
    has_worker_attrs: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-cell release mask and xv statistic.

    - released: the workplace part of the cell matches >= 1 establishment
      (establishment existence is public);
    - xv (weak mode, or no worker attrs): max jobs a single establishment
      contributes to the cell itself;
    - xv (strong mode with worker attrs — the ablation): max *total size*
      of any establishment matching the workplace part, since a strong
      α-neighbor may pour α·|e| same-attribute workers into one cell.
    """
    cell_index = marginal.cell_index(worker_full.table)
    stats = per_establishment_counts(
        cell_index, worker_full.establishment, marginal.n_cells
    )

    wp_marginal = Marginal(worker_full.table.schema, workplace_part)
    full_to_wp = marginal.project_onto(workplace_part)
    wp_cell_index = wp_marginal.cell_index(worker_full.table)
    wp_stats = per_establishment_counts(
        wp_cell_index, worker_full.establishment, wp_marginal.n_cells
    )
    released = wp_stats.n_establishments[full_to_wp] > 0

    if mode == STRONG and has_worker_attrs:
        sizes = worker_full.establishment_sizes()
        # One representative row per establishment gives its workplace cell.
        _, first_row = np.unique(worker_full.establishment, return_index=True)
        estab_wp_cell = wp_cell_index[first_row]
        estab_ids = worker_full.establishment[first_row]
        wp_max_size = np.zeros(wp_marginal.n_cells, dtype=np.int64)
        np.maximum.at(wp_max_size, estab_wp_cell, sizes[estab_ids])
        xv = wp_max_size[full_to_wp]
    else:
        xv = stats.max_single
    return released, xv


def compute_release_statistics(
    worker_full: WorkerFull,
    attrs: Sequence[str],
    worker_attrs: Collection[str] = DEFAULT_WORKER_ATTRS,
    mode: str | None = None,
) -> ReleaseStatistics:
    """The cacheable prologue of a release: marginal, mask and xv.

    ``mode=None`` picks strong privacy for establishment-only marginals
    and weak privacy when worker attributes are present (the paper's
    pairing).
    """
    schema = worker_full.table.schema
    marginal = Marginal(schema, attrs)
    mode = resolve_mode(attrs, worker_attrs, mode)
    has_worker_attrs = any(name in worker_attrs for name in attrs)
    workplace_part = tuple(name for name in attrs if name not in worker_attrs)

    true = marginal.counts(worker_full.table).astype(np.float64)
    released, xv = _released_mask_and_xv(
        worker_full, marginal, workplace_part, mode, has_worker_attrs
    )
    return ReleaseStatistics(
        marginal=marginal,
        mode=mode,
        has_worker_attrs=has_worker_attrs,
        workplace_part=workplace_part,
        true=true,
        released=released,
        xv=xv,
    )


def _trial_chunks(n_trials: int, batch_size: int | None) -> list[int]:
    """Chunk sizes whose sum is ``n_trials`` (one chunk when unbounded)."""
    if batch_size is None or batch_size >= n_trials:
        return [n_trials]
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    full, rest = divmod(n_trials, batch_size)
    return [batch_size] * full + ([rest] if rest else [])


def release_from_statistics(
    stats: ReleaseStatistics,
    mechanism_name: str,
    budget: MarginalBudget,
    seed=None,
    mechanism_options: dict | None = None,
    n_trials: int | None = None,
    trials_batch: int | None = None,
) -> MarginalRelease:
    """The randomized half of a release: draw noise for the released cells.

    For a fixed seed the noise stream is identical to the historical
    one-shot :func:`release_marginal` path (the generator is consumed by
    the same mechanism calls in the same order), so caching the
    statistics cannot change any published number.  ``trials_batch``
    caps how many of the ``n_trials`` rows share one vectorized draw —
    for the Laplace-based mechanisms the chunk boundaries do not change
    the stream (the matrix fills row-major from one generator).
    """
    spec = _calibrated_spec(mechanism_name)
    check_mechanism_mode(spec, stats.mode, stats.has_worker_attrs)
    mechanism = spec.create(budget.per_cell, **(mechanism_options or {}))
    rng = as_generator(seed)
    true, released, xv = stats.true, stats.released, stats.xv

    shape = (
        (stats.marginal.n_cells,)
        if n_trials is None
        else (n_trials, stats.marginal.n_cells)
    )
    noisy = np.zeros(shape, dtype=np.float64)
    if released.any():
        if n_trials is None:
            if spec.needs_xv:
                noisy[released] = mechanism.release_counts(
                    true[released], xv[released], rng
                )
            else:
                noisy[released] = mechanism.release_counts(true[released], rng)
        else:
            chunks = []
            for chunk in _trial_chunks(n_trials, trials_batch):
                if spec.needs_xv:
                    chunks.append(
                        mechanism.release_counts_batch(
                            true[released], xv[released], chunk, rng
                        )
                    )
                else:
                    chunks.append(
                        mechanism.release_counts_batch(true[released], chunk, rng)
                    )
            noisy[:, released] = (
                chunks[0] if len(chunks) == 1 else np.concatenate(chunks, axis=0)
            )
    return MarginalRelease(
        marginal=stats.marginal,
        true=true,
        noisy=noisy,
        released=released,
        max_single=xv,
        budget=budget,
        mechanism_name=mechanism_name,
    )


def _prepare_release(
    schema,
    attrs: Sequence[str],
    mechanism_name: str,
    params: EREEParams,
    worker_attrs: Collection[str],
    mode: str | None,
    budget_style: str,
    mechanism_options: dict | None,
):
    """Shared prologue of the stacked release: resolve the privacy mode,
    validate the mechanism/mode pairing, and build the marginal, budget
    and mechanism."""
    marginal = Marginal(schema, attrs)
    mode = resolve_mode(attrs, worker_attrs, mode)
    has_worker_attrs = any(name in worker_attrs for name in attrs)
    workplace_part = [name for name in attrs if name not in worker_attrs]

    spec = _calibrated_spec(mechanism_name)
    check_mechanism_mode(spec, mode, has_worker_attrs)

    budget = marginal_budget(
        params, schema, attrs, worker_attrs, mode, budget_style
    )
    mechanism = spec.create(budget.per_cell, **(mechanism_options or {}))
    return (
        marginal,
        mode,
        has_worker_attrs,
        workplace_part,
        budget,
        mechanism,
        spec,
    )


def release_marginal(
    worker_full: WorkerFull,
    attrs: Sequence[str],
    mechanism_name: str,
    params: EREEParams,
    worker_attrs: Collection[str] = DEFAULT_WORKER_ATTRS,
    mode: str | None = None,
    budget_style: str = MARGINAL,
    seed=None,
    mechanism_options: dict | None = None,
    n_trials: int | None = None,
) -> MarginalRelease:
    """Release the marginal over ``attrs`` with a named mechanism.

    .. deprecated::
        One-shot shim over :func:`compute_release_statistics` +
        :func:`release_from_statistics`; prefer
        :meth:`repro.api.ReleaseSession.run`, which executes the *same*
        noise stream (the equivalence tests pin this bit-for-bit) while
        caching the trial-invariant statistics and debiting the
        session's privacy ledger.

    ``mode=None`` picks strong privacy for establishment-only marginals
    and weak privacy when worker attributes are present (the paper's
    pairing).  Passing ``mode='strong'`` with worker attributes runs the
    strong-neighbor ablation (only meaningful for the smooth mechanisms).

    ``n_trials`` batches the release: the result's ``noisy`` becomes a
    ``(n_trials, n_cells)`` matrix of independent trials drawn in one
    vectorized RNG call (each trial is a full release of the same
    budget — batching is a Monte Carlo convenience, not composition).
    """
    stats = compute_release_statistics(worker_full, attrs, worker_attrs, mode)
    spec = _calibrated_spec(mechanism_name)
    check_mechanism_mode(spec, stats.mode, stats.has_worker_attrs)
    budget = marginal_budget(
        params, worker_full.table.schema, attrs, worker_attrs, stats.mode,
        budget_style,
    )
    return release_from_statistics(
        stats,
        mechanism_name,
        budget,
        seed=seed,
        mechanism_options=mechanism_options,
        n_trials=n_trials,
    )


def release_marginal_stack(
    worker_fulls: Sequence[WorkerFull],
    attrs: Sequence[str],
    mechanism_name: str,
    params: EREEParams,
    worker_attrs: Collection[str] = DEFAULT_WORKER_ATTRS,
    mode: str | None = None,
    budget_style: str = MARGINAL,
    seed=None,
    mechanism_options: dict | None = None,
) -> list[MarginalRelease]:
    """Release the same marginal over a stack of snapshots in one draw.

    The snapshots (e.g. the years of a :class:`repro.data.panel.LODESPanel`)
    share one schema and marginal; their true counts and xv statistics
    stack into ``(n_snapshots, n_cells)`` matrices and the whole stack's
    noise is a single vectorized mechanism call instead of one RNG draw
    per snapshot.  Each snapshot is still an independent full-budget
    release — stacking batches the randomness, it does not compose
    budgets.  Returns one :class:`MarginalRelease` per snapshot.
    """
    if not worker_fulls:
        return []
    rng = as_generator(seed)
    schema = worker_fulls[0].table.schema
    marginal, mode, has_worker_attrs, workplace_part, budget, mechanism, spec = (
        _prepare_release(
            schema, attrs, mechanism_name, params, worker_attrs, mode,
            budget_style, mechanism_options,
        )
    )

    trues, releaseds, xvs = [], [], []
    for worker_full in worker_fulls:
        if worker_full.table.schema != schema:
            raise ValueError("all snapshots must share one schema")
        trues.append(marginal.counts(worker_full.table).astype(np.float64))
        released, xv = _released_mask_and_xv(
            worker_full, marginal, workplace_part, mode, has_worker_attrs
        )
        releaseds.append(released)
        xvs.append(xv)
    true_stack = np.stack(trues)
    released_stack = np.stack(releaseds)
    xv_stack = np.stack(xvs)

    # One draw covers every (snapshot, cell); suppressed cells discard
    # their (independent) noise afterwards, which leaves the released
    # cells' distribution untouched.
    if spec.needs_xv:
        noisy_stack = mechanism.release_counts_batch(true_stack, xv_stack, 1, rng)
    else:
        noisy_stack = mechanism.release_counts_batch(true_stack, 1, rng)
    noisy_stack = np.where(released_stack, noisy_stack, 0.0)

    return [
        MarginalRelease(
            marginal=marginal,
            true=true_stack[i],
            noisy=noisy_stack[i],
            released=released_stack[i],
            max_single=xv_stack[i],
            budget=budget,
            mechanism_name=mechanism_name,
        )
        for i in range(len(worker_fulls))
    ]
