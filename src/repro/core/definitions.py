"""Table 1: which privacy definitions satisfy which requirements.

The paper's Table 1 summarizes Sections 5–7: input noise infusion meets
none of the formal requirements; differential privacy over individuals
(edge DP) meets only the employee requirement; differential privacy over
establishments (node DP) and (α, ε)-ER-EE privacy meet all three; weak
(α, ε)-ER-EE privacy meets the size requirement only against weak
adversaries.  Encoded here so the claim matrix is testable and printable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Satisfies(enum.Enum):
    """Whether a definition meets a requirement."""

    NO = "No"
    YES = "Yes"
    WEAK_ADVERSARIES = "Yes*"  # only against weak adversaries (Θ_weak)

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class PrivacyDefinition:
    """A row of Table 1."""

    name: str
    section: str
    individuals: Satisfies
    employer_size: Satisfies
    employer_shape: Satisfies
    notes: str = ""


PRIVACY_DEFINITIONS: tuple[PrivacyDefinition, ...] = (
    PrivacyDefinition(
        name="Input Noise Infusion",
        section="Sec 5",
        individuals=Satisfies.NO,
        employer_size=Satisfies.NO,
        employer_shape=Satisfies.NO,
        notes="avoids exact disclosure only; Sec 5.2 attacks break all three",
    ),
    PrivacyDefinition(
        name="Differential Privacy (individuals)",
        section="Sec 6",
        individuals=Satisfies.YES,
        employer_size=Satisfies.NO,
        employer_shape=Satisfies.NO,
        notes="edge DP on the bipartite job graph; Lap(1/eps) reveals sizes",
    ),
    PrivacyDefinition(
        name="Differential Privacy (establishments)",
        section="Sec 6",
        individuals=Satisfies.YES,
        employer_size=Satisfies.YES,
        employer_shape=Satisfies.YES,
        notes="node DP; unbounded sensitivity forces truncation and poor utility",
    ),
    PrivacyDefinition(
        name="ER-EE-privacy",
        section="Sec 7",
        individuals=Satisfies.YES,
        employer_size=Satisfies.YES,
        employer_shape=Satisfies.YES,
        notes="(alpha, eps)-ER-EE privacy, Definition 7.2 (Theorem 7.1)",
    ),
    PrivacyDefinition(
        name="Weak ER-EE privacy",
        section="Sec 7",
        individuals=Satisfies.YES,
        employer_size=Satisfies.WEAK_ADVERSARIES,
        employer_shape=Satisfies.YES,
        notes="Definition 7.4; size requirement holds for weak adversaries "
        "(Theorem 7.2)",
    ),
)


def table1_rows() -> list[list[str]]:
    """Table 1 as printable rows (name, individuals, size, shape)."""
    return [
        [
            definition.name,
            str(definition.individuals),
            str(definition.employer_size),
            str(definition.employer_shape),
        ]
        for definition in PRIVACY_DEFINITIONS
    ]
