"""Extended smooth-sensitivity framework (Sec 8.2 of the paper).

Local sensitivity of a count under α-neighbors depends on the data: if
``xv`` is the largest number of workers a single establishment contributes
to the cell, one neighbor step can change the count by up to
``max(xv·α, 1)`` (Lemma 8.5).  Adding noise scaled to *local* sensitivity
is not private by itself, so Nissim et al.'s smooth-sensitivity upper
bound is used; Lemma 8.5 shows that for these count queries the local
sensitivity is already b-smooth whenever ``exp(b) >= 1 + α`` (and the
smooth bound is infinite otherwise).

Noise comes from an *(a, b)-admissible* distribution (Definition 8.3 —
the paper's flexible-budget-split generalization of [38]):

- the heavy-tailed ``h(z) ∝ 1/(1 + z^4)`` is (ε1/5, ε2/5)-admissible for
  any split ε1 + ε2 <= ε with δ = 0 (Lemma 8.6 with γ = 4);
- Laplace(1) is (ε/2, ε/(2 ln(1/δ)))-admissible with failure δ
  (Lemma 9.1).

Theorem 8.4: releasing ``q(x) + S(x)/a · Z`` with Z admissible and S a
b-smooth upper bound on local sensitivity is (α, ε)-ER-EE private.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.util import as_generator, check_fraction, check_positive

# Normalizing constant of 1/(1+z^4) over the real line: ∫ dz/(1+z^4) = π/√2.
GAMMA4_NORMALIZER = math.pi / math.sqrt(2.0)

# E|Z| for the normalized density (√2/π)/(1+z^4): (π/2)/(π/√2) = 1/√2.
# (Lemma 8.8 quotes π/2, the unnormalized integral; the normalized value
# is what the error actually scales with.)
GAMMA4_EXPECTED_ABS = 1.0 / math.sqrt(2.0)

# Rejection bound: max over z of (1+z²)/(1+z⁴) = (1+√2)/2 at z² = √2 - 1.
_REJECTION_BOUND = (1.0 + math.sqrt(2.0)) / 2.0

# Exact acceptance probability of the Cauchy-proposal rejection sampler:
# E[(1+Z²)/((1+Z⁴)·B)] under the Cauchy = (π/√2)/(π·B) = 2 - √2 ≈ 0.5858.
GAMMA4_ACCEPT_RATE = 2.0 - math.sqrt(2.0)


def smooth_envelope(
    max_single: np.ndarray, alpha: float, out: np.ndarray | None = None
) -> np.ndarray:
    """The smooth-sensitivity envelope ``max(xv·α, 1)`` as one kernel.

    The single vectorized pass behind every smooth-sensitivity value in
    the library: two ufunc calls (a multiply and an in-place maximum),
    no intermediate beyond the output buffer, no per-point Python.  Both
    the per-point release path (:func:`smooth_sensitivity_of_counts`,
    which adds the Lemma 8.5 b-check) and the sweep engine's per-α
    envelope cache (:meth:`repro.engine.points.WorkloadStatistics.envelope`)
    call this, so the two paths can never drift apart numerically.

    ``out`` reuses a caller-owned buffer of ``max_single``'s shape.
    Note the envelope itself is mechanism-free — the dilation-radius
    feasibility check belongs to the mechanism's b, not to S*.
    """
    check_positive("alpha", alpha)
    max_single = np.asarray(max_single, dtype=np.float64)
    scaled = np.multiply(max_single, alpha, out=out)
    return np.maximum(scaled, 1.0, out=scaled)


def smooth_sensitivity_of_counts(
    max_single: np.ndarray, alpha: float, b: float
) -> np.ndarray:
    """Per-cell b-smooth sensitivity ``S* = max(xv·α, 1)`` (Lemma 8.5).

    ``max_single`` holds ``xv`` per cell: the largest count any single
    establishment contributes to the cell.  Raises when ``exp(b) < 1+α``,
    where the smooth sensitivity is unbounded and no finite noise scale is
    private.
    """
    check_positive("alpha", alpha)
    if math.exp(b) < (1.0 + alpha) * (1.0 - 1e-12):
        raise ValueError(
            f"smooth sensitivity is unbounded: exp(b)={math.exp(b):.6g} < "
            f"1+alpha={1 + alpha:.6g} (Lemma 8.5)"
        )
    return smooth_envelope(max_single, alpha)


def gamma4_density(z: np.ndarray) -> np.ndarray:
    """Normalized density h(z) = (√2/π) / (1 + z⁴)."""
    z = np.asarray(z, dtype=np.float64)
    z2 = z * z
    return 1.0 / (GAMMA4_NORMALIZER * (1.0 + z2 * z2))


def sample_gamma4(size, seed=None) -> np.ndarray:
    """Draw from h(z) ∝ 1/(1 + z⁴) by rejection from a standard Cauchy.

    The ratio of the target to the Cauchy proposal is proportional to
    ``(1+z²)/(1+z⁴)``, maximized at ``z² = √2 - 1`` with value (1+√2)/2,
    giving acceptance probability ≈ 0.586 per proposal.

    ``size`` may be an int or a shape tuple such as ``(n_trials, n_cells)``;
    the whole batch is filled from one rejection stream, so a matrix draw
    costs the same randomness as the equivalent flat draw.
    """
    rng = as_generator(seed)
    shape = (size,) if np.isscalar(size) else tuple(size)
    total = int(np.prod(shape)) if shape else 1
    out = np.empty(total, dtype=np.float64)
    filled = 0
    while filled < total:
        need = total - filled
        # Draw ~1.8x the need so most batches finish in one round.
        batch = max(32, int(need / 0.55) + 8)
        z = rng.standard_cauchy(batch)
        # Explicit multiplies: np.power's generic pow is ~50x slower than
        # two multiplications on this hot path.
        z2 = z * z
        z4 = z2 * z2
        accept_probability = (1.0 + z2) / ((1.0 + z4) * _REJECTION_BOUND)
        accepted = z[rng.random(batch) < accept_probability]
        take = min(len(accepted), need)
        out[filled : filled + take] = accepted[:take]
        filled += take
    return out.reshape(shape)


def _gamma4_round_size(need: int) -> int:
    """Proposals for one rejection round sized so the round almost
    always yields ``need`` acceptances: the mean need/p plus four
    binomial standard deviations (shortfall probability ~3e-5)."""
    p = GAMMA4_ACCEPT_RATE
    return int(need / p + 4.0 * math.sqrt(need * (1.0 - p)) / p) + 16


def sample_gamma4_fast(size, seed=None) -> np.ndarray:
    """Draw from h(z) ∝ 1/(1 + z⁴): same rejection scheme as
    :func:`sample_gamma4`, restructured for throughput.

    Two changes, neither affecting exactness: the Cauchy proposals come
    from one inverse-CDF transform ``tan(π(u - ½))`` of a single
    ``rng.random((2, m))`` block (one RNG call per round instead of two),
    and the round is sized from the exact acceptance rate 2 - √2 with a
    ~4σ margin so nearly every draw completes in a single round, with a
    short tail fill for the rare shortfall.

    The output distribution is identical to :func:`sample_gamma4` but the
    bit *stream* is not — callers pinning byte-identical releases (the
    default sweep path) must keep using :func:`sample_gamma4`; the fused
    sweep path, whose streams are new by construction, uses this one.
    """
    rng = as_generator(seed)
    shape = (size,) if np.isscalar(size) else tuple(size)
    total = int(np.prod(shape)) if shape else 1
    out = np.empty(total, dtype=np.float64)
    filled = 0
    while filled < total:
        m = _gamma4_round_size(total - filled)
        u = rng.random((2, m))
        z = np.tan(np.pi * (u[0] - 0.5))
        z2 = z * z
        z4 = z2 * z2
        accepted = z[u[1] * ((1.0 + z4) * _REJECTION_BOUND) < (1.0 + z2)]
        take = min(len(accepted), total - filled)
        out[filled : filled + take] = accepted[:take]
        filled += take
    return out.reshape(shape)


def gamma4_quantile(p: float) -> float:
    """Numeric inverse CDF of the normalized h (bisection; tests/analysis)."""
    check_fraction("p", p)
    if abs(p - 0.5) < 1e-15:
        return 0.0

    def cdf(x: float) -> float:
        # CDF via the closed-form antiderivative of 1/(1+z^4).
        return 0.5 + _gamma4_signed_integral(x) / GAMMA4_NORMALIZER

    low, high = -1e8, 1e8
    for _ in range(200):
        mid = (low + high) / 2.0
        if cdf(mid) < p:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


def _gamma4_signed_integral(x: float) -> float:
    """∫_0^x dz/(1+z⁴), odd in x (closed form with atan and log)."""
    sign = 1.0 if x >= 0 else -1.0
    x = abs(x)
    r2 = math.sqrt(2.0)
    # Standard antiderivative; the atan term is written with atan2 to stay
    # continuous across x = 1.
    log_term = math.log((x * x + r2 * x + 1.0) / (x * x - r2 * x + 1.0))
    atan_term = math.atan2(r2 * x, 1.0 - x * x)
    return sign * (log_term + 2.0 * atan_term) / (4.0 * r2)


@dataclass(frozen=True)
class GammaAdmissible:
    """The (ε1/(1+γ), ε2/(1+γ))-admissible heavy-tailed noise (Lemma 8.6).

    Only γ = 4 guarantees finite mean and variance among small even
    integer exponents, and it is the paper's choice; other γ > 2 values
    are allowed for experimentation (mean exists for γ > 2).
    """

    epsilon1: float
    epsilon2: float
    gamma: float = 4.0

    def __post_init__(self):
        check_positive("epsilon1", self.epsilon1)
        check_positive("epsilon2", self.epsilon2)
        if self.gamma <= 2.0:
            raise ValueError(
                f"gamma must exceed 2 for finite expected error, got {self.gamma}"
            )

    @property
    def a(self) -> float:
        """Sliding radius: noise scaled by S/a tolerates |Δ| <= a shifts."""
        return self.epsilon1 / (1.0 + self.gamma)

    @property
    def b(self) -> float:
        """Dilation radius: the smoothing parameter the scale may vary by."""
        return self.epsilon2 / (1.0 + self.gamma)

    @property
    def delta(self) -> float:
        return 0.0

    def sample(self, size, seed=None) -> np.ndarray:
        """Unit noise of shape ``size`` (int or tuple) from one stream."""
        if self.gamma != 4.0:
            raise NotImplementedError("sampling implemented for gamma = 4 only")
        return sample_gamma4(size, seed)

    def expected_abs(self) -> float:
        if self.gamma != 4.0:
            raise NotImplementedError("moments implemented for gamma = 4 only")
        return GAMMA4_EXPECTED_ABS


@dataclass(frozen=True)
class LaplaceAdmissible:
    """Laplace(1): (ε/2, ε/(2 ln(1/δ)))-admissible with failure δ (Lemma 9.1)."""

    epsilon: float
    delta: float

    def __post_init__(self):
        check_positive("epsilon", self.epsilon)
        check_fraction("delta", self.delta)

    @property
    def a(self) -> float:
        return self.epsilon / 2.0

    @property
    def b(self) -> float:
        return self.epsilon / (2.0 * math.log(1.0 / self.delta))

    def sample(self, size, seed=None) -> np.ndarray:
        rng = as_generator(seed)
        return rng.laplace(0.0, 1.0, size=size)

    def expected_abs(self) -> float:
        return 1.0


def add_smooth_noise(
    counts: np.ndarray,
    smooth_sensitivity: np.ndarray,
    distribution,
    seed=None,
) -> np.ndarray:
    """Theorem 8.4 release: ``q(x) + S(x)/a · Z`` per cell.

    ``distribution`` is an admissible distribution exposing ``a`` and
    ``sample``; ``smooth_sensitivity`` must be a b-smooth upper bound for
    the distribution's dilation radius ``b``.
    """
    counts = np.asarray(counts, dtype=np.float64)
    smooth_sensitivity = np.asarray(smooth_sensitivity, dtype=np.float64)
    noise = distribution.sample(counts.size, seed).reshape(counts.shape)
    return counts + smooth_sensitivity / distribution.a * noise


def add_smooth_noise_batch(
    counts: np.ndarray,
    smooth_sensitivity: np.ndarray,
    distribution,
    n_trials: int = 1,
    seed=None,
) -> np.ndarray:
    """Batched Theorem 8.4 release: a ``(n_trials, n_cells)`` noise matrix
    from a single vectorized draw of the admissible distribution.

    ``counts`` and ``smooth_sensitivity`` are per-cell vectors (broadcast
    across trials) or ``(k, n_cells)`` stacks of distinct truths (e.g. the
    years of a panel); in the stacked case ``n_trials`` must broadcast with
    the leading axis.  The noise matrix is one ``distribution.sample``
    call, so the bit stream matches ``n_trials`` successive per-trial draws
    for distributions sampled by inversion (Laplace).
    """
    counts = np.asarray(counts, dtype=np.float64)
    smooth_sensitivity = np.asarray(smooth_sensitivity, dtype=np.float64)
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    shape = np.broadcast_shapes(
        counts.shape, smooth_sensitivity.shape, (n_trials, counts.shape[-1])
    )
    noise = distribution.sample(shape, seed)
    return counts + smooth_sensitivity / distribution.a * noise
