"""Strong and weak α-neighbor relations (Definitions 7.1 and 7.3).

Two ER-EE tables are neighbors when they differ in the employment of
exactly one establishment ``e``:

- **strong** (Def 7.1): the smaller workforce is a subset of the larger,
  and ``|E| <= |E'| <= max((1+α)|E|, |E|+1)``;
- **weak** (Def 7.3): for *every* 0/1 property φ of a worker record,
  ``φ(E) <= φ(E') <= max((1+α)φ(E), φ(E)+1)`` — i.e. every attribute
  class of the workforce grows at most proportionally.

For verification we represent a tiny ER-EE table as a mapping from
establishment id to the tuple of its workers' attribute-value tuples
(worker identity beyond the attribute values does not matter for the
counting queries, and subset relations are interpreted as multiset
containment of attribute tuples).

The relations induce a metric over databases (Sec 7.2);
:func:`alpha_step_distance` computes the single-establishment distance
used in the Bayes-factor semantics ``ε · k`` of Equation 8.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Mapping, Sequence
from itertools import combinations

TinyTable = Mapping[object, Sequence[tuple]]


def _workforce_counter(workers: Sequence[tuple]) -> Counter:
    return Counter(tuple(w) for w in workers)


def _grows_within_alpha(count: int, grown: int, alpha: float) -> bool:
    """Check count <= grown <= max((1+α)·count, count + 1)."""
    if grown < count:
        return False
    upper = max((1.0 + alpha) * count, count + 1.0)
    return grown <= math.ceil(upper - 1e-9)


def _differing_establishment(d1: TinyTable, d2: TinyTable):
    """The unique establishment whose workforce differs, or None.

    Returns ``(estab, workers1, workers2)``; raises if the tables differ
    in more than one establishment or in the establishment universe
    (neighboring tables never differ in establishment existence or in
    public workplace attributes — those are public).
    """
    if set(d1) != set(d2):
        raise ValueError("neighboring tables must share the establishment universe")
    differing = [
        e
        for e in d1
        if _workforce_counter(d1[e]) != _workforce_counter(d2[e])
    ]
    if len(differing) != 1:
        return None
    e = differing[0]
    return e, d1[e], d2[e]


def is_strong_alpha_neighbor(d1: TinyTable, d2: TinyTable, alpha: float) -> bool:
    """Definition 7.1, symmetric in its arguments.

    True iff exactly one establishment differs, the smaller workforce is a
    sub-multiset of the larger, and the size growth is within the α band.
    """
    diff = _differing_establishment(d1, d2)
    if diff is None:
        return False
    _, w1, w2 = diff
    small, large = (w1, w2) if len(w1) <= len(w2) else (w2, w1)
    c_small, c_large = _workforce_counter(small), _workforce_counter(large)
    if any(c_small[key] > c_large[key] for key in c_small):
        return False
    return _grows_within_alpha(len(small), len(large), alpha)


def is_weak_alpha_neighbor(d1: TinyTable, d2: TinyTable, alpha: float) -> bool:
    """Definition 7.3, symmetric in its arguments.

    Checks the φ-growth condition for every property φ of a worker
    record.  It suffices to check φ ranging over unions of the attribute
    value classes present in either workforce (any other φ induces the
    same counts), which is exponential in the number of distinct classes
    — fine for the tiny tables this checker is meant for.
    """
    diff = _differing_establishment(d1, d2)
    if diff is None:
        return False
    _, w1, w2 = diff
    small, large = (w1, w2) if len(w1) <= len(w2) else (w2, w1)
    c_small, c_large = _workforce_counter(small), _workforce_counter(large)
    classes = sorted(set(c_small) | set(c_large))
    if len(classes) > 20:
        raise ValueError(
            f"weak-neighbor check enumerates 2^{len(classes)} properties; "
            "use smaller verification tables"
        )
    for r in range(1, len(classes) + 1):
        for subset in combinations(classes, r):
            phi_small = sum(c_small[key] for key in subset)
            phi_large = sum(c_large[key] for key in subset)
            if not _grows_within_alpha(phi_small, phi_large, alpha):
                return False
    return True


def alpha_step_distance(x: int, y: int, alpha: float) -> int:
    """Length of the shortest α-neighbor chain between establishment sizes.

    One step grows a size ``c`` to at most ``max((1+α)·c, c+1)`` (or
    shrinks symmetrically).  The distance bounds the attacker's Bayes
    factor by ``ε·d`` (Equation 8); sizes within one (1+α) factor are at
    distance 1.
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if x < 0 or y < 0:
        raise ValueError("sizes must be non-negative")
    low, high = (x, y) if x <= y else (y, x)
    if low == high:
        return 0
    steps = 0
    current = float(low)
    while current < high:
        current = max((1.0 + alpha) * current, current + 1.0)
        # Sizes are integers, so a step reaches the floor of the bound.
        current = math.floor(current + 1e-9)
        steps += 1
    return steps
