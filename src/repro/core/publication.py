"""Publication suites: an agency's full release under one budget.

Sec 3.2 of the paper: analysts pose *sets* of marginal queries, and the
privacy of the set follows from composition (Theorem 2.1 / 7.3).  This
module models the workflow end to end: declare the products (marginals)
of an annual publication, assign each a share of the total (α, ε, δ)
budget, and release them all against one snapshot with the accountant
enforcing the bound.

This is the shape of an actual LODES/QWI publication: several geographic
and demographic cuts of the same quarter released together.
"""

from __future__ import annotations

from collections.abc import Collection, Sequence
from dataclasses import dataclass, field

from repro.core.composition import MARGINAL, EREEAccountant
from repro.core.params import EREEParams
from repro.core.release import (
    DEFAULT_WORKER_ATTRS,
    MarginalRelease,
    release_marginal,
)
from repro.db.join import WorkerFull
from repro.util import as_generator, check_positive


@dataclass(frozen=True)
class Product:
    """One published table: a named marginal with a budget share.

    ``budget_share`` is relative; shares are normalized over the suite.
    ``budget_style`` follows :mod:`repro.core.composition`.
    """

    name: str
    attrs: tuple[str, ...]
    budget_share: float = 1.0
    budget_style: str = MARGINAL

    def __post_init__(self):
        check_positive("budget_share", self.budget_share)
        if not self.attrs:
            raise ValueError(f"product {self.name!r} needs at least one attribute")


@dataclass(frozen=True)
class PublicationResult:
    """All releases of a suite plus the accountant's final state."""

    releases: dict[str, MarginalRelease]
    spent_epsilon: float
    spent_delta: float

    def __getitem__(self, name: str) -> MarginalRelease:
        return self.releases[name]


@dataclass
class PublicationSuite:
    """A set of products released together under one total budget.

    The suite charges each product's *total* (ε, δ) sequentially
    (distinct marginals over the same snapshot touch the same
    establishments, so parallel composition does not apply across
    products).  Products with worker attributes are released in weak
    mode with the d·ε split; establishment-only products use strong mode.
    """

    params: EREEParams
    mechanism_name: str = "smooth-laplace"
    worker_attrs: Collection[str] = DEFAULT_WORKER_ATTRS
    products: list[Product] = field(default_factory=list)

    def add_product(
        self,
        name: str,
        attrs: Sequence[str],
        budget_share: float = 1.0,
        budget_style: str = MARGINAL,
    ) -> "PublicationSuite":
        """Register a product; returns self for chaining."""
        if any(existing.name == name for existing in self.products):
            raise ValueError(f"duplicate product name {name!r}")
        self.products.append(
            Product(
                name=name,
                attrs=tuple(attrs),
                budget_share=budget_share,
                budget_style=budget_style,
            )
        )
        return self

    def product_params(self) -> dict[str, EREEParams]:
        """The per-product (α, ε, δ) implied by the normalized shares.

        δ is interpreted per released count (as everywhere in this
        library), so each product inherits the suite δ unchanged.
        """
        if not self.products:
            raise ValueError("the suite has no products")
        total_share = sum(product.budget_share for product in self.products)
        return {
            product.name: self.params.with_epsilon(
                self.params.epsilon * product.budget_share / total_share
            )
            for product in self.products
        }

    def release(self, worker_full: WorkerFull, seed=None) -> PublicationResult:
        """Release every product; the accountant enforces the total budget."""
        rng = as_generator(seed)
        per_product = self.product_params()
        accountant = EREEAccountant(
            EREEParams(
                self.params.alpha,
                self.params.epsilon * (1 + 1e-9),  # tolerance for float shares
                1.0 - 1e-12 if self.params.delta > 0 else 0.0,
            ),
            mode="weak",
        )
        schema = worker_full.table.schema
        releases: dict[str, MarginalRelease] = {}
        for product in self.products:
            product_params = per_product[product.name]
            release = release_marginal(
                worker_full,
                product.attrs,
                self.mechanism_name,
                product_params,
                worker_attrs=self.worker_attrs,
                budget_style=product.budget_style,
                seed=rng,
            )
            accountant.charge_marginal(
                schema,
                product.attrs,
                self.worker_attrs,
                product_params,
                product.budget_style,
            )
            releases[product.name] = release
        spent = accountant.spent()
        return PublicationResult(
            releases=releases,
            spent_epsilon=spent.epsilon,
            spent_delta=spent.delta,
        )


def qwi_style_suite(params: EREEParams, mechanism_name: str = "smooth-laplace") -> PublicationSuite:
    """A representative LODES/QWI-like annual publication.

    Four products: the headline place-level industry table (half the
    budget), a county rollup, a sex × education cut, and the per-place
    totals used by OnTheMap.
    """
    suite = PublicationSuite(params=params, mechanism_name=mechanism_name)
    suite.add_product(
        "place-industry-ownership", ("place", "naics", "ownership"), budget_share=0.4
    )
    suite.add_product(
        "county-industry-ownership", ("county", "naics", "ownership"), budget_share=0.2
    )
    suite.add_product(
        "place-sex-education",
        ("place", "naics", "ownership", "sex", "education"),
        budget_share=0.3,
    )
    suite.add_product("place-totals", ("place",), budget_share=0.1)
    return suite
