"""Privacy parameters for (α, ε[, δ])-ER-EE privacy and feasibility rules.

α is the establishment-size protection factor: an informed attacker must
not distinguish establishment sizes within a multiplicative (1+α) band
(Definition 4.2).  ε is the privacy-loss budget (the log Bayes-factor
bound), δ the optional failure probability of Definition 9.1.

Feasibility constraints from the algorithms:

- Smooth Gamma (Alg 2) needs ε1 = ε - 5·ln(1+α) > 0, i.e.
  ``α + 1 < exp(ε/5)``;
- Smooth Laplace (Alg 3) needs ``α + 1 <= exp(ε / (2 ln(1/δ)))``, i.e.
  ``ε >= 2 ln(1/δ) ln(1+α)`` — the Table 2 minimum-ε rule;
- Log-Laplace has bounded expectation only for λ = 2 ln(1+α)/ε < 1 and a
  bounded relative-error guarantee for λ < 1/2 (Lemma 8.2, Theorem 8.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util import check_positive


@dataclass(frozen=True)
class EREEParams:
    """(α, ε, δ) privacy parameters.

    ``alpha > 0`` is the size-protection factor; ``epsilon > 0`` the
    privacy-loss budget; ``delta`` in [0, 1) the failure probability
    (0 for the pure Definition 7.2/7.4 guarantees).
    """

    alpha: float
    epsilon: float
    delta: float = 0.0

    def __post_init__(self):
        check_positive("alpha", self.alpha)
        check_positive("epsilon", self.epsilon)
        if not (0.0 <= self.delta < 1.0):
            raise ValueError(f"delta must lie in [0, 1), got {self.delta}")

    def with_epsilon(self, epsilon: float) -> "EREEParams":
        return EREEParams(self.alpha, epsilon, self.delta)

    def log_laplace_scale(self) -> float:
        """λ = 2·ln(1+α)/ε, the Algorithm 1 Laplace scale on the log count."""
        return 2.0 * math.log1p(self.alpha) / self.epsilon

    def allows_smooth_gamma(self) -> bool:
        """Algorithm 2 requires α + 1 < exp(ε/5)."""
        return self.alpha + 1.0 < math.exp(self.epsilon / 5.0)

    def allows_smooth_laplace(self) -> bool:
        """Algorithm 3 requires δ > 0 and α + 1 <= exp(ε / (2 ln(1/δ)))."""
        if self.delta <= 0.0:
            return False
        return self.epsilon >= min_epsilon(self.alpha, self.delta) - 1e-12

    def log_laplace_has_bounded_mean(self) -> bool:
        """Lemma 8.2: the Log-Laplace output has finite expectation iff λ < 1."""
        return self.log_laplace_scale() < 1.0

    def log_laplace_has_bounded_relative_error(self) -> bool:
        """Theorem 8.3's squared-relative-error bound applies iff λ < 1/2."""
        return self.log_laplace_scale() < 0.5


def min_epsilon(alpha: float, delta: float) -> float:
    """Minimum ε for Smooth Laplace at (α, δ): ε = 2·ln(1/δ)·ln(1+α).

    This solves Algorithm 3's constraint ``α + 1 <= exp(ε/(2 ln(1/δ)))``
    with equality — the optimal δ/ε trade described after Lemma 9.3 and
    tabulated in the paper's Table 2.  (The published table's δ = .05
    column is internally consistent with δ ≈ .005 instead; see
    EXPERIMENTS.md for the entry-by-entry comparison.)
    """
    check_positive("alpha", alpha)
    if not (0.0 < delta < 1.0):
        raise ValueError(f"delta must lie in (0, 1), got {delta}")
    return 2.0 * math.log(1.0 / delta) * math.log1p(alpha)


def max_alpha(epsilon: float, delta: float | None = None) -> float:
    """Largest feasible α at a given ε.

    For Smooth Gamma (``delta is None``): α < exp(ε/5) - 1.
    For Smooth Laplace: α <= exp(ε/(2 ln(1/δ))) - 1.
    """
    check_positive("epsilon", epsilon)
    if delta is None:
        return math.exp(epsilon / 5.0) - 1.0
    if not (0.0 < delta < 1.0):
        raise ValueError(f"delta must lie in (0, 1), got {delta}")
    return math.exp(epsilon / (2.0 * math.log(1.0 / delta))) - 1.0
