"""ER-EE privacy composition (Theorems 7.3–7.5) and marginal budgeting.

Sequential composition is inherited from Pufferfish: ε (and δ) add.
Parallel composition is subtler than in record-level DP:

- releases on record sets from **distinct establishments** parallel-
  compose for both the strong and weak definitions (Theorem 7.4);
- releases on **distinct workers from the same establishments** (e.g.
  the male and the female counts of one workplace cell) parallel-compose
  under the *strong* definition but **not** under the weak one
  (Theorem 7.5) — weak neighbors may change every attribute class of one
  establishment simultaneously.

Consequently a marginal that includes worker attributes, released cell by
cell under weak privacy, costs ``d · ε_cell`` where ``d`` is the worker-
attribute domain size of the marginal (Sec 8); to hit a total budget ε
each cell gets ε/d.  Marginals over establishment attributes only, and
*all* marginals under the strong definition, parallel-compose to the
per-cell ε.
"""

from __future__ import annotations

from collections.abc import Collection, Sequence
from dataclasses import dataclass
from math import prod

from repro.core.params import EREEParams
from repro.db.schema import Schema
from repro.dp.composition import PrivacyAccountant, PrivacySpent

STRONG = "strong"
WEAK = "weak"

MARGINAL = "marginal"
SINGLE_QUERY = "single-query"


def worker_domain_size(
    schema: Schema, attrs: Sequence[str], worker_attrs: Collection[str]
) -> int:
    """|dom(V_I)| — the worker-attribute domain size of a marginal."""
    members = [name for name in attrs if name in worker_attrs]
    return prod(schema[name].size for name in members) if members else 1


@dataclass(frozen=True)
class MarginalBudget:
    """How a total (ε, δ) budget maps to per-cell mechanism parameters."""

    per_cell: EREEParams
    total: EREEParams
    mode: str
    worker_domain: int

    @property
    def split_factor(self) -> int:
        """How many sequential compositions the budget was divided by."""
        return round(self.total.epsilon / self.per_cell.epsilon)


def marginal_budget(
    params: EREEParams,
    schema: Schema,
    attrs: Sequence[str],
    worker_attrs: Collection[str],
    mode: str,
    budget_style: str = MARGINAL,
) -> MarginalBudget:
    """Per-cell privacy parameters for releasing a whole marginal.

    ``budget_style=SINGLE_QUERY`` models the paper's Workload 2: each cell
    is released as an independent single query at the full (ε, δ), and the
    *total* loss is d·ε for weak worker-attribute releases (reported, not
    divided).

    δ is interpreted per released count, matching the paper's evaluation
    ("we report results for pairs of (α, ε) that are possible for a high
    failure probability of δ = 0.05"): when ε is split over the d worker
    cells, each cell keeps the full δ and the composed total δ is d·δ.
    """
    if mode not in (STRONG, WEAK):
        raise ValueError(f"mode must be {STRONG!r} or {WEAK!r}, got {mode!r}")
    if budget_style not in (MARGINAL, SINGLE_QUERY):
        raise ValueError(
            f"budget_style must be {MARGINAL!r} or {SINGLE_QUERY!r}, "
            f"got {budget_style!r}"
        )
    d = worker_domain_size(schema, attrs, worker_attrs)
    needs_split = mode == WEAK and d > 1
    total_delta = min(params.delta * d, 1.0 - 1e-12) if needs_split else params.delta

    if budget_style == SINGLE_QUERY:
        per_cell = params
        total = (
            EREEParams(params.alpha, params.epsilon * d, total_delta)
            if needs_split
            else params
        )
    elif needs_split:
        per_cell = EREEParams(params.alpha, params.epsilon / d, params.delta)
        total = EREEParams(params.alpha, params.epsilon, total_delta)
    else:
        per_cell = params
        total = params
    return MarginalBudget(
        per_cell=per_cell, total=total, mode=mode, worker_domain=d
    )


@dataclass
class EREEAccountant:
    """Budget tracking across multiple marginal releases (Thms 7.3–7.5).

    Marginals over disjoint establishment sets could parallel-compose,
    but distinct marginals over the same snapshot generally touch the
    same establishments, so the accountant charges sequentially: the sum
    over releases of each release's *total* (ε, δ).
    """

    params: EREEParams
    mode: str = STRONG

    def __post_init__(self):
        if self.mode not in (STRONG, WEAK):
            raise ValueError(f"mode must be {STRONG!r} or {WEAK!r}")
        self._accountant = PrivacyAccountant(
            epsilon_budget=self.params.epsilon, delta_budget=self.params.delta
        )

    def spent(self) -> PrivacySpent:
        return self._accountant.spent()

    def remaining(self) -> PrivacySpent:
        return self._accountant.remaining()

    def charge_marginal(
        self,
        schema: Schema,
        attrs: Sequence[str],
        worker_attrs: Collection[str],
        per_release_params: EREEParams,
        budget_style: str = MARGINAL,
    ) -> MarginalBudget:
        """Charge one marginal release; returns the per-cell budget to use."""
        budget = marginal_budget(
            per_release_params, schema, attrs, worker_attrs, self.mode, budget_style
        )
        self._accountant.charge(budget.total.epsilon, budget.total.delta)
        return budget
