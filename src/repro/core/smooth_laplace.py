"""Algorithm 3: the Smooth Laplace mechanism ((α, ε, δ)-ER-EE private).

Uses the Laplace(1) admissible distribution of Lemma 9.1 with
``a = ε/2`` and ``b = ε/(2 ln(1/δ))``; feasible when
``α + 1 <= exp(ε/(2 ln(1/δ)))`` (the Table 2 constraint).  Because the
error depends only on ``a`` — not on δ — the best choice of δ for fixed
(α, ε) is the one solving the constraint with equality, and the expected
L1 error is 2·max(xv·α, 1)/ε per cell (Lemma 9.3): strictly better than
Smooth Gamma's 5/ε1 scaling, in exchange for the δ failure probability
(Sec 9 discusses the cost: at database distance d the failure mass grows
like δ·e^(ε(d-1)), so distant databases may eventually be ruled out
entirely, which never happens with a pure guarantee).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.api.registry import register_mechanism
from repro.core.params import EREEParams
from repro.core.smooth_sensitivity import (
    LaplaceAdmissible,
    add_smooth_noise,
    add_smooth_noise_batch,
    smooth_sensitivity_of_counts,
)


@register_mechanism(
    "smooth-laplace",
    feasible=EREEParams.allows_smooth_laplace,
    strict_feasibility=True,
    description="Algorithm 3: smooth-sensitivity Laplace noise, "
    "(α, ε, δ) guarantee",
    unit_noise="laplace",
    linear_unit_scale=True,
)
@dataclass(frozen=True)
class SmoothLaplace:
    """The Smooth Laplace mechanism (Algorithm 3)."""

    params: EREEParams

    def __post_init__(self):
        if self.params.delta <= 0.0:
            raise ValueError("Smooth Laplace requires delta > 0 (Definition 9.1)")
        if not self.params.allows_smooth_laplace():
            raise ValueError(
                f"Smooth Laplace requires alpha + 1 <= exp(epsilon/(2 ln(1/delta))); "
                f"got alpha={self.params.alpha}, epsilon={self.params.epsilon}, "
                f"delta={self.params.delta}"
            )

    @property
    def name(self) -> str:
        return "Smooth Laplace"

    @property
    def distribution(self) -> LaplaceAdmissible:
        return LaplaceAdmissible(
            epsilon=self.params.epsilon, delta=self.params.delta
        )

    def smooth_sensitivity(self, max_single: np.ndarray) -> np.ndarray:
        return smooth_sensitivity_of_counts(
            max_single, self.params.alpha, self.distribution.b
        )

    def noise_scale(self, max_single: np.ndarray) -> np.ndarray:
        """Per-cell Laplace scale: S*(x)/(ε/2) = 2·max(xv·α, 1)/ε."""
        return self.smooth_sensitivity(max_single) / self.distribution.a

    def release_counts(
        self, counts: np.ndarray, max_single: np.ndarray, seed=None
    ) -> np.ndarray:
        sensitivity = self.smooth_sensitivity(max_single)
        return add_smooth_noise(counts, sensitivity, self.distribution, seed)

    def release_counts_batch(
        self,
        counts: np.ndarray,
        max_single: np.ndarray,
        n_trials: int = 1,
        seed=None,
    ) -> np.ndarray:
        """``(n_trials, n_cells)`` noisy matrix from one vectorized draw.

        ``counts``/``max_single`` are per-cell vectors replicated across
        trials or ``(k, n_cells)`` stacks of distinct truths (the
        stacked form carries its own leading axis, so ``n_trials`` must
        stay 1 or equal k).  Bit-for-bit
        the concatenation of sequential :meth:`release_counts` calls for a
        fixed seed (the Laplace matrix fills row-major from one stream).
        """
        sensitivity = self.smooth_sensitivity(max_single)
        return add_smooth_noise_batch(
            counts, sensitivity, self.distribution, n_trials, seed
        )

    def release_counts_from_unit(
        self,
        counts: np.ndarray,
        max_single: np.ndarray,
        unit: np.ndarray,
    ) -> np.ndarray:
        """Theorem 8.4 release from an externally drawn Laplace(1) matrix.

        The fused sweep path draws ``unit`` once per (workload,
        mechanism, α) group and calls this per ε — the smooth sensitivity
        ``max(xv·α, 1)`` is ε-free, so only the scalar ``a = ε/2``
        changes across the group.
        """
        counts = np.asarray(counts, dtype=np.float64)
        return counts + self.noise_scale(max_single) * np.asarray(
            unit, dtype=np.float64
        )

    def expected_l1_error(self, max_single: np.ndarray) -> np.ndarray:
        """Per-cell expected |error|, E|Lap(S/a)| = S/a (Lemma 9.3)."""
        return self.noise_scale(max_single)

    def noise_variance(self, max_single: np.ndarray) -> np.ndarray:
        """Per-cell noise variance, Var[Lap(s)] = 2s² (used for weighted
        least-squares reconciliation in the hierarchy extension)."""
        scale = self.noise_scale(max_single)
        return 2.0 * scale * scale

    def log_density(
        self, output: np.ndarray, count: float, max_single: float
    ) -> np.ndarray:
        """Log density of the release at ``output`` (verification tests)."""
        scale = float(self.noise_scale(np.array([max_single]))[0])
        z = np.abs(np.asarray(output, dtype=np.float64) - count) / scale
        return -z - math.log(2.0 * scale)
