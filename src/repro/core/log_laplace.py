"""Algorithm 1: the Log-Laplace mechanism.

A count query has unbounded global sensitivity under α-neighbors (a count
of x can move by α·x), but its *logarithm* has global sensitivity
ln(1+α) once shifted by γ = 1/α:

    ln(x' + γ) - ln(x + γ) <= ln(1+α)   for every strong α-neighbor step,

covering both the multiplicative case (x' = (1+α)x) and the +1 case
(x' = x + 1, where the shift γ = 1/α makes ln(1 + 1/(x+γ)) <= ln(1+α)).

The mechanism perturbs ℓ = ln(n+γ) with Laplace(λ), λ = 2·ln(1+α)/ε as in
the paper's Algorithm 1 box, and returns exp(ℓ+η) - γ.  (The privacy
proof of Theorem 8.1 only needs λ = ln(1+α)/ε; we keep the published
factor 2 by default and expose ``tight_scale`` for the proof-sufficient
variant as an ablation.)

The mechanism is biased (Lemma 8.2): E[ñ] + γ = (n+γ)/(1-λ²) for λ < 1.
``debias=True`` applies the exact multiplicative correction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.api.registry import register_mechanism
from repro.core.params import EREEParams
from repro.util import as_generator


@register_mechanism(
    "log-laplace",
    needs_xv=False,
    strong_worker_ok=False,
    feasible=EREEParams.log_laplace_has_bounded_mean,
    description="Algorithm 1: multiplicative Laplace noise on the shifted "
    "log count; needs no per-cell statistics",
    unit_noise="laplace",
)
@dataclass(frozen=True)
class LogLaplace:
    """The Log-Laplace mechanism for (α, ε)-ER-EE private counts.

    Satisfies (α, ε)-ER-EE privacy for establishment-attribute queries
    and weak (α, ε)-ER-EE privacy for queries that also involve worker
    attributes (Theorem 8.1).  Requires no per-cell data statistics
    (unlike the smooth-sensitivity mechanisms).
    """

    params: EREEParams
    tight_scale: bool = False
    debias: bool = False

    @property
    def name(self) -> str:
        return "Log-Laplace"

    @property
    def gamma(self) -> float:
        """The count shift γ = 1/α."""
        return 1.0 / self.params.alpha

    @property
    def scale(self) -> float:
        """Laplace scale on the log count."""
        scale = self.params.log_laplace_scale()
        return scale / 2.0 if self.tight_scale else scale

    def has_bounded_mean(self) -> bool:
        """Lemma 8.2: the output expectation is finite iff scale < 1."""
        return self.scale < 1.0

    def release_counts(self, counts: np.ndarray, seed=None) -> np.ndarray:
        """Release noisy counts for a vector of true counts (one draw each)."""
        rng = as_generator(seed)
        counts = np.asarray(counts, dtype=np.float64)
        gamma = self.gamma
        log_shifted = np.log(counts + gamma)
        eta = rng.laplace(0.0, self.scale, size=counts.shape)
        noisy = np.exp(log_shifted + eta) - gamma
        if self.debias:
            noisy = self.debiased(noisy)
        return noisy

    def release_counts_batch(
        self, counts: np.ndarray, n_trials: int = 1, seed=None
    ) -> np.ndarray:
        """``(n_trials, n_cells)`` noisy matrix from one vectorized draw.

        ``counts`` is a per-cell vector replicated across trials, or a
        ``(k, n_cells)`` stack of distinct truths sharing one draw (the
        stacked form carries its own leading axis, so ``n_trials`` must
        stay 1 or equal k).  The
        Laplace matrix is filled row-major from the same bit stream the
        per-trial loop consumes, so for a fixed seed the batch is
        bit-for-bit the concatenation of ``n_trials`` sequential
        :meth:`release_counts` calls.
        """
        rng = as_generator(seed)
        counts = np.asarray(counts, dtype=np.float64)
        if n_trials < 1:
            raise ValueError(f"n_trials must be >= 1, got {n_trials}")
        shape = np.broadcast_shapes(counts.shape, (n_trials, counts.shape[-1]))
        gamma = self.gamma
        eta = rng.laplace(0.0, self.scale, size=shape)
        noisy = np.exp(np.log(counts + gamma) + eta) - gamma
        if self.debias:
            noisy = self.debiased(noisy)
        return noisy

    def release_counts_from_unit(
        self, counts: np.ndarray, unit: np.ndarray
    ) -> np.ndarray:
        """Algorithm 1 release from an externally drawn Laplace(1) matrix.

        ``η = scale · unit`` reproduces the Laplace(scale) perturbation,
        so the fused sweep path can share one unit draw across an α
        group's ε points; unlike the smooth mechanisms the transform is
        nonlinear (the exp), so each ε still pays its own apply pass.
        """
        counts = np.asarray(counts, dtype=np.float64)
        gamma = self.gamma
        eta = self.scale * np.asarray(unit, dtype=np.float64)
        noisy = np.exp(np.log(counts + gamma) + eta) - gamma
        if self.debias:
            noisy = self.debiased(noisy)
        return noisy

    def debiased(self, noisy: np.ndarray) -> np.ndarray:
        """Exact multiplicative bias correction from Lemma 8.2.

        E[ñ + γ] = (n + γ)/(1 - λ²), so (ñ + γ)(1 - λ²) - γ is unbiased.
        Only valid when the mean is bounded (λ < 1).
        """
        scale = self.scale
        if scale >= 1.0:
            raise ValueError(
                f"Log-Laplace mean is unbounded at scale {scale:.4g} >= 1; "
                "debiasing undefined (Lemma 8.2)"
            )
        return (np.asarray(noisy, dtype=np.float64) + self.gamma) * (
            1.0 - scale**2
        ) - self.gamma

    def expected_value(self, count: float) -> float:
        """E[ñ] for a true count (Lemma 8.2); inf when λ >= 1."""
        scale = self.scale
        if scale >= 1.0:
            return math.inf
        return (count + self.gamma) / (1.0 - scale**2) - self.gamma

    def squared_relative_error_bound(self) -> float:
        """Theorem 8.3's bound on E[((x - ñ)/x)²]; inf when λ >= 1/2.

        The bound is (2λ² + 4λ⁴)(1+γ)²/((1-4λ²)(1-λ²)); the (1+γ)² factor
        covers the worst case x = 1.
        """
        scale = self.scale
        if scale >= 0.5:
            return math.inf
        lam2 = scale * scale
        core = (2.0 * lam2 + 4.0 * lam2 * lam2) / ((1.0 - 4.0 * lam2) * (1.0 - lam2))
        return core * (1.0 + self.gamma) ** 2

    def log_density(self, output: np.ndarray, count: float) -> np.ndarray:
        """Log density of the released value at ``output`` for true ``count``.

        Change of variables from η: for ñ = exp(ln(n+γ)+η) - γ the density
        at o is Laplace(λ) at η = ln(o+γ) - ln(n+γ) divided by (o+γ).
        Only defined for o > -γ; used by the privacy-verification tests.
        """
        output = np.asarray(output, dtype=np.float64)
        gamma = self.gamma
        shifted = output + gamma
        if np.any(shifted <= 0):
            raise ValueError("Log-Laplace outputs always exceed -gamma")
        eta = np.log(shifted) - math.log(count + gamma)
        scale = self.scale
        return -np.abs(eta) / scale - math.log(2.0 * scale) - np.log(shifted)
