"""Unit tests for the Laplace and geometric mechanisms."""

import math

import numpy as np
import pytest

from repro.dp import (
    GeometricMechanism,
    LaplaceMechanism,
    laplace_scale,
    laplace_tail_bound,
)


class TestLaplaceScale:
    def test_scale(self):
        assert laplace_scale(epsilon=2.0, sensitivity=4.0) == 2.0

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError, match="epsilon"):
            laplace_scale(epsilon=0.0, sensitivity=1.0)

    def test_tail_bound_paper_example(self):
        """Sec 6: Lap(1/eps) noise exceeds log(1/p)/eps w.p. p — at eps=1,
        p=0.01 the bound is ~4.6 (the paper's '+-5' example)."""
        bound = laplace_tail_bound(scale=1.0, probability=0.01)
        assert abs(bound - math.log(100)) < 1e-12
        assert bound < 5

    def test_tail_bound_empirical(self):
        mechanism = LaplaceMechanism(epsilon=1.0)
        noise = mechanism.release(np.zeros(200_000), seed=1)
        bound = laplace_tail_bound(mechanism.scale, 0.01)
        assert abs((np.abs(noise) > bound).mean() - 0.01) < 0.003


class TestLaplaceMechanism:
    def test_unbiased(self):
        mechanism = LaplaceMechanism(epsilon=0.5, sensitivity=2.0)
        noisy = mechanism.release(np.full(200_000, 10.0), seed=2)
        assert abs(noisy.mean() - 10.0) < 0.1

    def test_expected_l1(self):
        mechanism = LaplaceMechanism(epsilon=0.5, sensitivity=2.0)
        noise = mechanism.release(np.zeros(200_000), seed=3)
        assert abs(np.abs(noise).mean() - mechanism.expected_l1_error()) < 0.1

    def test_density_integrates_to_one(self):
        mechanism = LaplaceMechanism(epsilon=1.0)
        grid = np.linspace(-40, 40, 400_001)
        integral = np.trapezoid(mechanism.density(grid), grid)
        assert abs(integral - 1.0) < 1e-6

    def test_density_ratio_bounded_for_neighbors(self):
        """The ε-DP inequality at density level for counts differing by Δ=1."""
        mechanism = LaplaceMechanism(epsilon=1.0, sensitivity=1.0)
        grid = np.linspace(-20, 20, 2001)
        ratio = mechanism.density(grid) / mechanism.density(grid - 1.0)
        assert ratio.max() <= math.exp(1.0) + 1e-9


class TestGeometricMechanism:
    def test_integer_outputs(self):
        mechanism = GeometricMechanism(epsilon=1.0)
        noisy = mechanism.release(np.array([5, 7, 0]), seed=4)
        assert noisy.dtype.kind == "i"

    def test_unbiased(self):
        mechanism = GeometricMechanism(epsilon=0.8)
        noisy = mechanism.release(np.full(200_000, 3), seed=5)
        assert abs(noisy.mean() - 3.0) < 0.05

    def test_expected_l1_matches_formula(self):
        mechanism = GeometricMechanism(epsilon=0.8)
        noise = mechanism.release(np.zeros(200_000, dtype=int), seed=6)
        assert abs(np.abs(noise).mean() - mechanism.expected_l1_error()) < 0.05

    def test_epsilon_ratio_property(self):
        """Pr[X=k]/Pr[X=k+1] = e^eps for the two-sided geometric."""
        mechanism = GeometricMechanism(epsilon=1.2)
        noise = mechanism.release(np.zeros(2_000_000, dtype=int), seed=7)
        values, counts = np.unique(noise, return_counts=True)
        frequencies = dict(zip(values.tolist(), counts.tolist()))
        ratio = frequencies[0] / frequencies[1]
        assert abs(ratio - math.exp(1.2)) < 0.15
