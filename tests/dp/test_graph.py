"""Unit tests for the bipartite view and edge-DP release."""

import numpy as np
import pytest

from repro.db import Marginal
from repro.dp import BipartiteView, edge_dp_marginal
from repro.dp.sensitivity import (
    marginal_sensitivity_edges,
    marginal_sensitivity_nodes,
)


class TestSensitivity:
    def test_edge_sensitivity_is_one(self):
        assert marginal_sensitivity_edges() == 1.0

    def test_node_sensitivity_unbounded_without_degree_bound(self):
        assert marginal_sensitivity_nodes() == float("inf")

    def test_node_sensitivity_with_bound(self):
        assert marginal_sensitivity_nodes(100) == 100.0

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            marginal_sensitivity_nodes(-1)


class TestBipartiteView:
    def test_from_worker_full(self, tiny_worker_full):
        view = BipartiteView.from_worker_full(tiny_worker_full)
        assert view.n_edges == 7
        assert view.max_degree() == 3
        assert view.establishment_degrees.tolist() == [3, 2, 2]

    def test_to_networkx(self, tiny_worker_full):
        view = BipartiteView.from_worker_full(tiny_worker_full)
        graph = view.to_networkx(tiny_worker_full)
        assert graph.number_of_edges() == 7
        assert graph.number_of_nodes() == 7 + 3
        # Establishment degree in the graph matches the view.
        assert graph.degree[("e", 0)] == 3


class TestEdgeDP:
    def test_noise_scale_independent_of_counts(self, small_worker_full):
        """Edge-DP error stays O(1/eps) even for huge counts — precisely
        why it fails the establishment-size requirement."""
        marginal = Marginal(small_worker_full.table.schema, ["naics"])
        true = marginal.counts(small_worker_full.table)
        errors = []
        for seed in range(50):
            noisy = edge_dp_marginal(small_worker_full, marginal, 1.0, seed)
            errors.append(np.abs(noisy - true).mean())
        # Mean |Lap(1)| = 1; far below any establishment size.
        assert 0.5 < np.mean(errors) < 2.0

    def test_reproducible_given_seed(self, small_worker_full):
        marginal = Marginal(small_worker_full.table.schema, ["naics"])
        a = edge_dp_marginal(small_worker_full, marginal, 1.0, 42)
        b = edge_dp_marginal(small_worker_full, marginal, 1.0, 42)
        np.testing.assert_array_equal(a, b)
