"""Unit tests for the node-DP Truncated Laplace baseline."""

import numpy as np
import pytest

from repro.db import Marginal
from repro.dp import TruncatedLaplace


class TestTruncation:
    def test_removes_establishments_at_or_above_theta(self, small_worker_full):
        sizes = small_worker_full.establishment_sizes()
        theta = int(np.percentile(sizes, 90))
        marginal = Marginal(
            small_worker_full.table.schema, ["place", "naics", "ownership"]
        )
        result = TruncatedLaplace(theta=theta, epsilon=4.0).release(
            small_worker_full, marginal, seed=1
        )
        assert result.n_establishments_removed == int((sizes >= theta).sum())
        assert result.n_jobs_removed == int(sizes[sizes >= theta].sum())

    def test_truncated_counts_below_true(self, small_worker_full):
        marginal = Marginal(small_worker_full.table.schema, ["naics"])
        result = TruncatedLaplace(theta=50, epsilon=4.0).release(
            small_worker_full, marginal, seed=2
        )
        assert np.all(result.truncated_true <= result.true)
        assert np.all(result.truncation_bias >= 0)

    def test_bias_is_epsilon_independent(self, small_worker_full):
        """Finding 6: the truncation bias does not shrink with epsilon."""
        marginal = Marginal(small_worker_full.table.schema, ["naics"])
        low = TruncatedLaplace(theta=50, epsilon=0.25).release(
            small_worker_full, marginal, seed=3
        )
        high = TruncatedLaplace(theta=50, epsilon=16.0).release(
            small_worker_full, marginal, seed=3
        )
        np.testing.assert_array_equal(low.truncation_bias, high.truncation_bias)
        assert low.truncation_bias.sum() > 0

    def test_small_theta_removes_most_employment(self, small_worker_full):
        marginal = Marginal(small_worker_full.table.schema, ["naics"])
        result = TruncatedLaplace(theta=2, epsilon=4.0).release(
            small_worker_full, marginal, seed=4
        )
        assert result.n_jobs_removed > 0.5 * small_worker_full.n_jobs

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TruncatedLaplace(theta=0, epsilon=1.0)
        with pytest.raises(ValueError):
            TruncatedLaplace(theta=10, epsilon=-1.0)
