"""Unit tests for the privacy accountant (Theorem 2.1 composition)."""

import pytest

from repro.dp import PrivacyAccountant, PrivacySpent
from repro.dp.composition import PrivacyBudgetExceeded


class TestPrivacySpent:
    def test_addition(self):
        total = PrivacySpent(1.0, 0.01) + PrivacySpent(0.5, 0.02)
        assert total.epsilon == 1.5
        assert abs(total.delta - 0.03) < 1e-15

    def test_maximum(self):
        combined = PrivacySpent(1.0, 0.03).maximum(PrivacySpent(2.0, 0.01))
        assert combined.epsilon == 2.0
        assert combined.delta == 0.03


class TestAccountant:
    def test_sequential_charges_add(self):
        accountant = PrivacyAccountant(epsilon_budget=3.0)
        accountant.charge(1.0)
        accountant.charge(1.5)
        assert accountant.spent().epsilon == 2.5
        assert accountant.remaining().epsilon == 0.5

    def test_budget_exceeded_raises(self):
        accountant = PrivacyAccountant(epsilon_budget=1.0)
        accountant.charge(0.8)
        with pytest.raises(PrivacyBudgetExceeded):
            accountant.charge(0.3)

    def test_rejected_charge_not_recorded(self):
        accountant = PrivacyAccountant(epsilon_budget=1.0)
        with pytest.raises(PrivacyBudgetExceeded):
            accountant.charge(2.0)
        assert accountant.spent().epsilon == 0.0

    def test_delta_budget_enforced(self):
        accountant = PrivacyAccountant(epsilon_budget=10.0, delta_budget=0.05)
        accountant.charge(1.0, 0.04)
        with pytest.raises(PrivacyBudgetExceeded):
            accountant.charge(1.0, 0.02)

    def test_parallel_charge_costs_maximum(self):
        accountant = PrivacyAccountant(epsilon_budget=2.0)
        accountant.charge_parallel([(1.0, 0.0), (2.0, 0.0), (0.5, 0.0)])
        assert accountant.spent().epsilon == 2.0

    def test_exact_budget_allowed(self):
        accountant = PrivacyAccountant(epsilon_budget=1.0)
        accountant.charge(0.5)
        accountant.charge(0.5)
        assert accountant.remaining().epsilon == pytest.approx(0.0)
