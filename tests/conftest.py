"""Shared fixtures: a hand-built tiny dataset for exact assertions and a
session-scoped generated snapshot for integration-style tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticConfig, generate
from repro.db import Attribute, Schema, Table, WorkerFull, join_worker_full


@pytest.fixture(scope="session")
def small_dataset():
    """A generated snapshot, small but structurally faithful (~8k jobs)."""
    return generate(SyntheticConfig(target_jobs=8_000, seed=123))


@pytest.fixture(scope="session")
def small_worker_full(small_dataset):
    return small_dataset.worker_full()


@pytest.fixture()
def tiny_schema_worker():
    return Schema(
        [
            Attribute("sex", ("M", "F")),
            Attribute("education", ("HS", "BA")),
        ]
    )


@pytest.fixture()
def tiny_schema_workplace():
    return Schema(
        [
            Attribute("naics", ("11", "62")),
            Attribute("place", ("P1", "P2")),
        ]
    )


@pytest.fixture()
def tiny_worker_full(tiny_schema_worker, tiny_schema_workplace) -> WorkerFull:
    """Three establishments, seven workers; exact counts known by hand.

    Establishment 0: ("11", "P1") with workers (M,HS), (M,BA), (F,BA)
    Establishment 1: ("62", "P1") with workers (F,HS), (F,HS)
    Establishment 2: ("62", "P2") with workers (M,HS), (F,BA)
    """
    worker = Table.from_records(
        tiny_schema_worker,
        [
            {"sex": "M", "education": "HS"},
            {"sex": "M", "education": "BA"},
            {"sex": "F", "education": "BA"},
            {"sex": "F", "education": "HS"},
            {"sex": "F", "education": "HS"},
            {"sex": "M", "education": "HS"},
            {"sex": "F", "education": "BA"},
        ],
    )
    workplace = Table.from_records(
        tiny_schema_workplace,
        [
            {"naics": "11", "place": "P1"},
            {"naics": "62", "place": "P1"},
            {"naics": "62", "place": "P2"},
        ],
    )
    job_worker = np.arange(7)
    job_establishment = np.array([0, 0, 0, 1, 1, 2, 2])
    return join_worker_full(worker, workplace, job_worker, job_establishment)
