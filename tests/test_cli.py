"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, run_figures, run_tables


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_defaults(self):
        args = build_parser().parse_args(["figures"])
        assert args.trials == 10
        assert args.jobs == 150_000

    def test_generate_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate"])


class TestCommands:
    def test_tables_command(self, tmp_path):
        code = main(["tables", "--out", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "table-1.txt").exists()
        assert "Yes*" in (tmp_path / "table-1.txt").read_text(encoding="utf-8")
        assert (tmp_path / "table-2.txt").exists()

    def test_figures_subset(self, tmp_path):
        code = main(
            [
                "figures",
                "--out", str(tmp_path),
                "--jobs", "5000",
                "--trials", "2",
                "--only", "figure-1",
            ]
        )
        assert code == 0
        report = (tmp_path / "figure-1.txt").read_text(encoding="utf-8")
        assert "smooth-laplace" in report
        assert not (tmp_path / "figure-2.txt").exists()

    def test_figures_unknown_name(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown figures"):
            main(["figures", "--out", str(tmp_path), "--only", "figure-9"])

    def test_generate_command(self, tmp_path):
        code = main(
            [
                "generate",
                "--out", str(tmp_path / "snap"),
                "--jobs", "2000",
                "--seed", "3",
            ]
        )
        assert code == 0
        assert (tmp_path / "snap" / "worker.csv").exists()

    def test_generated_snapshot_loads(self, tmp_path):
        from repro.data.io import load_dataset

        main(["generate", "--out", str(tmp_path / "s"), "--jobs", "2000"])
        dataset = load_dataset(tmp_path / "s")
        assert dataset.n_jobs > 0
