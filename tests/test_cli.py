"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, run_figures, run_tables


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_defaults(self):
        args = build_parser().parse_args(["figures"])
        assert args.trials == 10
        assert args.jobs == 150_000

    def test_tables_gains_session_knobs(self):
        args = build_parser().parse_args(
            ["tables", "--jobs", "4000", "--seed", "9", "--trials", "2"]
        )
        assert args.jobs == 4000
        assert args.seed == 9
        assert args.trials == 2

    def test_generate_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.split()[1][0].isdigit()

    def test_release_defaults(self):
        args = build_parser().parse_args(["release"])
        assert args.mechanism == "smooth-laplace"
        assert args.attrs == "place,naics,ownership"
        assert args.alpha == 0.1


class TestCommands:
    def test_tables_command(self, tmp_path):
        code = main(
            [
                "tables",
                "--out", str(tmp_path),
                "--jobs", "4000",
                "--trials", "2",
            ]
        )
        assert code == 0
        assert (tmp_path / "table-1.txt").exists()
        assert "Yes*" in (tmp_path / "table-1.txt").read_text(encoding="utf-8")
        assert (tmp_path / "table-2.txt").exists()
        table3 = (tmp_path / "table-3.txt").read_text(encoding="utf-8")
        assert "smooth-laplace" in table3
        assert "L1 ratio" in table3

    def test_figures_subset(self, tmp_path):
        code = main(
            [
                "figures",
                "--out", str(tmp_path),
                "--jobs", "5000",
                "--trials", "2",
                "--only", "figure-1",
            ]
        )
        assert code == 0
        report = (tmp_path / "figure-1.txt").read_text(encoding="utf-8")
        assert "smooth-laplace" in report
        assert not (tmp_path / "figure-2.txt").exists()

    def test_figures_unknown_name(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown figures"):
            main(["figures", "--out", str(tmp_path), "--only", "figure-9"])

    def test_release_command_prints_marginal_and_ledger(self, capsys):
        code = main(
            [
                "release",
                "--jobs", "4000",
                "--attrs", "place,naics",
                "--mechanism", "smooth-laplace",
                "--alpha", "0.1",
                "--epsilon", "2",
                "--delta", "0.05",
                "--budget", "4",
                "--top", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "released" in out
        assert "privacy ledger" in out
        assert "utilization 50.0%" in out

    def test_release_command_truncated_laplace(self, capsys):
        code = main(
            [
                "release",
                "--jobs", "4000",
                "--attrs", "place",
                "--mechanism", "truncated-laplace",
                "--epsilon", "2",
                "--theta", "50",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "node-dp" in out or "truncated-laplace" in out

    def test_release_command_rejects_bad_request(self):
        with pytest.raises(SystemExit, match="invalid release request"):
            main(
                [
                    "release",
                    "--jobs", "4000",
                    "--mechanism", "gaussian",
                ]
            )

    def test_generate_command(self, tmp_path):
        code = main(
            [
                "generate",
                "--out", str(tmp_path / "snap"),
                "--jobs", "2000",
                "--seed", "3",
            ]
        )
        assert code == 0
        assert (tmp_path / "snap" / "worker.csv").exists()

    def test_generated_snapshot_loads(self, tmp_path):
        from repro.data.io import load_dataset

        main(["generate", "--out", str(tmp_path / "s"), "--jobs", "2000"])
        dataset = load_dataset(tmp_path / "s")
        assert dataset.n_jobs > 0


class TestSharedSession:
    def test_run_figures_and_tables_share_a_session(self, tmp_path):
        """One snapshot can serve both artifact families in one invocation."""
        from repro.api import ReleaseSession
        from repro.data import SyntheticConfig
        from repro.experiments import ExperimentConfig

        session = ReleaseSession(
            ExperimentConfig(
                data=SyntheticConfig(target_jobs=4000, seed=5),
                n_trials=2,
                seed=5,
            )
        )
        figures_args = build_parser().parse_args(
            ["figures", "--out", str(tmp_path), "--only", "figure-1"]
        )
        tables_args = build_parser().parse_args(
            ["tables", "--out", str(tmp_path), "--trials", "2"]
        )
        run_figures(figures_args, session=session)
        run_tables(tables_args, session=session)
        assert (tmp_path / "figure-1.txt").exists()
        assert (tmp_path / "table-3.txt").exists()
        # The figure grid and the table rows all debited one ledger.
        assert len(session.ledger.entries) > 12


class TestScenariosCommand:
    def test_build_sharded_then_cached(self, tmp_path, capsys):
        store_dir = str(tmp_path / "snaps")
        code = main(
            [
                "scenarios", "build", "panel-5yr",
                "--snapshot-dir", store_dir,
                "--workers", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "built panel-5yr" in out
        assert "sharded over 2 workers" in out
        # Second invocation is a cache hit, not a rebuild.
        main(["scenarios", "build", "panel-5yr", "--snapshot-dir", store_dir])
        assert "already built" in capsys.readouterr().out

    def test_sharded_cli_build_matches_sequential(self, tmp_path):
        from repro.scenarios import dataset_fingerprint, scenario_config
        from tests.scenarios.test_sharded import assert_snapshot_dirs_identical

        sequential = tmp_path / "seq"
        sharded = tmp_path / "sharded"
        main(["scenarios", "build", "panel-5yr", "--snapshot-dir", str(sequential)])
        main(
            [
                "scenarios", "build", "panel-5yr",
                "--snapshot-dir", str(sharded),
                "--workers", "2",
            ]
        )
        fingerprint = dataset_fingerprint(scenario_config("panel-5yr"))
        assert_snapshot_dirs_identical(
            sequential / fingerprint, sharded / fingerprint
        )

    def test_prune_all(self, tmp_path, capsys):
        root = tmp_path / "snaps"
        root.mkdir()
        staging = root / ".abcd.tmp-live"
        staging.mkdir()
        (staging / "worker__age.npy").write_bytes(b"partial")
        # Age-gated prune leaves the fresh dir; --all removes it.
        code = main(["scenarios", "prune", "--snapshot-dir", str(root)])
        assert code == 0
        assert staging.exists()
        assert "0 stale staging dir(s)" in capsys.readouterr().out
        code = main(["scenarios", "prune", "--all", "--snapshot-dir", str(root)])
        assert code == 0
        assert not staging.exists()
        assert "1 stale staging dir(s)" in capsys.readouterr().out

    def test_prune_default_reports_stale_dirs(self, tmp_path, capsys):
        import os
        import time

        root = tmp_path / "snaps"
        root.mkdir()
        stale = root / ".abcd.tmp-crashed"
        stale.mkdir()
        old = time.time() - 7 * 24 * 3600
        os.utime(stale, (old, old))
        code = main(["scenarios", "prune", "--snapshot-dir", str(root)])
        assert code == 0
        assert not stale.exists()
        out = capsys.readouterr().out
        assert f"pruned {stale}" in out
        assert "1 stale staging dir(s)" in out

    def test_build_requires_a_name(self, tmp_path):
        with pytest.raises(SystemExit, match="needs a scenario name"):
            main(["scenarios", "build", "--snapshot-dir", str(tmp_path)])
