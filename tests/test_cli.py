"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, run_figures, run_tables


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_defaults(self):
        args = build_parser().parse_args(["figures"])
        assert args.trials == 10
        assert args.jobs == 150_000

    def test_tables_gains_session_knobs(self):
        args = build_parser().parse_args(
            ["tables", "--jobs", "4000", "--seed", "9", "--trials", "2"]
        )
        assert args.jobs == 4000
        assert args.seed == 9
        assert args.trials == 2

    def test_generate_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.split()[1][0].isdigit()

    def test_release_defaults(self):
        args = build_parser().parse_args(["release"])
        assert args.mechanism == "smooth-laplace"
        assert args.attrs == "place,naics,ownership"
        assert args.alpha == 0.1

    @pytest.mark.parametrize("command", ["sweep", "figures", "tables"])
    def test_fused_modes(self, command):
        base = [command]
        assert build_parser().parse_args(base).fused is False
        assert build_parser().parse_args(base + ["--fused"]).fused == "group"
        assert (
            build_parser().parse_args(base + ["--fused", "family"]).fused
            == "family"
        )
        with pytest.raises(SystemExit):
            build_parser().parse_args(base + ["--fused", "bogus"])


class TestCommands:
    def test_tables_command(self, tmp_path):
        code = main(
            [
                "tables",
                "--out", str(tmp_path),
                "--jobs", "4000",
                "--trials", "2",
            ]
        )
        assert code == 0
        assert (tmp_path / "table-1.txt").exists()
        assert "Yes*" in (tmp_path / "table-1.txt").read_text(encoding="utf-8")
        assert (tmp_path / "table-2.txt").exists()
        table3 = (tmp_path / "table-3.txt").read_text(encoding="utf-8")
        assert "smooth-laplace" in table3
        assert "L1 ratio" in table3

    def test_figures_subset(self, tmp_path):
        code = main(
            [
                "figures",
                "--out", str(tmp_path),
                "--jobs", "5000",
                "--trials", "2",
                "--only", "figure-1",
            ]
        )
        assert code == 0
        report = (tmp_path / "figure-1.txt").read_text(encoding="utf-8")
        assert "smooth-laplace" in report
        assert not (tmp_path / "figure-2.txt").exists()

    def test_figures_unknown_name(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown figures"):
            main(["figures", "--out", str(tmp_path), "--only", "figure-9"])

    def test_release_command_prints_marginal_and_ledger(self, capsys):
        code = main(
            [
                "release",
                "--jobs", "4000",
                "--attrs", "place,naics",
                "--mechanism", "smooth-laplace",
                "--alpha", "0.1",
                "--epsilon", "2",
                "--delta", "0.05",
                "--budget", "4",
                "--top", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "released" in out
        assert "privacy ledger" in out
        assert "utilization 50.0%" in out

    def test_release_command_truncated_laplace(self, capsys):
        code = main(
            [
                "release",
                "--jobs", "4000",
                "--attrs", "place",
                "--mechanism", "truncated-laplace",
                "--epsilon", "2",
                "--theta", "50",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "node-dp" in out or "truncated-laplace" in out

    def test_release_command_rejects_bad_request(self):
        with pytest.raises(SystemExit, match="invalid release request"):
            main(
                [
                    "release",
                    "--jobs", "4000",
                    "--mechanism", "gaussian",
                ]
            )

    def test_generate_command(self, tmp_path):
        code = main(
            [
                "generate",
                "--out", str(tmp_path / "snap"),
                "--jobs", "2000",
                "--seed", "3",
            ]
        )
        assert code == 0
        assert (tmp_path / "snap" / "worker.csv").exists()

    def test_generated_snapshot_loads(self, tmp_path):
        from repro.data.io import load_dataset

        main(["generate", "--out", str(tmp_path / "s"), "--jobs", "2000"])
        dataset = load_dataset(tmp_path / "s")
        assert dataset.n_jobs > 0


class TestSharedSession:
    def test_run_figures_and_tables_share_a_session(self, tmp_path):
        """One snapshot can serve both artifact families in one invocation."""
        from repro.api import ReleaseSession
        from repro.data import SyntheticConfig
        from repro.experiments import ExperimentConfig

        session = ReleaseSession(
            ExperimentConfig(
                data=SyntheticConfig(target_jobs=4000, seed=5),
                n_trials=2,
                seed=5,
            )
        )
        figures_args = build_parser().parse_args(
            ["figures", "--out", str(tmp_path), "--only", "figure-1"]
        )
        tables_args = build_parser().parse_args(
            ["tables", "--out", str(tmp_path), "--trials", "2"]
        )
        run_figures(figures_args, session=session)
        run_tables(tables_args, session=session)
        assert (tmp_path / "figure-1.txt").exists()
        assert (tmp_path / "table-3.txt").exists()
        # The figure grid and the table rows all debited one ledger.
        assert len(session.ledger.entries) > 12


class TestScenariosCommand:
    def test_build_sharded_then_cached(self, tmp_path, capsys):
        store_dir = str(tmp_path / "snaps")
        code = main(
            [
                "scenarios", "build", "panel-5yr",
                "--snapshot-dir", store_dir,
                "--workers", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "built panel-5yr" in out
        assert "sharded over 2 workers" in out
        # Second invocation is a cache hit, not a rebuild.
        main(["scenarios", "build", "panel-5yr", "--snapshot-dir", store_dir])
        assert "already built" in capsys.readouterr().out

    def test_sharded_cli_build_matches_sequential(self, tmp_path):
        from repro.scenarios import dataset_fingerprint, scenario_config
        from tests.scenarios.test_sharded import assert_snapshot_dirs_identical

        sequential = tmp_path / "seq"
        sharded = tmp_path / "sharded"
        main(["scenarios", "build", "panel-5yr", "--snapshot-dir", str(sequential)])
        main(
            [
                "scenarios", "build", "panel-5yr",
                "--snapshot-dir", str(sharded),
                "--workers", "2",
            ]
        )
        fingerprint = dataset_fingerprint(scenario_config("panel-5yr"))
        assert_snapshot_dirs_identical(
            sequential / fingerprint, sharded / fingerprint
        )

    def test_prune_all(self, tmp_path, capsys):
        root = tmp_path / "snaps"
        root.mkdir()
        staging = root / ".abcd.tmp-live"
        staging.mkdir()
        (staging / "worker__age.npy").write_bytes(b"partial")
        # Age-gated prune leaves the fresh dir; --all removes it.
        code = main(["scenarios", "prune", "--snapshot-dir", str(root)])
        assert code == 0
        assert staging.exists()
        assert "0 stale staging dir(s)" in capsys.readouterr().out
        code = main(["scenarios", "prune", "--all", "--snapshot-dir", str(root)])
        assert code == 0
        assert not staging.exists()
        assert "1 stale staging dir(s)" in capsys.readouterr().out

    def test_prune_default_reports_stale_dirs(self, tmp_path, capsys):
        import os
        import time

        root = tmp_path / "snaps"
        root.mkdir()
        stale = root / ".abcd.tmp-crashed"
        stale.mkdir()
        old = time.time() - 7 * 24 * 3600
        os.utime(stale, (old, old))
        code = main(["scenarios", "prune", "--snapshot-dir", str(root)])
        assert code == 0
        assert not stale.exists()
        out = capsys.readouterr().out
        assert f"pruned {stale}" in out
        assert "1 stale staging dir(s)" in out

    def test_build_requires_a_name(self, tmp_path):
        with pytest.raises(SystemExit, match="needs a scenario name"):
            main(["scenarios", "build", "--snapshot-dir", str(tmp_path)])


class TestPanelBuildCommand:
    def test_build_panel_then_cached(self, tmp_path, capsys):
        store_dir = str(tmp_path / "snaps")
        code = main(
            [
                "scenarios", "build", "panel-5yr", "--panel",
                "--years", "2",
                "--snapshot-dir", store_dir,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "built panel-5yr panel: 2 year(s)" in out
        assert "resumable at year granularity" in out
        # Second invocation is a hit on the complete panel, not a rebuild.
        main(
            [
                "scenarios", "build", "panel-5yr", "--panel",
                "--years", "2",
                "--snapshot-dir", store_dir,
            ]
        )
        assert "panel already built" in capsys.readouterr().out
        # a different year count is a different panel (fresh fingerprint):
        main(
            [
                "scenarios", "build", "panel-5yr", "--panel",
                "--years", "3",
                "--snapshot-dir", store_dir,
            ]
        )
        assert "built panel-5yr panel: 3 year(s)" in capsys.readouterr().out


class TestStoreUrl:
    def test_scenarios_build_into_remote(self, tmp_path, capsys):
        bucket = tmp_path / "bucket"
        code = main(
            [
                "scenarios", "build", "panel-5yr",
                "--snapshot-dir", str(tmp_path / "cache-a"),
                "--store-url", f"file://{bucket}",
            ]
        )
        assert code == 0
        assert "built panel-5yr" in capsys.readouterr().out
        # A second "machine" (fresh cache root, same bucket) sees the
        # snapshot without rebuilding it.
        main(
            [
                "scenarios", "build", "panel-5yr",
                "--snapshot-dir", str(tmp_path / "cache-b"),
                "--store-url", f"file://{bucket}",
            ]
        )
        assert "already built" in capsys.readouterr().out

    def test_bad_store_url_is_a_clean_exit(self, tmp_path):
        with pytest.raises(SystemExit, match="cloud SDK"):
            main(
                [
                    "scenarios", "build", "panel-5yr",
                    "--snapshot-dir", str(tmp_path),
                    "--store-url", "s3://bucket",
                ]
            )


class TestStorageCommand:
    def test_stats_on_empty_roots(self, tmp_path, capsys):
        code = main(
            [
                "storage", "stats",
                "--snapshot-dir", str(tmp_path / "snaps"),
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "storage backends (local)" in out
        assert "0 snapshot(s), 0 panel(s)" in out
        assert "0 point(s)" in out
        assert "session stats:" in out

    def test_stats_counts_built_artifacts(self, tmp_path, capsys):
        from repro.engine.store import ResultStore

        snaps = tmp_path / "snaps"
        main(["scenarios", "build", "panel-5yr", "--snapshot-dir", str(snaps)])
        ResultStore(tmp_path / "cache").put("ab" + "0" * 62, {"value": 1})
        capsys.readouterr()
        main(
            [
                "storage", "stats",
                "--snapshot-dir", str(snaps),
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        out = capsys.readouterr().out
        assert "1 snapshot(s), 0 panel(s)" in out
        assert "1 point(s)" in out

    def test_serve_and_stats_over_http(self, tmp_path, capsys):
        from repro.storage.httpd import ObjectServer

        with ObjectServer() as server:
            code = main(
                [
                    "storage", "stats",
                    "--snapshot-dir", str(tmp_path / "snap-cache"),
                    "--cache-dir", str(tmp_path / "result-cache"),
                    "--store-url", server.url,
                ]
            )
            assert code == 0
        out = capsys.readouterr().out
        assert f"remote: {server.url}" in out
