"""Unit tests for the WorkerFull universal relation."""

import numpy as np
import pytest

from repro.db import Table, WorkerFull, join_worker_full
from repro.db.schema import Attribute, Schema


class TestJoin:
    def test_join_carries_both_sides(self, tiny_worker_full):
        names = tiny_worker_full.table.schema.names
        assert "sex" in names and "naics" in names

    def test_join_row_alignment(self, tiny_worker_full):
        # Worker 5 (M, HS) works at establishment 2 ("62", "P2").
        row = tiny_worker_full.table.row(5)
        assert row == {"sex": "M", "education": "HS", "naics": "62", "place": "P2"}

    def test_n_jobs(self, tiny_worker_full):
        assert tiny_worker_full.n_jobs == 7

    def test_establishment_sizes(self, tiny_worker_full):
        assert tiny_worker_full.establishment_sizes().tolist() == [3, 2, 2]

    def test_out_of_range_worker_index_rejected(
        self, tiny_schema_worker, tiny_schema_workplace
    ):
        worker = Table.from_records(
            tiny_schema_worker, [{"sex": "M", "education": "HS"}]
        )
        workplace = Table.from_records(
            tiny_schema_workplace, [{"naics": "11", "place": "P1"}]
        )
        with pytest.raises(ValueError, match="job_worker"):
            join_worker_full(worker, workplace, np.array([5]), np.array([0]))

    def test_out_of_range_establishment_index_rejected(
        self, tiny_schema_worker, tiny_schema_workplace
    ):
        worker = Table.from_records(
            tiny_schema_worker, [{"sex": "M", "education": "HS"}]
        )
        workplace = Table.from_records(
            tiny_schema_workplace, [{"naics": "11", "place": "P1"}]
        )
        with pytest.raises(ValueError, match="job_establishment"):
            join_worker_full(worker, workplace, np.array([0]), np.array([3]))

    def test_mismatched_job_arrays_rejected(
        self, tiny_schema_worker, tiny_schema_workplace
    ):
        worker = Table.from_records(
            tiny_schema_worker, [{"sex": "M", "education": "HS"}]
        )
        workplace = Table.from_records(
            tiny_schema_workplace, [{"naics": "11", "place": "P1"}]
        )
        with pytest.raises(ValueError, match="equal length"):
            join_worker_full(worker, workplace, np.array([0, 0]), np.array([0]))


class TestWorkerFull:
    def test_filter_keeps_establishment_universe(self, tiny_worker_full):
        filtered = tiny_worker_full.filter(
            tiny_worker_full.table.equals_value("sex", "F")
        )
        assert filtered.n_jobs == 4
        assert filtered.n_establishments == tiny_worker_full.n_establishments

    def test_filtered_sizes_count_remaining_jobs(self, tiny_worker_full):
        filtered = tiny_worker_full.filter(
            tiny_worker_full.table.equals_value("education", "BA")
        )
        assert filtered.establishment_sizes().tolist() == [2, 0, 1]

    def test_establishment_index_validation(self, tiny_schema_worker):
        worker = Table.from_records(
            tiny_schema_worker, [{"sex": "M", "education": "HS"}]
        )
        with pytest.raises(ValueError, match="one entry per row"):
            WorkerFull(
                table=worker,
                establishment=np.array([0, 1]),
                n_establishments=2,
            )

    def test_generated_dataset_join_consistency(self, small_dataset):
        worker_full = small_dataset.worker_full()
        assert worker_full.n_jobs == small_dataset.n_jobs
        np.testing.assert_array_equal(
            worker_full.establishment_sizes(),
            small_dataset.establishment_sizes(),
        )
        # Workplace attributes are constant within an establishment.
        place = worker_full.table.column("place")
        estab = worker_full.establishment
        order = np.argsort(estab, kind="mergesort")
        grouped_estab = estab[order]
        grouped_place = place[order]
        same_estab = np.diff(grouped_estab) == 0
        assert np.all(np.diff(grouped_place)[same_estab] == 0)
