"""Unit tests for attributes, schemas and domain arithmetic."""

import pytest

from repro.db import Attribute, Schema


class TestAttribute:
    def test_size_counts_domain_values(self):
        assert Attribute("sex", ("M", "F")).size == 2

    def test_code_and_decode_roundtrip(self):
        attribute = Attribute("education", ("HS", "BA", "PhD"))
        for index, value in enumerate(attribute.values):
            assert attribute.code(value) == index
            assert attribute.decode(index) == value

    def test_code_rejects_unknown_value(self):
        attribute = Attribute("sex", ("M", "F"))
        with pytest.raises(ValueError, match="not in the domain"):
            attribute.code("X")

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError, match="non-empty domain"):
            Attribute("sex", ())

    def test_duplicate_values_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Attribute("sex", ("M", "M"))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Attribute("", ("a",))


class TestSchema:
    @pytest.fixture()
    def schema(self):
        return Schema(
            [
                Attribute("sex", ("M", "F")),
                Attribute("education", ("HS", "BA")),
                Attribute("age", ("young", "mid", "old")),
            ]
        )

    def test_names_preserve_order(self, schema):
        assert schema.names == ("sex", "education", "age")

    def test_getitem_by_name(self, schema):
        assert schema["age"].size == 3

    def test_getitem_unknown_raises_keyerror(self, schema):
        with pytest.raises(KeyError, match="no attribute 'height'"):
            schema["height"]

    def test_contains(self, schema):
        assert "sex" in schema
        assert "height" not in schema

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Schema([Attribute("a", (1,)), Attribute("a", (2,))])

    def test_domain_size_is_product(self, schema):
        assert schema.domain_size(["sex", "age"]) == 6
        assert schema.domain_size() == 12

    def test_domain_size_empty_marginal_is_one(self, schema):
        assert schema.domain_size([]) == 1

    def test_domain_shape(self, schema):
        assert schema.domain_shape(["age", "sex"]) == (3, 2)

    def test_subset_keeps_requested_order(self, schema):
        sub = schema.subset(["age", "sex"])
        assert sub.names == ("age", "sex")

    def test_merge_disjoint(self, schema):
        other = Schema([Attribute("place", ("P1",))])
        merged = schema.merge(other)
        assert merged.names == ("sex", "education", "age", "place")

    def test_merge_overlapping_rejected(self, schema):
        with pytest.raises(ValueError, match="sharing attributes"):
            schema.merge(Schema([Attribute("sex", ("M",))]))

    def test_equality_and_hash(self, schema):
        clone = Schema(schema.attributes)
        assert schema == clone
        assert hash(schema) == hash(clone)
