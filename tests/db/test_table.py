"""Unit tests for the column-store Table."""

import numpy as np
import pytest

from repro.db import Attribute, Schema, Table


@pytest.fixture()
def schema():
    return Schema([Attribute("sex", ("M", "F")), Attribute("edu", ("HS", "BA"))])


@pytest.fixture()
def table(schema):
    return Table(
        schema,
        {
            "sex": np.array([0, 1, 1, 0]),
            "edu": np.array([0, 0, 1, 1]),
        },
    )


class TestConstruction:
    def test_n_rows(self, table):
        assert table.n_rows == 4
        assert len(table) == 4

    def test_missing_column_rejected(self, schema):
        with pytest.raises(ValueError, match="missing"):
            Table(schema, {"sex": np.array([0])})

    def test_extra_column_rejected(self, schema):
        with pytest.raises(ValueError, match="not in schema"):
            Table(
                schema,
                {
                    "sex": np.array([0]),
                    "edu": np.array([0]),
                    "age": np.array([0]),
                },
            )

    def test_mismatched_lengths_rejected(self, schema):
        with pytest.raises(ValueError, match="rows"):
            Table(schema, {"sex": np.array([0, 1]), "edu": np.array([0])})

    def test_out_of_range_codes_rejected(self, schema):
        with pytest.raises(ValueError, match="outside"):
            Table(schema, {"sex": np.array([2]), "edu": np.array([0])})

    def test_float_columns_rejected(self, schema):
        with pytest.raises(ValueError, match="integer"):
            Table(schema, {"sex": np.array([0.0]), "edu": np.array([0])})

    def test_empty_table(self, schema):
        empty = Table.from_records(schema, [])
        assert empty.n_rows == 0


class TestAccess:
    def test_column_returns_codes(self, table):
        assert table.column("sex").tolist() == [0, 1, 1, 0]

    def test_unknown_column_raises(self, table):
        with pytest.raises(KeyError):
            table.column("age")

    def test_decoded(self, table):
        assert table.decoded("sex").tolist() == ["M", "F", "F", "M"]

    def test_row(self, table):
        assert table.row(2) == {"sex": "F", "edu": "BA"}

    def test_records_roundtrip(self, schema, table):
        records = table.to_records()
        rebuilt = Table.from_records(schema, records)
        assert rebuilt.to_records() == records


class TestTransforms:
    def test_filter(self, table):
        females = table.filter(table.equals_value("sex", "F"))
        assert females.n_rows == 2
        assert set(females.decoded("edu")) == {"HS", "BA"}

    def test_filter_shape_mismatch_rejected(self, table):
        with pytest.raises(ValueError, match="mask shape"):
            table.filter(np.array([True]))

    def test_take_gathers_rows(self, table):
        taken = table.take(np.array([3, 0, 3]))
        assert taken.decoded("edu").tolist() == ["BA", "HS", "BA"]

    def test_select_projects(self, table):
        projected = table.select(["edu"])
        assert projected.schema.names == ("edu",)
        assert projected.n_rows == 4

    def test_concat(self, table):
        doubled = table.concat(table)
        assert doubled.n_rows == 8

    def test_concat_schema_mismatch_rejected(self, table, schema):
        other_schema = Schema([Attribute("sex", ("M", "F"))])
        other = Table(other_schema, {"sex": np.array([0])})
        with pytest.raises(ValueError, match="different schemas"):
            table.concat(other)

    def test_with_columns_extends(self, table):
        extra_schema = Schema([Attribute("place", ("P1", "P2"))])
        extended = table.with_columns(
            extra_schema, {"place": np.array([0, 0, 1, 1])}
        )
        assert extended.schema.names == ("sex", "edu", "place")
        assert extended.decoded("place").tolist() == ["P1", "P1", "P2", "P2"]
