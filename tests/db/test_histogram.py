"""Unit tests for per-establishment histograms h(w, c)."""

import numpy as np

from repro.db import Marginal, establishment_histograms


class TestEstablishmentHistograms:
    def test_tiny_fixture_exact(self, tiny_worker_full):
        h = establishment_histograms(tiny_worker_full, ["sex", "education"])
        assert h.shape == (3, 4)
        # Establishment 0: (M,HS), (M,BA), (F,BA); cell order MHS,MBA,FHS,FBA.
        assert h[0].toarray().ravel().tolist() == [1, 1, 0, 1]
        # Establishment 1: two (F,HS).
        assert h[1].toarray().ravel().tolist() == [0, 0, 2, 0]
        # Establishment 2: (M,HS), (F,BA).
        assert h[2].toarray().ravel().tolist() == [1, 0, 0, 1]

    def test_rows_sum_to_establishment_sizes(self, small_worker_full):
        h = establishment_histograms(small_worker_full, ["sex", "education"])
        np.testing.assert_array_equal(
            np.asarray(h.sum(axis=1)).ravel(),
            small_worker_full.establishment_sizes(),
        )

    def test_columns_sum_to_marginal(self, small_worker_full):
        h = establishment_histograms(small_worker_full, ["sex", "education"])
        marginal = Marginal(small_worker_full.table.schema, ["sex", "education"])
        np.testing.assert_array_equal(
            np.asarray(h.sum(axis=0)).ravel(),
            marginal.counts(small_worker_full.table),
        )

    def test_empty_worker_attrs_gives_total_employment(self, tiny_worker_full):
        h = establishment_histograms(tiny_worker_full, [])
        assert h.shape == (3, 1)
        assert np.asarray(h.todense()).ravel().tolist() == [3, 2, 2]
