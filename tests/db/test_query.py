"""Unit tests for marginal queries (Definition 2.1) and per-establishment
cell statistics (the xv of Lemma 8.5)."""

import numpy as np
import pytest

from repro.db import Marginal, per_establishment_counts
from repro.db.query import EstablishmentCounts


class TestMarginalCounts:
    def test_count_star(self, tiny_worker_full):
        marginal = Marginal(tiny_worker_full.table.schema, [])
        assert marginal.n_cells == 1
        assert marginal.counts(tiny_worker_full.table).tolist() == [7]

    def test_single_attribute(self, tiny_worker_full):
        marginal = Marginal(tiny_worker_full.table.schema, ["sex"])
        # 3 male, 4 female in the tiny fixture.
        assert marginal.counts(tiny_worker_full.table).tolist() == [3, 4]

    def test_two_attribute_marginal_matches_group_by(self, tiny_worker_full):
        marginal = Marginal(tiny_worker_full.table.schema, ["sex", "education"])
        counts = marginal.counts(tiny_worker_full.table)
        # (M,HS)=2, (M,BA)=1, (F,HS)=2, (F,BA)=2 in cell order.
        assert counts.tolist() == [2, 1, 2, 2]

    def test_counts_sum_to_table_size(self, small_worker_full):
        marginal = Marginal(small_worker_full.table.schema, ["place", "naics"])
        assert marginal.counts(small_worker_full.table).sum() == (
            small_worker_full.n_jobs
        )

    def test_workplace_attribute_marginal(self, tiny_worker_full):
        marginal = Marginal(tiny_worker_full.table.schema, ["naics", "place"])
        counts = marginal.counts(tiny_worker_full.table)
        # naics=11/place=P1: 3 jobs; naics=62/P1: 2; naics=62/P2: 2.
        assert counts.tolist() == [3, 0, 2, 2]

    def test_duplicate_attrs_rejected(self, tiny_worker_full):
        with pytest.raises(ValueError, match="distinct"):
            Marginal(tiny_worker_full.table.schema, ["sex", "sex"])

    def test_unknown_attr_rejected(self, tiny_worker_full):
        with pytest.raises(KeyError):
            Marginal(tiny_worker_full.table.schema, ["height"])


class TestWeightedCounts:
    def test_unit_weights_match_counts(self, tiny_worker_full):
        marginal = Marginal(tiny_worker_full.table.schema, ["sex"])
        weights = np.ones(tiny_worker_full.n_jobs)
        np.testing.assert_allclose(
            marginal.weighted_counts(tiny_worker_full.table, weights),
            marginal.counts(tiny_worker_full.table).astype(float),
        )

    def test_weighted_counts_scale(self, tiny_worker_full):
        marginal = Marginal(tiny_worker_full.table.schema, ["sex"])
        weights = np.full(tiny_worker_full.n_jobs, 1.1)
        np.testing.assert_allclose(
            marginal.weighted_counts(tiny_worker_full.table, weights),
            1.1 * marginal.counts(tiny_worker_full.table),
        )

    def test_weight_shape_mismatch_rejected(self, tiny_worker_full):
        marginal = Marginal(tiny_worker_full.table.schema, ["sex"])
        with pytest.raises(ValueError, match="weights shape"):
            marginal.weighted_counts(tiny_worker_full.table, np.ones(3))


class TestCellAddressing:
    def test_cell_values_roundtrip(self, tiny_worker_full):
        marginal = Marginal(tiny_worker_full.table.schema, ["sex", "education"])
        for flat, values in marginal.cells():
            assert marginal.flat_index(values) == flat

    def test_cell_values_out_of_range(self, tiny_worker_full):
        marginal = Marginal(tiny_worker_full.table.schema, ["sex"])
        with pytest.raises(IndexError):
            marginal.cell_values(2)

    def test_flat_index_wrong_arity(self, tiny_worker_full):
        marginal = Marginal(tiny_worker_full.table.schema, ["sex"])
        with pytest.raises(ValueError, match="expected 1"):
            marginal.flat_index(["M", "HS"])

    def test_project_onto_aggregates_cells(self, tiny_worker_full):
        marginal = Marginal(tiny_worker_full.table.schema, ["sex", "education"])
        projection = marginal.project_onto(["sex"])
        counts = marginal.counts(tiny_worker_full.table)
        aggregated = np.bincount(projection, weights=counts, minlength=2)
        sex_counts = Marginal(tiny_worker_full.table.schema, ["sex"]).counts(
            tiny_worker_full.table
        )
        np.testing.assert_allclose(aggregated, sex_counts)

    def test_project_onto_rejects_non_subset(self, tiny_worker_full):
        marginal = Marginal(tiny_worker_full.table.schema, ["sex"])
        with pytest.raises(ValueError, match="not among"):
            marginal.project_onto(["education"])


class TestPerEstablishmentCounts:
    def test_tiny_fixture_exact(self, tiny_worker_full):
        marginal = Marginal(tiny_worker_full.table.schema, ["naics", "place"])
        cell_index = marginal.cell_index(tiny_worker_full.table)
        stats = per_establishment_counts(
            cell_index, tiny_worker_full.establishment, marginal.n_cells
        )
        assert isinstance(stats, EstablishmentCounts)
        assert stats.totals.tolist() == [3, 0, 2, 2]
        # Each workplace cell here has a single establishment.
        assert stats.max_single.tolist() == [3, 0, 2, 2]
        assert stats.n_establishments.tolist() == [1, 0, 1, 1]

    def test_max_single_with_shared_cell(self):
        # Two establishments in the same cell: 5 and 2 workers.
        cell_index = np.array([0, 0, 0, 0, 0, 0, 0])
        establishment = np.array([0, 0, 0, 0, 0, 1, 1])
        stats = per_establishment_counts(cell_index, establishment, 1)
        assert stats.totals.tolist() == [7]
        assert stats.max_single.tolist() == [5]
        assert stats.n_establishments.tolist() == [2]

    def test_empty_input(self):
        stats = per_establishment_counts(
            np.array([], dtype=int), np.array([], dtype=int), 3
        )
        assert stats.totals.tolist() == [0, 0, 0]
        assert stats.max_single.tolist() == [0, 0, 0]

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError, match="align"):
            per_establishment_counts(np.array([0]), np.array([0, 1]), 1)

    def test_max_single_never_exceeds_total(self, small_worker_full):
        marginal = Marginal(
            small_worker_full.table.schema, ["place", "naics", "ownership"]
        )
        cell_index = marginal.cell_index(small_worker_full.table)
        stats = per_establishment_counts(
            cell_index, small_worker_full.establishment, marginal.n_cells
        )
        assert np.all(stats.max_single <= stats.totals)
        assert np.all((stats.totals == 0) == (stats.n_establishments == 0))
