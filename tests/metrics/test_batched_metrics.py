"""Batched metric variants agree with the scalar versions row by row."""

import numpy as np
import pytest

from repro.metrics import (
    average_ranks_batch,
    error_ratio,
    l1_error,
    l1_error_batch,
    spearman_correlation,
    spearman_correlation_batch,
)
from repro.metrics.ranking import average_ranks


@pytest.fixture()
def rng():
    return np.random.default_rng(77)


class TestL1Batch:
    def test_matches_scalar_rows(self, rng):
        true = rng.uniform(0, 100, size=25)
        trials = rng.uniform(0, 100, size=(12, 25))
        batched = l1_error_batch(true, trials)
        assert batched.shape == (12,)
        for i in range(12):
            assert batched[i] == pytest.approx(l1_error(true, trials[i]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="matrix"):
            l1_error_batch(np.zeros(5), np.zeros((3, 4)))
        with pytest.raises(ValueError, match="matrix"):
            l1_error_batch(np.zeros(5), np.zeros(5))

    def test_error_ratio_accepts_matrix(self, rng):
        true = rng.uniform(1, 50, size=10)
        sdl = true + rng.normal(0, 1, size=10)
        trials = true + rng.normal(0, 2, size=(8, 10))
        as_matrix = error_ratio(true, trials, sdl)
        as_list = error_ratio(true, list(trials), sdl)
        assert as_matrix == pytest.approx(as_list)


class TestRankBatch:
    def test_matches_scalar_rows_with_ties(self, rng):
        # Integer-ish values force plenty of ties.
        values = np.round(rng.uniform(0, 8, size=(15, 30)))
        batched = average_ranks_batch(values)
        for i in range(15):
            np.testing.assert_allclose(batched[i], average_ranks(values[i]))

    def test_all_tied_row(self):
        row = np.full((1, 6), 3.0)
        np.testing.assert_allclose(average_ranks_batch(row)[0], 3.5)

    def test_one_dimensional_passthrough(self, rng):
        values = rng.uniform(size=9)
        np.testing.assert_allclose(
            average_ranks_batch(values), average_ranks(values)
        )

    def test_empty_columns(self):
        assert average_ranks_batch(np.empty((4, 0))).shape == (4, 0)


class TestSpearmanBatch:
    def test_matches_scalar_rows(self, rng):
        y = rng.uniform(size=40)
        trials = rng.uniform(size=(10, 40))
        batched = spearman_correlation_batch(trials, y)
        assert batched.shape == (10,)
        for i in range(10):
            assert batched[i] == pytest.approx(
                spearman_correlation(trials[i], y)
            )

    def test_constant_row_is_nan(self, rng):
        y = rng.uniform(size=12)
        trials = np.vstack([np.full(12, 2.0), rng.uniform(size=12)])
        batched = spearman_correlation_batch(trials, y)
        assert np.isnan(batched[0])
        assert not np.isnan(batched[1])

    def test_constant_reference_is_nan(self, rng):
        batched = spearman_correlation_batch(
            rng.uniform(size=(3, 8)), np.ones(8)
        )
        assert np.all(np.isnan(batched))

    def test_short_vectors_are_nan(self):
        batched = spearman_correlation_batch(np.zeros((4, 1)), np.zeros(1))
        assert batched.shape == (4,)
        assert np.all(np.isnan(batched))

    def test_perfect_monotone(self):
        y = np.arange(20.0)
        trials = np.vstack([y * 3.0 + 1.0, -y])
        batched = spearman_correlation_batch(trials, y)
        assert batched[0] == pytest.approx(1.0)
        assert batched[1] == pytest.approx(-1.0)
