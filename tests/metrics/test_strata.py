"""Unit tests for place-population stratification of cells."""

import numpy as np
import pytest

from repro.db import Marginal
from repro.metrics import STRATUM_LABELS, cell_strata, stratified_mask


class TestCellStrata:
    def test_labels(self):
        assert len(STRATUM_LABELS) == 4

    def test_strata_follow_place(self, small_dataset):
        worker_full = small_dataset.worker_full()
        marginal = Marginal(
            worker_full.table.schema, ["place", "naics", "ownership"]
        )
        strata = cell_strata(marginal, small_dataset.geography.place_populations)
        assert strata.shape == (marginal.n_cells,)
        place_strata = small_dataset.place_stratum_codes()
        # Spot-check: every cell's stratum equals its place's stratum.
        for flat in range(0, marginal.n_cells, 97):
            place_value = marginal.cell_values(flat)[0]
            place_code = worker_full.table.schema["place"].code(place_value)
            assert strata[flat] == place_strata[place_code]

    def test_requires_place_attribute(self, small_dataset):
        worker_full = small_dataset.worker_full()
        marginal = Marginal(worker_full.table.schema, ["naics"])
        with pytest.raises(ValueError, match="place"):
            cell_strata(marginal, small_dataset.geography.place_populations)

    def test_stratified_masks_partition_cells(self, small_dataset):
        worker_full = small_dataset.worker_full()
        marginal = Marginal(worker_full.table.schema, ["place", "naics"])
        populations = small_dataset.geography.place_populations
        masks = [stratified_mask(marginal, populations, s) for s in range(4)]
        total = np.zeros(marginal.n_cells, dtype=int)
        for mask in masks:
            total += mask.astype(int)
        assert np.all(total == 1)

    def test_invalid_stratum(self, small_dataset):
        worker_full = small_dataset.worker_full()
        marginal = Marginal(worker_full.table.schema, ["place"])
        with pytest.raises(ValueError):
            stratified_mask(
                marginal, small_dataset.geography.place_populations, 4
            )
