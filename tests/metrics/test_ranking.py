"""Unit tests for Spearman correlation, cross-checked against scipy."""

import numpy as np
import pytest
from scipy import stats

from repro.metrics import rank_descending, spearman_correlation
from repro.metrics.ranking import average_ranks


class TestAverageRanks:
    def test_no_ties(self):
        ranks = average_ranks(np.array([30.0, 10.0, 20.0]))
        assert ranks.tolist() == [3.0, 1.0, 2.0]

    def test_ties_share_average(self):
        ranks = average_ranks(np.array([10.0, 10.0, 20.0]))
        assert ranks.tolist() == [1.5, 1.5, 3.0]

    def test_matches_scipy_rankdata(self):
        rng = np.random.default_rng(5)
        values = rng.integers(0, 20, size=200).astype(float)
        np.testing.assert_allclose(
            average_ranks(values), stats.rankdata(values, method="average")
        )


class TestSpearman:
    def test_perfect_correlation(self):
        x = np.arange(50.0)
        assert spearman_correlation(x, 3 * x + 2) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        x = np.arange(50.0)
        assert spearman_correlation(x, -x) == pytest.approx(-1.0)

    def test_matches_scipy(self):
        rng = np.random.default_rng(6)
        for _ in range(10):
            x = rng.normal(size=100)
            y = x + rng.normal(scale=2.0, size=100)
            expected = stats.spearmanr(x, y).statistic
            assert spearman_correlation(x, y) == pytest.approx(expected, abs=1e-12)

    def test_matches_scipy_with_ties(self):
        rng = np.random.default_rng(7)
        x = rng.integers(0, 5, size=200).astype(float)
        y = rng.integers(0, 5, size=200).astype(float)
        expected = stats.spearmanr(x, y).statistic
        assert spearman_correlation(x, y) == pytest.approx(expected, abs=1e-12)

    def test_degenerate_input_is_nan(self):
        assert np.isnan(spearman_correlation(np.ones(5), np.arange(5.0)))
        assert np.isnan(spearman_correlation(np.array([1.0]), np.array([2.0])))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            spearman_correlation(np.ones(3), np.ones(4))


class TestRankDescending:
    def test_positions(self):
        positions = rank_descending(np.array([5.0, 30.0, 10.0]))
        assert positions.tolist() == [2, 0, 1]

    def test_ties_break_by_index(self):
        positions = rank_descending(np.array([10.0, 10.0]))
        assert positions.tolist() == [0, 1]
