"""Unit tests for Spearman correlation, cross-checked against scipy."""

import numpy as np
import pytest
from scipy import stats

from repro.metrics import rank_descending, spearman_correlation
from repro.metrics.ranking import (
    average_ranks,
    centered_rank_stats,
    spearman_correlation_batch,
    spearman_distinct_batch,
)


class TestAverageRanks:
    def test_no_ties(self):
        ranks = average_ranks(np.array([30.0, 10.0, 20.0]))
        assert ranks.tolist() == [3.0, 1.0, 2.0]

    def test_ties_share_average(self):
        ranks = average_ranks(np.array([10.0, 10.0, 20.0]))
        assert ranks.tolist() == [1.5, 1.5, 3.0]

    def test_matches_scipy_rankdata(self):
        rng = np.random.default_rng(5)
        values = rng.integers(0, 20, size=200).astype(float)
        np.testing.assert_allclose(
            average_ranks(values), stats.rankdata(values, method="average")
        )


class TestSpearman:
    def test_perfect_correlation(self):
        x = np.arange(50.0)
        assert spearman_correlation(x, 3 * x + 2) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        x = np.arange(50.0)
        assert spearman_correlation(x, -x) == pytest.approx(-1.0)

    def test_matches_scipy(self):
        rng = np.random.default_rng(6)
        for _ in range(10):
            x = rng.normal(size=100)
            y = x + rng.normal(scale=2.0, size=100)
            expected = stats.spearmanr(x, y).statistic
            assert spearman_correlation(x, y) == pytest.approx(expected, abs=1e-12)

    def test_matches_scipy_with_ties(self):
        rng = np.random.default_rng(7)
        x = rng.integers(0, 5, size=200).astype(float)
        y = rng.integers(0, 5, size=200).astype(float)
        expected = stats.spearmanr(x, y).statistic
        assert spearman_correlation(x, y) == pytest.approx(expected, abs=1e-12)

    def test_degenerate_input_is_nan(self):
        assert np.isnan(spearman_correlation(np.ones(5), np.arange(5.0)))
        assert np.isnan(spearman_correlation(np.array([1.0]), np.array([2.0])))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            spearman_correlation(np.ones(3), np.ones(4))


class TestRankDescending:
    def test_positions(self):
        positions = rank_descending(np.array([5.0, 30.0, 10.0]))
        assert positions.tolist() == [2, 0, 1]

    def test_ties_break_by_index(self):
        positions = rank_descending(np.array([10.0, 10.0]))
        assert positions.tolist() == [0, 1]


class TestSpearmanDistinctBatch:
    """The tie-free fast kernel: exact agreement with the general
    tie-averaging batch kernel whenever the x rows are distinct, and an
    explicit None refusal whenever they are not."""

    @staticmethod
    def _stats(y):
        centered, sd = centered_rank_stats(np.asarray(y, dtype=np.float64))
        return centered, sd

    def test_matches_general_kernel_on_distinct_rows(self):
        rng = np.random.default_rng(17)
        y = rng.normal(size=80)
        x = y + rng.normal(scale=2.0, size=(25, 80))
        centered, sd = self._stats(y)
        fast = spearman_distinct_batch(x, centered, sd)
        exact = spearman_correlation_batch(x, y)
        np.testing.assert_allclose(fast, exact, atol=1e-12)

    def test_matches_scipy_per_row(self):
        rng = np.random.default_rng(18)
        y = rng.normal(size=40)
        x = y + rng.normal(size=(5, 40))
        centered, sd = self._stats(y)
        fast = spearman_distinct_batch(x, centered, sd)
        for row, rho in zip(x, fast):
            assert rho == pytest.approx(
                stats.spearmanr(row, y).statistic, abs=1e-12
            )

    def test_returns_none_on_ties(self):
        y = np.arange(6.0)
        x = np.array([[3.0, 1.0, 4.0, 1.0, 5.0, 9.0]])  # 1.0 repeats
        centered, sd = self._stats(y)
        assert spearman_distinct_batch(x, centered, sd) is None

    def test_check_ties_false_skips_detection(self):
        """With detection off the kernel silently ranks tied rows by
        argsort order — the caller's job is to only disable the check
        for provably tie-free data (stratum subsets of a clean row)."""
        y = np.arange(4.0)
        x = np.array([[2.0, 2.0, 1.0, 3.0]])
        centered, sd = self._stats(y)
        rho = spearman_distinct_batch(x, centered, sd, check_ties=False)
        assert rho is not None and rho.shape == (1,)

    def test_tied_y_is_fine(self):
        """Ties in *y* are pre-averaged into the centered ranks; only x
        ties defeat the permutation shortcut."""
        rng = np.random.default_rng(19)
        y = rng.integers(0, 4, size=50).astype(float)
        x = rng.normal(size=(8, 50))
        centered, sd = self._stats(y)
        fast = spearman_distinct_batch(x, centered, sd)
        exact = spearman_correlation_batch(x, y)
        np.testing.assert_allclose(fast, exact, atol=1e-12)

    def test_degenerate_cases_are_nan(self):
        single = spearman_distinct_batch(
            np.array([[5.0]]), *self._stats(np.array([3.0]))
        )
        assert np.isnan(single).all()
        constant_y = spearman_distinct_batch(
            np.array([[1.0, 2.0, 3.0]]), *self._stats(np.ones(3))
        )
        assert np.isnan(constant_y).all()

    def test_requires_2d(self):
        centered, sd = self._stats(np.arange(3.0))
        with pytest.raises(ValueError):
            spearman_distinct_batch(np.arange(3.0), centered, sd)

    def test_shape_mismatch(self):
        centered, sd = self._stats(np.arange(3.0))
        with pytest.raises(ValueError):
            spearman_distinct_batch(np.ones((2, 4)), centered, sd)


class TestCenteredRankStats:
    def test_centered_mean_zero(self):
        centered, sd = centered_rank_stats(np.array([9.0, 1.0, 5.0, 5.0]))
        assert centered.sum() == pytest.approx(0.0)
        assert sd == pytest.approx(average_ranks(
            np.array([9.0, 1.0, 5.0, 5.0])
        ).std())
