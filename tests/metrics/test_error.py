"""Unit tests for error metrics (Definition 2.5, the Sec 10 ratio)."""

import math

import numpy as np
import pytest

from repro.metrics import (
    error_ratio,
    l1_error,
    lp_error,
    mean_l1_error,
    relative_errors,
    share_within_relative_error,
)


class TestL1:
    def test_l1_error(self):
        assert l1_error(np.array([1.0, 2.0]), np.array([3.0, 0.0])) == 4.0

    def test_mean_l1(self):
        assert mean_l1_error(np.array([1.0, 2.0]), np.array([3.0, 0.0])) == 2.0

    def test_mean_l1_empty_is_nan(self):
        assert math.isnan(mean_l1_error(np.array([]), np.array([])))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            l1_error(np.array([1.0]), np.array([1.0, 2.0]))

    def test_zero_for_identical(self):
        values = np.arange(10.0)
        assert l1_error(values, values) == 0.0


class TestLp:
    def test_l2(self):
        assert lp_error(np.zeros(2), np.array([3.0, 4.0]), p=2) == 5.0

    def test_l1_consistency(self):
        true = np.array([1.0, 5.0, 2.0])
        noisy = np.array([0.0, 9.0, 2.0])
        assert lp_error(true, noisy, p=1) == l1_error(true, noisy)

    def test_p_below_one_rejected(self):
        with pytest.raises(ValueError):
            lp_error(np.zeros(2), np.ones(2), p=0.5)


class TestRelative:
    def test_relative_errors_ignore_zero_cells(self):
        rel = relative_errors(np.array([0.0, 10.0]), np.array([5.0, 12.0]))
        np.testing.assert_allclose(rel, [0.2])

    def test_share_within_margin(self):
        true = np.array([10.0, 10.0])
        reference = np.array([11.0, 11.0])  # 10% relative error
        candidate = np.array([11.5, 20.0])  # 15% and 100%
        share = share_within_relative_error(reference, candidate, true, margin=0.1)
        assert share == 0.5


class TestErrorRatio:
    def test_ratio_definition(self):
        true = np.array([10.0, 20.0])
        sdl = np.array([11.0, 21.0])  # L1 = 2
        trials = [np.array([12.0, 22.0]), np.array([10.0, 20.0])]  # L1: 4, 0
        assert error_ratio(true, trials, sdl) == pytest.approx(1.0)

    def test_zero_sdl_error_gives_inf(self):
        true = np.array([1.0])
        assert error_ratio(true, [np.array([2.0])], true) == math.inf

    def test_empty_trials_rejected(self):
        with pytest.raises(ValueError):
            error_ratio(np.array([1.0]), [], np.array([1.0]))
