"""Tests for the non-uniform worker-cell budget allocation extension."""

import numpy as np
import pytest

from repro.core import EREEParams
from repro.extensions import (
    WeightedSplit,
    optimal_split,
    release_marginal_weighted,
    uniform_split,
)
from repro.extensions.weighted_split import feasibility_floor

ATTRS = ["place", "naics", "ownership", "sex", "education"]
PARAMS = EREEParams(alpha=0.05, epsilon=16.0, delta=0.05)


class TestSplits:
    def test_uniform_split(self):
        split = uniform_split(8.0, 4)
        np.testing.assert_allclose(split.epsilons, 2.0)
        assert split.total == pytest.approx(8.0)

    def test_optimal_split_preserves_total(self):
        split = optimal_split(10.0, np.array([100.0, 400.0, 0.0, 25.0]))
        assert split.total == pytest.approx(10.0)

    def test_optimal_split_follows_sqrt_rule(self):
        split = optimal_split(
            10.0, np.array([100.0, 400.0]), floor_fraction=0.2
        )
        # Above the uniform floor, the remaining budget splits 1:2
        # (sqrt(100):sqrt(400)).
        above_floor = split.epsilons - 0.2 * 10.0 / 2
        assert above_floor[1] == pytest.approx(2 * above_floor[0])

    def test_optimal_split_zero_proxy_falls_back_to_uniform(self):
        split = optimal_split(6.0, np.zeros(3))
        np.testing.assert_allclose(split.epsilons, 2.0)

    def test_negative_proxies_clipped(self):
        split = optimal_split(6.0, np.array([-5.0, 4.0]))
        assert split.total == pytest.approx(6.0)
        assert np.all(split.epsilons > 0)

    def test_min_epsilon_water_filling(self):
        split = optimal_split(
            10.0, np.array([1.0, 10_000.0, 10_000.0]), min_epsilon=2.0
        )
        assert split.total == pytest.approx(10.0)
        assert split.epsilons.min() >= 2.0 - 1e-12

    def test_min_epsilon_infeasible_budget(self):
        with pytest.raises(ValueError, match="feasibility minimum"):
            optimal_split(1.0, np.ones(4), min_epsilon=2.0)

    def test_nonpositive_epsilons_rejected(self):
        with pytest.raises(ValueError, match="positive budget"):
            WeightedSplit(np.array([1.0, 0.0]))


class TestFeasibilityFloor:
    def test_smooth_laplace_floor(self):
        from repro.core import min_epsilon

        assert feasibility_floor("smooth-laplace", PARAMS) == pytest.approx(
            min_epsilon(PARAMS.alpha, PARAMS.delta)
        )

    def test_smooth_gamma_floor_above_constraint(self):
        floor = feasibility_floor("smooth-gamma", PARAMS)
        assert floor > 5 * np.log1p(PARAMS.alpha)


class TestWeightedRelease:
    def test_budget_conservation(self, small_worker_full):
        result = release_marginal_weighted(
            small_worker_full, ATTRS, "smooth-laplace", PARAMS, seed=1
        )
        assert result.total_epsilon == pytest.approx(PARAMS.epsilon)

    def test_explicit_split_skips_pilot(self, small_worker_full):
        split = uniform_split(PARAMS.epsilon, 8)
        result = release_marginal_weighted(
            small_worker_full, ATTRS, "smooth-laplace", PARAMS,
            split=split, seed=2,
        )
        assert result.pilot_epsilon == 0.0
        assert np.all(np.isnan(result.pilot_totals))

    def test_explicit_split_total_checked(self, small_worker_full):
        with pytest.raises(ValueError, match="budget"):
            release_marginal_weighted(
                small_worker_full, ATTRS, "smooth-laplace", PARAMS,
                split=uniform_split(4.0, 8), seed=3,
            )

    def test_explicit_split_arity_checked(self, small_worker_full):
        with pytest.raises(ValueError, match="cells"):
            release_marginal_weighted(
                small_worker_full, ATTRS, "smooth-laplace", PARAMS,
                split=uniform_split(PARAMS.epsilon, 5), seed=4,
            )

    def test_log_laplace_rejected(self, small_worker_full):
        with pytest.raises(ValueError, match="smooth mechanisms"):
            release_marginal_weighted(
                small_worker_full, ATTRS, "log-laplace", PARAMS, seed=5
            )

    def test_establishment_only_marginal_rejected(self, small_worker_full):
        with pytest.raises(ValueError, match="worker"):
            release_marginal_weighted(
                small_worker_full, ["place", "naics"], "smooth-laplace",
                PARAMS, seed=6,
            )

    def test_all_released_cells_noised(self, small_worker_full):
        result = release_marginal_weighted(
            small_worker_full, ATTRS, "smooth-laplace", PARAMS, seed=7
        )
        release = result.release
        noised = release.released & (release.true > 0)
        assert np.all(release.noisy[noised] != release.true[noised])

    def test_public_knowledge_split_beats_uniform_on_skewed_classes(
        self, small_worker_full
    ):
        """With a strongly skewed (public) allocation matching the true
        class sensitivities, total expected error drops below uniform."""
        from repro.core import SmoothLaplace
        from repro.db import Marginal, per_establishment_counts

        schema = small_worker_full.table.schema
        class_marginal = Marginal(schema, ["sex", "education"])
        stats = per_establishment_counts(
            class_marginal.cell_index(small_worker_full.table),
            small_worker_full.establishment,
            class_marginal.n_cells,
        )
        sensitivities = np.maximum(stats.max_single * PARAMS.alpha, 1.0)
        ideal = optimal_split(
            PARAMS.epsilon, sensitivities, floor_fraction=0.05,
            min_epsilon=feasibility_floor("smooth-laplace", PARAMS),
        )
        # Expected total error sum(S_c / eps_c) (up to the common 2x).
        uniform_cost = float(
            (sensitivities / (PARAMS.epsilon / class_marginal.n_cells)).sum()
        )
        weighted_cost = float((sensitivities / ideal.epsilons).sum())
        assert weighted_cost <= uniform_cost + 1e-9
